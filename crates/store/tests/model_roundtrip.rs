//! End-to-end model round-trip through the artifact store, plus the
//! two failure modes the envelope must turn into typed errors:
//! corruption (checksum mismatch) and schema skew.

use ipas_store::hash::{hex, sha256};
use ipas_store::{ArtifactKind, Key, Store, StoreError, TrainedModel};
use ipas_svm::{Dataset, Svm, SvmParams};

fn temp_store(tag: &str) -> (std::path::PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("ipas-model-rt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::open(&dir).expect("store opens");
    (dir, store)
}

/// The XOR fixture: not linearly separable, so the RBF solution keeps
/// all four points as support vectors — a meaningful export.
fn xor_svm() -> Svm {
    let x = vec![
        vec![0.0, 0.0],
        vec![1.0, 1.0],
        vec![0.0, 1.0],
        vec![1.0, 0.0],
    ];
    let y = vec![false, false, true, true];
    let data = Dataset::new(x, y).expect("dataset builds");
    Svm::train(&data, &SvmParams::new(100.0, 2.0))
}

fn export(svm: &Svm, params: &SvmParams) -> TrainedModel {
    TrainedModel {
        c: params.c,
        gamma: params.gamma,
        pos_weight: params.pos_weight,
        tol: params.tol,
        max_passes: params.max_passes,
        f_score: 1.0,
        acc1: 1.0,
        acc2: 1.0,
        scaler_mean: vec![0.5, 0.5],
        scaler_std: vec![0.5, 0.5],
        support: svm.support_vectors().to_vec(),
        coef: svm.coefficients().to_vec(),
        bias: svm.bias(),
    }
}

#[test]
fn exported_model_reimports_bit_identically() {
    let (dir, store) = temp_store("ok");
    let params = SvmParams::new(100.0, 2.0);
    let svm = xor_svm();
    let model = export(&svm, &params);

    let key = Key::parse("ab12").unwrap();
    store.put(&key, &model).expect("put succeeds");
    let loaded: TrainedModel = store
        .get(&key)
        .expect("get succeeds")
        .expect("artifact present");
    let rebuilt = Svm::from_parts(
        loaded.support.clone(),
        loaded.coef.clone(),
        loaded.bias,
        loaded.gamma,
    )
    .expect("parts are consistent");

    // Bit-identical decision values over a probe grid, including points
    // far from the training data (where kernel sums are tiny).
    for i in 0..=10 {
        for j in 0..=10 {
            let p = [i as f64 * 0.3 - 1.0, j as f64 * 0.3 - 1.0];
            let a = svm.decision_function(&p);
            let b = rebuilt.decision_function(&p);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "decision_function({p:?}) must be bit-identical: {a} vs {b}"
            );
        }
    }
    // And the decision boundary still solves XOR.
    assert!(rebuilt.decision_function(&[0.1, 0.9]) > 0.0);
    assert!(rebuilt.decision_function(&[0.9, 0.9]) < 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_is_a_checksum_error() {
    let (dir, store) = temp_store("flip");
    let key = Key::parse("beef").unwrap();
    store
        .put(&key, &export(&xor_svm(), &SvmParams::new(100.0, 2.0)))
        .expect("put succeeds");

    let path = store.object_path(ArtifactKind::TrainedModel, &key);
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    // Flip one byte in the body (the first support-vector line).
    let damaged = text.replacen("bias ", "bias-x ", 1);
    assert_ne!(text, damaged, "replacement must hit");
    std::fs::write(&path, damaged).unwrap();

    match store.get::<TrainedModel>(&key) {
        Err(StoreError::Corrupt { reason, .. }) => {
            assert!(reason.contains("checksum"), "reason: {reason}")
        }
        other => panic!("expected Corrupt{{checksum}}, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bumped_schema_is_a_version_skew_error() {
    let (dir, store) = temp_store("skew");
    let key = Key::parse("cafe").unwrap();
    store
        .put(&key, &export(&xor_svm(), &SvmParams::new(100.0, 2.0)))
        .expect("put succeeds");

    let path = store.object_path(ArtifactKind::TrainedModel, &key);
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    // Bump the schema header and re-checksum so only the version skews:
    // the file must fail as SchemaSkew, not as corruption.
    let covered = text
        .split("checksum ")
        .next()
        .expect("has checksum trailer")
        .replacen("schema 1\n", "schema 999\n", 1);
    let reforged = format!("{covered}checksum {}\n", hex(&sha256(covered.as_bytes())));
    std::fs::write(&path, reforged).unwrap();

    match store.get::<TrainedModel>(&key) {
        Err(StoreError::SchemaSkew {
            kind,
            found,
            expected,
        }) => {
            assert_eq!(kind, ArtifactKind::TrainedModel);
            assert_eq!(found, 999);
            assert_eq!(expected, 1);
        }
        other => panic!("expected SchemaSkew, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Concurrency stress for the store: many worker threads putting,
//! getting, memoizing, registering, and garbage-collecting against one
//! root at once. The invariants under test:
//!
//! * a reader never observes a torn artifact — every `get` either
//!   misses or decodes a checksum-intact payload (tmp+rename writes);
//! * `gc` never removes a registered object, an object pinned by a live
//!   [`PinGuard`], or another tenant's registered objects;
//! * `memoize_shared` coalesces concurrent identical requests to one
//!   compute and hands every caller the identical payload.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use ipas_store::{ArtifactKind, CacheOutcome, CampaignSummary, Key, SingleFlight, Store};

fn tmp_store(name: &str) -> Store {
    let dir = std::env::temp_dir()
        .join("ipas-store-stress")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

fn summary(seed: u64) -> CampaignSummary {
    CampaignSummary {
        workload: "stress".into(),
        runs: 128,
        seed,
        nominal_insts: 4096,
        counts: [1, 2, 3, 4],
        harness_failures: 0,
    }
}

#[test]
fn concurrent_put_get_gc_never_tears_or_reaps_live_objects() {
    let store = tmp_store("putgetgc");
    let registered = Key::parse("feedbead").unwrap();
    store.put(&registered, &summary(1)).unwrap();
    store
        .registry()
        .register("keep", ArtifactKind::CampaignSummary, &registered, "")
        .unwrap();
    let pinned = Key::parse("cafe0001").unwrap();
    store.put(&pinned, &summary(2)).unwrap();
    let _pin = store.pin(ArtifactKind::CampaignSummary, &pinned);

    let barrier = Barrier::new(10);
    std::thread::scope(|scope| {
        // 8 writers hammer per-thread keys while reading the shared
        // registered/pinned objects; 2 gc threads sweep concurrently.
        for t in 0..8u64 {
            let store = store.clone();
            let barrier = &barrier;
            let registered = registered.clone();
            let pinned = pinned.clone();
            scope.spawn(move || {
                barrier.wait();
                let key = Key::parse(&format!("aa{t:02}")).unwrap();
                for round in 0..40 {
                    store.put(&key, &summary(t)).unwrap();
                    // Own key may have been gc'd between put and get
                    // (it is unregistered); a hit must decode intact.
                    if let Some(back) = store.get::<CampaignSummary>(&key).unwrap() {
                        assert_eq!(back, summary(t), "torn read on round {round}");
                    }
                    let kept = store.get::<CampaignSummary>(&registered).unwrap();
                    assert_eq!(kept, Some(summary(1)), "registered object vanished");
                    let held = store.get::<CampaignSummary>(&pinned).unwrap();
                    assert_eq!(held, Some(summary(2)), "pinned object vanished");
                }
            });
        }
        for _ in 0..2 {
            let store = store.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..40 {
                    store.gc().unwrap();
                }
            });
        }
    });

    drop(_pin);
    let report = store.gc().unwrap();
    assert!(store.contains(ArtifactKind::CampaignSummary, &registered));
    assert!(
        !store.contains(ArtifactKind::CampaignSummary, &pinned),
        "unpinned unregistered object must be collected; report: {report:?}"
    );
}

#[test]
fn memoize_shared_coalesces_concurrent_identical_requests() {
    let store = tmp_store("coalesce");
    let flight = SingleFlight::new();
    let key = Key::parse("0ddba11").unwrap();
    let computes = AtomicUsize::new(0);
    let coalesced = AtomicUsize::new(0);
    let barrier = Barrier::new(8);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let store = store.clone();
            let (flight, key) = (&flight, &key);
            let (computes, coalesced, barrier) = (&computes, &coalesced, &barrier);
            scope.spawn(move || {
                barrier.wait();
                let (payload, outcome) = store
                    .memoize_shared::<CampaignSummary, ()>(flight, key, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the window so followers really overlap.
                        std::thread::sleep(std::time::Duration::from_millis(25));
                        Ok(summary(77))
                    })
                    .unwrap();
                assert_eq!(payload, summary(77), "every caller gets identical bytes");
                if outcome == CacheOutcome::Coalesced {
                    coalesced.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
    assert!(
        coalesced.load(Ordering::SeqCst) >= 1,
        "at least one concurrent caller must coalesce"
    );
}

#[test]
fn tenant_registries_are_isolated_but_share_objects_and_gc_roots() {
    let store = tmp_store("tenants");
    let alice = store.for_tenant("alice").unwrap();
    let bob = store.for_tenant("bob").unwrap();
    assert_eq!(alice.tenant(), Some("alice"));
    assert!(store.for_tenant("../evil").is_err());

    // Identical content under one key: the object pool is shared.
    let shared = Key::parse("c0ffee").unwrap();
    alice.put(&shared, &summary(5)).unwrap();
    assert_eq!(
        bob.get::<CampaignSummary>(&shared).unwrap(),
        Some(summary(5))
    );

    // Registrations are namespaced...
    let alices = Key::parse("a11ce").unwrap();
    alice.put(&alices, &summary(6)).unwrap();
    alice
        .registry()
        .register("model", ArtifactKind::CampaignSummary, &alices, "")
        .unwrap();
    assert!(bob.registry().lookup("model").unwrap().is_none());
    assert!(alice.registry().lookup("model").unwrap().is_some());

    // ...but every tenant registry is a gc root, from any handle.
    let report = bob.gc().unwrap();
    assert!(store.contains(ArtifactKind::CampaignSummary, &alices));
    assert!(
        report.removed.iter().any(|(_, k)| *k == shared),
        "unregistered shared object is collected; report: {report:?}"
    );
}

#[test]
fn failed_leader_does_not_poison_the_flight_key() {
    let store = tmp_store("failedleader");
    let flight = SingleFlight::new();
    let key = Key::parse("5add").unwrap();
    let res = store.memoize_shared::<CampaignSummary, &str>(&flight, &key, || Err("boom"));
    assert!(matches!(res, Err(ipas_store::MemoError::Compute("boom"))));
    // The next caller leads again and succeeds.
    let (_, outcome) = store
        .memoize_shared::<CampaignSummary, ()>(&flight, &key, || Ok(summary(9)))
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
}

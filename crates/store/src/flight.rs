//! Single-flight request coalescing.
//!
//! When several threads want the same expensive, deterministic artifact
//! at the same time, only one should compute it. [`SingleFlight`] keys
//! in-progress computations by string: the first caller to
//! [`SingleFlight::begin`] a key becomes the **leader** and computes;
//! later callers become **followers**, blocking until the leader
//! finishes and then reading the leader's stored result (see
//! [`crate::Store::memoize_shared`]). Leadership releases on drop, so a
//! panicking leader wakes its followers instead of deadlocking them —
//! one of them retries as the new leader.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-progress computation: followers wait on `done`.
#[derive(Debug, Default)]
struct FlightSlot {
    done: Mutex<bool>,
    cv: Condvar,
}

/// A keyed single-flight table (see module docs).
#[derive(Debug, Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<String, Arc<FlightSlot>>>,
}

/// The caller's role for one [`SingleFlight::begin`] call.
///
/// Holding a leader entry marks the key in flight; dropping it (after
/// computing, or by unwinding) releases the key and wakes all
/// followers. A follower entry is returned only *after* the leader
/// finished, and carries no obligations.
#[derive(Debug)]
pub struct FlightEntry<'f> {
    flight: &'f SingleFlight,
    key: String,
    leader: bool,
}

impl FlightEntry<'_> {
    /// Whether this caller must compute the value.
    pub fn is_leader(&self) -> bool {
        self.leader
    }
}

impl Drop for FlightEntry<'_> {
    fn drop(&mut self) {
        if !self.leader {
            return;
        }
        let slot = self
            .flight
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.key);
        if let Some(slot) = slot {
            *slot.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
            slot.cv.notify_all();
        }
    }
}

impl SingleFlight {
    /// Creates an empty table.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Joins the flight for `key`: returns a leader entry immediately
    /// when no computation is in progress, otherwise blocks until the
    /// current leader finishes and returns a follower entry.
    pub fn begin(&self, key: &str) -> FlightEntry<'_> {
        let slot = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    inflight.insert(key.to_string(), Arc::new(FlightSlot::default()));
                    return FlightEntry {
                        flight: self,
                        key: key.to_string(),
                        leader: true,
                    };
                }
            }
        };
        let mut done = slot.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = slot.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        FlightEntry {
            flight: self,
            key: key.to_string(),
            leader: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_caller_is_leader() {
        let flight = SingleFlight::new();
        assert!(flight.begin("k").is_leader());
        // Leadership released on drop: leading again works.
        assert!(flight.begin("k").is_leader());
    }

    #[test]
    fn concurrent_callers_coalesce_to_one_leader() {
        let flight = SingleFlight::new();
        let leaders = AtomicUsize::new(0);
        let computed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let entry = flight.begin("job");
                    if entry.is_leader() {
                        leaders.fetch_add(1, Ordering::SeqCst);
                        // Simulate the expensive compute while leading.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        computed.fetch_add(1, Ordering::SeqCst);
                    } else {
                        // A follower only observes a *finished* leader.
                        assert_eq!(computed.load(Ordering::SeqCst), 1);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let flight = SingleFlight::new();
        let a = flight.begin("a");
        let b = flight.begin("b");
        assert!(a.is_leader() && b.is_leader());
    }

    #[test]
    fn panicking_leader_wakes_followers() {
        let flight = Arc::new(SingleFlight::new());
        let f2 = Arc::clone(&flight);
        std::thread::scope(|scope| {
            let panicker = scope.spawn(move || {
                let _entry = f2.begin("k");
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("leader died");
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            // This would deadlock forever if the leader's unwind did
            // not release the key.
            let entry = flight.begin("k");
            assert!(!entry.is_leader());
            assert!(panicker.join().is_err());
        });
    }
}

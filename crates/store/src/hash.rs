//! Dependency-free SHA-256 and the fingerprinting layer built on it.
//!
//! Store keys are derived by hashing the *canonical inputs* of a
//! pipeline stage — the printed IR module, the campaign configuration,
//! the SVM grid, the feature-schema version — into a stable hex key.
//! [`FingerprintBuilder`] frames every field with its length and label
//! so that adjacent fields can never alias (`("ab", "c")` hashes
//! differently from `("a", "bc")`), and seeds the digest with a domain
//! tag so fingerprints of different stages never collide by
//! construction.

use std::fmt;

/// SHA-256 round constants (FIPS 180-4).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4), implemented in-tree because the
/// build must work without crates.io.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length is absorbed directly: update() would recount it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

/// Hashes a byte string in one call.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// Renders a digest as lowercase hex.
pub fn hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// A 256-bit fingerprint of a stage's canonical inputs.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint([u8; 32]);

impl Fingerprint {
    /// The full 64-character hex key.
    pub fn hex(&self) -> String {
        hex(&self.0)
    }

    /// A 16-character abbreviation for log lines.
    pub fn short(&self) -> String {
        hex(&self.0[..8])
    }

    /// The raw digest bytes.
    pub fn bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({})", self.short())
    }
}

/// Builds a [`Fingerprint`] from labeled fields.
///
/// Every field is framed as `len(label) ‖ label ‖ len(value) ‖ value`
/// (lengths as little-endian u64), so field boundaries are unambiguous
/// and reordering or renaming a field always changes the key.
#[must_use]
pub struct FingerprintBuilder {
    hasher: Sha256,
}

impl FingerprintBuilder {
    /// Starts a fingerprint in the given stage domain (e.g.
    /// `"training-campaign"`). Different domains never collide.
    pub fn new(domain: &str) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"ipas-fingerprint-v1");
        let mut b = FingerprintBuilder { hasher };
        b.push("domain", domain.as_bytes());
        b
    }

    fn push(&mut self, label: &str, value: &[u8]) {
        self.hasher.update(&(label.len() as u64).to_le_bytes());
        self.hasher.update(label.as_bytes());
        self.hasher.update(&(value.len() as u64).to_le_bytes());
        self.hasher.update(value);
    }

    /// Adds a text field (e.g. a printed IR module).
    pub fn text(mut self, label: &str, value: &str) -> Self {
        self.push(label, value.as_bytes());
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, label: &str, value: u64) -> Self {
        self.push(label, &value.to_le_bytes());
        self
    }

    /// Adds a float field by IEEE-754 bit pattern (so `-0.0` and `0.0`
    /// fingerprint differently, and NaNs are stable).
    pub fn f64(mut self, label: &str, value: f64) -> Self {
        self.push(label, &value.to_bits().to_le_bytes());
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, label: &str, value: bool) -> Self {
        self.push(label, &[u8::from(value)]);
        self
    }

    /// Nests another fingerprint (e.g. an upstream stage's key).
    pub fn fingerprint(mut self, label: &str, fp: &Fingerprint) -> Self {
        self.push(label, fp.bytes());
        self
    }

    /// Finalizes the key.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.hasher.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vectors() {
        // FIPS 180-4 test vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = sha256(&data);
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn fingerprint_fields_are_framed() {
        let a = FingerprintBuilder::new("d").text("ab", "c").finish();
        let b = FingerprintBuilder::new("d").text("a", "bc").finish();
        assert_ne!(a, b, "label/value boundary must be unambiguous");
    }

    #[test]
    fn fingerprint_domain_separates() {
        let a = FingerprintBuilder::new("x").u64("n", 1).finish();
        let b = FingerprintBuilder::new("y").u64("n", 1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_is_stable() {
        let a = FingerprintBuilder::new("stage")
            .text("module", "fn @f() {\nbb0:\n  ret\n}\n")
            .u64("runs", 600)
            .f64("tol", 1e-9)
            .bool("balanced", true)
            .finish();
        let b = FingerprintBuilder::new("stage")
            .text("module", "fn @f() {\nbb0:\n  ret\n}\n")
            .u64("runs", 600)
            .f64("tol", 1e-9)
            .bool("balanced", true)
            .finish();
        assert_eq!(a.hex(), b.hex());
        assert_eq!(a.hex().len(), 64);
        assert_eq!(a.short().len(), 16);
    }

    #[test]
    fn fingerprint_distinguishes_float_bits() {
        let a = FingerprintBuilder::new("d").f64("v", 0.0).finish();
        let b = FingerprintBuilder::new("d").f64("v", -0.0).finish();
        assert_ne!(a, b);
    }
}

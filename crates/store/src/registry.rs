//! The model registry: human-chosen names for store keys.
//!
//! A store key is a fingerprint — stable but unmemorable. The registry
//! maps names like `mm-base` to `(kind, key)` pairs so models can be
//! saved once (`ipas train --save-model mm-base`) and reused by name
//! (`ipas protect --model mm-base`). It is a single line-oriented TSV
//! file, rewritten atomically through the store's staging directory:
//!
//! ```text
//! name<TAB>kind-tag<TAB>key<TAB>note
//! ```
//!
//! Registered entries are the gc roots: [`crate::Store::gc`] removes
//! every object the registry does not reference.

use std::fs;
use std::path::PathBuf;

use crate::artifact::{ArtifactKind, StoreError};
use crate::store::Key;

/// One named entry in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Human-chosen name (no whitespace).
    pub name: String,
    /// Kind of the referenced artifact.
    pub kind: ArtifactKind,
    /// Store key of the referenced artifact.
    pub key: Key,
    /// Free-form note (workload, date, ...); tabs/newlines stripped.
    pub note: String,
}

/// Handle to a store's `registry.tsv`.
#[derive(Debug)]
pub struct Registry {
    path: PathBuf,
    tmp_dir: PathBuf,
}

pub(crate) fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

fn sanitize_note(note: &str) -> String {
    note.chars()
        .map(|c| {
            if c == '\t' || c == '\n' || c == '\r' {
                ' '
            } else {
                c
            }
        })
        .collect()
}

impl Registry {
    pub(crate) fn new(path: PathBuf, tmp_dir: PathBuf) -> Self {
        Registry { path, tmp_dir }
    }

    /// Reads all entries (empty when the file does not exist yet).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] on
    /// a malformed line.
    pub fn entries(&self) -> Result<Vec<RegistryEntry>, StoreError> {
        let text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(StoreError::Io {
                    path: self.path.clone(),
                    error: e,
                })
            }
        };
        let source = self.path.display().to_string();
        let corrupt = |reason: String| StoreError::Corrupt {
            source: source.clone(),
            reason,
        };
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut cols = line.splitn(4, '\t');
            let name = cols.next().unwrap_or_default();
            let tag = cols.next().unwrap_or_default();
            let key = cols.next().unwrap_or_default();
            let note = cols.next().unwrap_or_default();
            let kind = ArtifactKind::from_tag(tag)
                .ok_or_else(|| corrupt(format!("line {}: unknown kind {tag:?}", lineno + 1)))?;
            if !valid_name(name) {
                return Err(corrupt(format!("line {}: bad name {name:?}", lineno + 1)));
            }
            out.push(RegistryEntry {
                name: name.to_string(),
                kind,
                key: Key::parse(key)?,
                note: note.to_string(),
            });
        }
        Ok(out)
    }

    fn write(&self, entries: &[RegistryEntry]) -> Result<(), StoreError> {
        let mut text = String::new();
        for e in entries {
            text.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                e.name,
                e.kind.tag(),
                e.key,
                sanitize_note(&e.note)
            ));
        }
        // The staging name carries a per-process counter as well as the
        // pid: two registries (or two threads on one registry) writing
        // concurrently in the same process must never share a staging
        // file, or one rename publishes the other's half-written text.
        static WRITE_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.tmp_dir.join(format!(
            "registry-{}-{}.tmp",
            std::process::id(),
            WRITE_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, &text).map_err(|e| StoreError::Io {
            path: tmp.clone(),
            error: e,
        })?;
        fs::rename(&tmp, &self.path).map_err(|e| StoreError::Io {
            path: self.path.clone(),
            error: e,
        })
    }

    /// Registers (or re-points) `name` at `(kind, key)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadName`] for invalid names, plus read/write
    /// failures from the underlying file.
    pub fn register(
        &self,
        name: &str,
        kind: ArtifactKind,
        key: &Key,
        note: &str,
    ) -> Result<(), StoreError> {
        if !valid_name(name) {
            return Err(StoreError::BadName(name.to_string()));
        }
        let mut entries = self.entries()?;
        entries.retain(|e| e.name != name);
        entries.push(RegistryEntry {
            name: name.to_string(),
            kind,
            key: key.clone(),
            note: note.to_string(),
        });
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        self.write(&entries)
    }

    /// Removes `name`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Read/write failures from the underlying file.
    pub fn unregister(&self, name: &str) -> Result<bool, StoreError> {
        let mut entries = self.entries()?;
        let before = entries.len();
        entries.retain(|e| e.name != name);
        if entries.len() == before {
            return Ok(false);
        }
        self.write(&entries)?;
        Ok(true)
    }

    /// Looks up `name`.
    ///
    /// # Errors
    ///
    /// Read failures from the underlying file.
    pub fn lookup(&self, name: &str) -> Result<Option<RegistryEntry>, StoreError> {
        Ok(self.entries()?.into_iter().find(|e| e.name == name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;

    fn tmp_store(name: &str) -> Store {
        let dir = std::env::temp_dir()
            .join("ipas-store-tests")
            .join(format!("reg-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn register_lookup_unregister() {
        let store = tmp_store("basic");
        let reg = store.registry();
        assert!(reg.entries().unwrap().is_empty());
        let key = Key::parse("abcd").unwrap();
        reg.register("mm-base", ArtifactKind::TrainedModel, &key, "matmul")
            .unwrap();
        let hit = reg.lookup("mm-base").unwrap().unwrap();
        assert_eq!(hit.kind, ArtifactKind::TrainedModel);
        assert_eq!(hit.key, key);
        assert_eq!(hit.note, "matmul");
        assert!(reg.lookup("other").unwrap().is_none());
        assert!(reg.unregister("mm-base").unwrap());
        assert!(!reg.unregister("mm-base").unwrap());
        assert!(reg.entries().unwrap().is_empty());
    }

    #[test]
    fn reregister_repoints() {
        let store = tmp_store("repoint");
        let reg = store.registry();
        let k1 = Key::parse("1111").unwrap();
        let k2 = Key::parse("2222").unwrap();
        reg.register("m", ArtifactKind::TrainedModel, &k1, "")
            .unwrap();
        reg.register("m", ArtifactKind::TrainedModel, &k2, "")
            .unwrap();
        let entries = reg.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, k2);
    }

    #[test]
    fn bad_names_rejected_and_notes_sanitized() {
        let store = tmp_store("names");
        let reg = store.registry();
        let key = Key::parse("9999").unwrap();
        for bad in ["", "has space", "tab\tname", "a/b"] {
            assert!(matches!(
                reg.register(bad, ArtifactKind::TrainedModel, &key, ""),
                Err(StoreError::BadName(_))
            ));
        }
        reg.register("ok", ArtifactKind::TrainedModel, &key, "line1\nline2\tcol")
            .unwrap();
        let entry = reg.lookup("ok").unwrap().unwrap();
        assert_eq!(entry.note, "line1 line2 col");
    }
}

//! The on-disk artifact store.
//!
//! Layout under the store root (`IPAS_STORE_DIR`):
//!
//! ```text
//! <root>/objects/<kind>/<key>.art   one artifact per file
//! <root>/tmp/                       staging area for atomic writes
//! <root>/registry.tsv               name → (kind, key) model registry
//! ```
//!
//! Keys are fingerprints of the artifact's *inputs* (see
//! [`crate::hash::FingerprintBuilder`]), so the store doubles as a memo
//! table: a pipeline stage derives its input key, calls
//! [`Store::memoize`], and either gets the cached output back or
//! computes and persists it. Writes go through a per-process staging
//! file followed by an atomic rename, so concurrent campaigns sharing
//! one store never observe half-written artifacts — at worst two
//! processes both compute the same deterministic artifact and the
//! second rename wins with identical bytes.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::artifact::{decode_from, encode, inspect, ArtifactKind, Payload, StoreError};
use crate::flight::SingleFlight;
use crate::hash::Fingerprint;
use crate::registry::{valid_name, Registry};

/// Environment variable naming the store directory (mirrors
/// `IPAS_JOURNAL_DIR`).
pub const STORE_DIR_ENV: &str = "IPAS_STORE_DIR";

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A validated store key: a fingerprint hex string, optionally with a
/// `-NN` rank suffix (used when one stage yields several artifacts,
/// e.g. the top-N models of a grid search).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key(String);

impl Key {
    /// Wraps a raw key string, validating its character set.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadKey`] unless the key is nonempty, at most 128
    /// characters, and uses only `[0-9a-f-]` (no path separators, no
    /// dots — keys are used as file names).
    pub fn parse(s: &str) -> Result<Self, StoreError> {
        let ok = !s.is_empty()
            && s.len() <= 128
            && s.chars().all(|c| matches!(c, '0'..='9' | 'a'..='f' | '-'));
        if ok {
            Ok(Key(s.to_string()))
        } else {
            Err(StoreError::BadKey(s.to_string()))
        }
    }

    /// The key for a stage fingerprint.
    pub fn of(fp: &Fingerprint) -> Self {
        Key(fp.hex())
    }

    /// The key for the `rank`-th artifact of a stage fingerprint.
    pub fn ranked(fp: &Fingerprint, rank: usize) -> Self {
        Key(format!("{}-{rank:02}", fp.hex()))
    }

    /// The raw key string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// A 16-character abbreviation for log lines.
    pub fn short(&self) -> &str {
        &self.0[..self.0.len().min(16)]
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One object in a [`Store`] listing.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Store key.
    pub key: Key,
    /// File size in bytes.
    pub bytes: u64,
}

/// The verification status of one object (from [`Store::verify`]).
#[derive(Debug)]
pub struct VerifyReport {
    /// The object.
    pub entry: Entry,
    /// `Ok(schema)` when the checksum and envelope are intact, `Err`
    /// with the typed failure otherwise.
    pub status: Result<u32, StoreError>,
}

/// What [`Store::gc`] did.
#[derive(Debug, Default)]
pub struct GcReport {
    /// Objects kept because a registry (root or tenant) references them.
    pub kept: usize,
    /// Objects kept because a live [`PinGuard`] marked them in use.
    pub in_use: usize,
    /// Stale staging files swept from `tmp/` (left by crashed writers).
    pub stale_tmp: usize,
    /// Objects removed (kind, key).
    pub removed: Vec<(ArtifactKind, Key)>,
}

/// Whether a memoized stage was served from the store.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The artifact was found and decoded.
    Hit,
    /// No artifact existed for the key; it was computed and stored.
    Miss,
    /// An artifact existed but was damaged or version-skewed; it was
    /// recomputed and overwritten.
    Recovered,
    /// Another thread was already computing the same key
    /// ([`Store::memoize_shared`]); this caller waited for it and read
    /// its stored result instead of recomputing.
    Coalesced,
}

impl CacheOutcome {
    /// `true` when the stage's compute step was skipped.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit | CacheOutcome::Coalesced)
    }

    /// Log label (`hit` / `miss` / `recovered` / `coalesced`).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Recovered => "recovered",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// In-process pin table: (kind tag, key) → number of live guards.
type PinTable = Arc<Mutex<HashMap<(&'static str, String), usize>>>;

/// Marks one object as in use for as long as the guard lives:
/// [`Store::gc`] will not remove a pinned object. Obtained from
/// [`Store::pin`]; dropping the guard unpins (pins are reference
/// counted, so overlapping guards on one key compose).
#[derive(Debug)]
pub struct PinGuard {
    pins: PinTable,
    kind: &'static str,
    key: String,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        let slot = (self.kind, std::mem::take(&mut self.key));
        if let Some(count) = pins.get_mut(&slot) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&slot);
            }
        }
    }
}

/// Staging files older than this are considered abandoned by a crashed
/// writer and swept by [`Store::gc`]. Generous enough that no live
/// writer holds a staging file this long.
const STALE_TMP_AGE: Duration = Duration::from_secs(15 * 60);

/// A content-addressed artifact store rooted at a directory.
///
/// Clones share the same root *and* the same in-process pin table, so a
/// store handed to worker threads protects their in-flight artifacts
/// from a concurrent [`Store::gc`] on any other clone.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    /// The registry backing [`Store::registry`]: the shared root
    /// `registry.tsv`, or a per-tenant file under `registries/`.
    registry_file: PathBuf,
    /// Tenant namespace, when scoped via [`Store::for_tenant`].
    tenant: Option<String>,
    /// Objects currently in use by this process (see [`Store::pin`]).
    pins: PinTable,
}

fn io_err(path: &Path, error: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        error,
    }
}

impl Store {
    /// Opens (creating if needed) a store at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        for sub in ["objects", "tmp"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        let registry_file = root.join("registry.tsv");
        Ok(Store {
            root,
            registry_file,
            tenant: None,
            pins: Arc::default(),
        })
    }

    /// Scopes this store to a tenant namespace.
    ///
    /// Tenants share the object pool (content addressing dedups
    /// identical artifacts across tenants for free) but each gets a
    /// private registry at `registries/<tenant>.tsv` — names registered
    /// by one tenant are invisible to the others, and every tenant
    /// registry is a gc root alongside the shared one. The returned
    /// store shares this store's pin table.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadName`] for an invalid tenant name (same rules
    /// as registry names); [`StoreError::Io`] when the registries
    /// directory cannot be created.
    pub fn for_tenant(&self, tenant: &str) -> Result<Store, StoreError> {
        if !valid_name(tenant) {
            return Err(StoreError::BadName(tenant.to_string()));
        }
        let dir = self.root.join("registries");
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(Store {
            root: self.root.clone(),
            registry_file: dir.join(format!("{tenant}.tsv")),
            tenant: Some(tenant.to_string()),
            pins: Arc::clone(&self.pins),
        })
    }

    /// The tenant this store is scoped to, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Pins an object as in use: [`Store::gc`] keeps it while the
    /// returned guard lives, even when no registry references it. Used
    /// around compute-then-register windows, where a concurrent gc
    /// would otherwise reap a freshly computed artifact before its
    /// registry entry lands. Pins are per-process (shared across
    /// clones of this store), not persisted.
    pub fn pin(&self, kind: ArtifactKind, key: &Key) -> PinGuard {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        *pins
            .entry((kind.tag(), key.as_str().to_string()))
            .or_insert(0) += 1;
        PinGuard {
            pins: Arc::clone(&self.pins),
            kind: kind.tag(),
            key: key.as_str().to_string(),
        }
    }

    /// Opens the store named by `IPAS_STORE_DIR`, if set.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the variable is set but the directory
    /// cannot be created.
    pub fn from_env() -> Result<Option<Self>, StoreError> {
        match std::env::var_os(STORE_DIR_ENV) {
            Some(dir) if !dir.is_empty() => Store::open(PathBuf::from(dir)).map(Some),
            _ => Ok(None),
        }
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The model registry of this store (the tenant's registry when
    /// scoped via [`Store::for_tenant`]).
    pub fn registry(&self) -> Registry {
        Registry::new(self.registry_file.clone(), self.root.join("tmp"))
    }

    /// The on-disk path of an artifact (whether or not it exists).
    pub fn object_path(&self, kind: ArtifactKind, key: &Key) -> PathBuf {
        self.root
            .join("objects")
            .join(kind.tag())
            .join(format!("{key}.art"))
    }

    /// Atomically writes `text` to `path` via a staged temp file.
    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), StoreError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
        }
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
            path.file_name().and_then(|n| n.to_str()).unwrap_or("obj")
        ));
        fs::write(&tmp, text).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, path).map_err(|e| io_err(path, e))
    }

    /// Stores `payload` under `key`, atomically.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn put<P: Payload>(&self, key: &Key, payload: &P) -> Result<(), StoreError> {
        let path = self.object_path(P::KIND, key);
        self.write_atomic(&path, &encode(payload))
    }

    /// Loads the payload stored under `key`, or `None` when absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] / [`StoreError::SchemaSkew`] /
    /// [`StoreError::KindMismatch`] on a damaged or incompatible
    /// artifact — never a silent misread — and [`StoreError::Io`] on
    /// filesystem failures.
    pub fn get<P: Payload>(&self, key: &Key) -> Result<Option<P>, StoreError> {
        let path = self.object_path(P::KIND, key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        decode_from::<P>(&text, &path.display().to_string()).map(Some)
    }

    /// Returns whether an object exists for `key` (no decode).
    pub fn contains(&self, kind: ArtifactKind, key: &Key) -> bool {
        self.object_path(kind, key).exists()
    }

    /// Removes the object under `key`, if present.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn remove(&self, kind: ArtifactKind, key: &Key) -> Result<bool, StoreError> {
        let path = self.object_path(kind, key);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err(&path, e)),
        }
    }

    /// Lists every object in the store, sorted by kind then key.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn list(&self) -> Result<Vec<Entry>, StoreError> {
        let mut out = Vec::new();
        for kind in ArtifactKind::ALL {
            let dir = self.root.join("objects").join(kind.tag());
            let iter = match fs::read_dir(&dir) {
                Ok(it) => it,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(io_err(&dir, e)),
            };
            for dent in iter {
                let dent = dent.map_err(|e| io_err(&dir, e))?;
                let name = dent.file_name();
                let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".art")) else {
                    continue;
                };
                let Ok(key) = Key::parse(stem) else { continue };
                let bytes = dent.metadata().map(|m| m.len()).unwrap_or(0);
                out.push(Entry { kind, key, bytes });
            }
        }
        out.sort_by(|a, b| (a.kind.tag(), a.key.as_str()).cmp(&(b.kind.tag(), b.key.as_str())));
        Ok(out)
    }

    /// Checksum- and envelope-verifies every object.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the store itself cannot be read;
    /// per-object damage is reported in the returned list, not raised.
    pub fn verify(&self) -> Result<Vec<VerifyReport>, StoreError> {
        let mut reports = Vec::new();
        for entry in self.list()? {
            let path = self.object_path(entry.kind, &entry.key);
            let status = match fs::read_to_string(&path) {
                Err(e) => Err(io_err(&path, e)),
                Ok(text) => {
                    inspect(&text, &path.display().to_string()).and_then(|(kind, schema)| {
                        if kind != entry.kind {
                            Err(StoreError::KindMismatch {
                                found: kind.tag().to_string(),
                                expected: entry.kind,
                            })
                        } else if schema != entry.kind.current_schema() {
                            Err(StoreError::SchemaSkew {
                                kind: entry.kind,
                                found: schema,
                                expected: entry.kind.current_schema(),
                            })
                        } else {
                            Ok(schema)
                        }
                    })
                }
            };
            reports.push(VerifyReport { entry, status });
        }
        Ok(reports)
    }

    /// Every registry whose entries are gc roots: the shared root
    /// registry plus every tenant registry under `registries/`.
    fn root_registries(&self) -> Result<Vec<Registry>, StoreError> {
        let mut out = vec![Registry::new(
            self.root.join("registry.tsv"),
            self.root.join("tmp"),
        )];
        let dir = self.root.join("registries");
        let iter = match fs::read_dir(&dir) {
            Ok(it) => it,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(io_err(&dir, e)),
        };
        let mut tenant_files: Vec<PathBuf> = Vec::new();
        for dent in iter {
            let dent = dent.map_err(|e| io_err(&dir, e))?;
            let path = dent.path();
            if path.extension().and_then(|e| e.to_str()) == Some("tsv") {
                tenant_files.push(path);
            }
        }
        tenant_files.sort();
        for path in tenant_files {
            out.push(Registry::new(path, self.root.join("tmp")));
        }
        Ok(out)
    }

    /// Garbage-collects the memo cache: every object that is neither
    /// referenced by a registry (the shared root registry or any tenant
    /// registry) nor pinned by a live [`PinGuard`] in this process is
    /// removed. Registered artifacts survive; memoized stage outputs
    /// are cache and will be re-derived on the next cold run. Abandoned
    /// staging files in `tmp/` (older than 15 minutes — a crashed
    /// writer's leftovers, never a live write) are swept too.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let mut live: std::collections::HashSet<(&'static str, String)> =
            std::collections::HashSet::new();
        for registry in self.root_registries()? {
            for e in registry.entries()? {
                live.insert((e.kind.tag(), e.key.as_str().to_string()));
            }
        }
        let mut report = GcReport::default();
        for entry in self.list()? {
            let slot = (entry.kind.tag(), entry.key.as_str().to_string());
            if live.contains(&slot) {
                report.kept += 1;
            } else if self
                .pins
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains_key(&slot)
            {
                // Pinned: some thread is between computing this object
                // and registering/consuming it. Taking the lock per
                // entry (rather than snapshotting) keeps the check
                // current against pins taken while gc walks the store.
                report.in_use += 1;
            } else {
                self.remove(entry.kind, &entry.key)?;
                report.removed.push((entry.kind, entry.key));
            }
        }
        report.stale_tmp = self.sweep_stale_tmp()?;
        Ok(report)
    }

    /// Removes staging files whose age exceeds [`STALE_TMP_AGE`].
    fn sweep_stale_tmp(&self) -> Result<usize, StoreError> {
        let dir = self.root.join("tmp");
        let iter = match fs::read_dir(&dir) {
            Ok(it) => it,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(io_err(&dir, e)),
        };
        let mut swept = 0;
        for dent in iter {
            let dent = dent.map_err(|e| io_err(&dir, e))?;
            let stale = dent
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > STALE_TMP_AGE);
            // A vanished file was renamed into place or swept by a
            // concurrent gc — either way it is no longer stale.
            if stale && fs::remove_file(dent.path()).is_ok() {
                swept += 1;
            }
        }
        Ok(swept)
    }

    /// Memoizes one pipeline stage: returns the cached payload for
    /// `key` when present and intact, otherwise runs `compute`, stores
    /// the result, and returns it. A damaged or version-skewed cache
    /// entry is recomputed and overwritten (reported as
    /// [`CacheOutcome::Recovered`]), never propagated.
    ///
    /// # Errors
    ///
    /// [`MemoError::Store`] for store read/write failures,
    /// [`MemoError::Compute`] carrying the closure's error verbatim.
    pub fn memoize<P: Payload, E>(
        &self,
        key: &Key,
        compute: impl FnOnce() -> Result<P, E>,
    ) -> Result<(P, CacheOutcome), MemoError<E>> {
        // Pin for the whole hit-check/compute/put window so a
        // concurrent gc on another thread cannot reap the object
        // between this stage producing it and the caller using or
        // registering it.
        let _pin = self.pin(P::KIND, key);
        let mut outcome = CacheOutcome::Miss;
        match self.get::<P>(key) {
            Ok(Some(p)) => return Ok((p, CacheOutcome::Hit)),
            Ok(None) => {}
            Err(StoreError::Io { path, error }) => {
                return Err(MemoError::Store(StoreError::Io { path, error }))
            }
            // Damaged / skewed cache entry: recompute and overwrite.
            Err(_) => outcome = CacheOutcome::Recovered,
        }
        let payload = compute().map_err(MemoError::Compute)?;
        self.put(key, &payload).map_err(MemoError::Store)?;
        Ok((payload, outcome))
    }

    /// [`Store::memoize`] with cross-thread coalescing: when several
    /// threads memoize the same key concurrently, exactly one (the
    /// single-flight leader) runs `compute`; the others block until it
    /// finishes and read its stored artifact, reported as
    /// [`CacheOutcome::Coalesced`]. A failed leader does not poison the
    /// key — a waiting follower simply becomes the next leader and
    /// retries the computation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Store::memoize`].
    pub fn memoize_shared<P: Payload, E>(
        &self,
        flight: &SingleFlight,
        key: &Key,
        compute: impl FnOnce() -> Result<P, E>,
    ) -> Result<(P, CacheOutcome), MemoError<E>> {
        let _pin = self.pin(P::KIND, key);
        let flight_key = format!("{}/{}", P::KIND.tag(), key.as_str());
        let mut compute = Some(compute);
        loop {
            let entry = flight.begin(&flight_key);
            if entry.is_leader() {
                // `compute` is consumed at most once: only the leader
                // arm runs it, and a leader always returns.
                return self.memoize(key, compute.take().expect("one leader run"));
            }
            drop(entry);
            // The leader finished (or died): serve its result when it
            // landed; otherwise loop and contend for leadership.
            match self.get::<P>(key) {
                Ok(Some(p)) => return Ok((p, CacheOutcome::Coalesced)),
                Ok(None) => {}
                Err(StoreError::Io { path, error }) => {
                    return Err(MemoError::Store(StoreError::Io { path, error }))
                }
                // Damaged entry: contend for leadership to recover it.
                Err(_) => {}
            }
        }
    }
}

/// Error from [`Store::memoize`]: either the store failed or the
/// stage's compute closure did.
#[derive(Debug)]
pub enum MemoError<E> {
    /// The store could not be read or written.
    Store(StoreError),
    /// The compute closure failed (cache untouched).
    Compute(E),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::CampaignSummary;

    fn tmp_store(name: &str) -> Store {
        let dir = std::env::temp_dir()
            .join("ipas-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn summary(seed: u64) -> CampaignSummary {
        CampaignSummary {
            workload: "w".into(),
            runs: 64,
            seed,
            nominal_insts: 1000,
            counts: [10, 20, 30, 4],
            harness_failures: 0,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let store = tmp_store("putget");
        let key = Key::parse("aa11").unwrap();
        assert!(store.get::<CampaignSummary>(&key).unwrap().is_none());
        store.put(&key, &summary(7)).unwrap();
        let back = store.get::<CampaignSummary>(&key).unwrap().unwrap();
        assert_eq!(back, summary(7));
        assert!(store.contains(ArtifactKind::CampaignSummary, &key));
    }

    #[test]
    fn key_validation_rejects_path_tricks() {
        assert!(Key::parse("abc123-00").is_ok());
        for bad in ["", "ABC", "../x", "a/b", "a.art", "zz"] {
            assert!(Key::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn list_and_verify_cover_all_kinds() {
        let store = tmp_store("list");
        store.put(&Key::parse("01").unwrap(), &summary(1)).unwrap();
        store.put(&Key::parse("02").unwrap(), &summary(2)).unwrap();
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 2);
        let reports = store.verify().unwrap();
        assert!(reports.iter().all(|r| r.status.is_ok()));
    }

    #[test]
    fn verify_flags_corruption() {
        let store = tmp_store("verify");
        let key = Key::parse("0badc0de").unwrap();
        store.put(&key, &summary(3)).unwrap();
        let path = store.object_path(ArtifactKind::CampaignSummary, &key);
        let mut text = fs::read_to_string(&path).unwrap();
        text = text.replace("counts 10", "counts 11");
        fs::write(&path, text).unwrap();
        let reports = store.verify().unwrap();
        assert_eq!(reports.len(), 1);
        assert!(matches!(reports[0].status, Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn gc_keeps_only_registered() {
        let store = tmp_store("gc");
        let keep = Key::parse("aaaa").unwrap();
        let drop1 = Key::parse("bbbb").unwrap();
        store.put(&keep, &summary(1)).unwrap();
        store.put(&drop1, &summary(2)).unwrap();
        store
            .registry()
            .register("baseline", ArtifactKind::CampaignSummary, &keep, "test")
            .unwrap();
        let report = store.gc().unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed.len(), 1);
        assert_eq!(report.removed[0].1, drop1);
        assert!(store.contains(ArtifactKind::CampaignSummary, &keep));
        assert!(!store.contains(ArtifactKind::CampaignSummary, &drop1));
    }

    #[test]
    fn memoize_hits_after_miss_and_recovers_corruption() {
        let store = tmp_store("memo");
        let key = Key::parse("feed").unwrap();
        let mut computes = 0;
        let (v, out) = store
            .memoize::<CampaignSummary, ()>(&key, || {
                computes += 1;
                Ok(summary(9))
            })
            .unwrap();
        assert_eq!(out, CacheOutcome::Miss);
        assert_eq!(v.seed, 9);
        let (_, out) = store
            .memoize::<CampaignSummary, ()>(&key, || {
                computes += 1;
                Ok(summary(9))
            })
            .unwrap();
        assert!(out.is_hit());
        assert_eq!(computes, 1, "hit must skip compute");

        // Damage the entry: memoize recomputes and overwrites.
        let path = store.object_path(ArtifactKind::CampaignSummary, &key);
        fs::write(&path, "garbage\n").unwrap();
        let (_, out) = store
            .memoize::<CampaignSummary, ()>(&key, || {
                computes += 1;
                Ok(summary(9))
            })
            .unwrap();
        assert_eq!(out, CacheOutcome::Recovered);
        assert_eq!(computes, 2);
        assert!(store.get::<CampaignSummary>(&key).unwrap().is_some());
    }

    #[test]
    fn concurrent_puts_are_safe() {
        let store = tmp_store("concurrent");
        let key = Key::parse("cafe").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = store.clone();
                let key = key.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        store.put(&key, &summary(42)).unwrap();
                        if let Some(back) = store.get::<CampaignSummary>(&key).unwrap() {
                            assert_eq!(back, summary(42));
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn compute_error_leaves_cache_untouched() {
        let store = tmp_store("computeerr");
        let key = Key::parse("dead").unwrap();
        let res = store.memoize::<CampaignSummary, &str>(&key, || Err("boom"));
        assert!(matches!(res, Err(MemoError::Compute("boom"))));
        assert!(!store.contains(ArtifactKind::CampaignSummary, &key));
    }
}

//! `ipas-store`: content-addressed artifact store and model registry.
//!
//! The IPAS pipeline is a chain of expensive stages — fault-injection
//! campaign, feature extraction, C-SVM grid search, duplication,
//! evaluation. This crate gives each stage a memo table on disk so the
//! pipeline becomes incremental: every stage derives a
//! [`Fingerprint`] of its canonical *inputs* (printed IR module,
//! campaign config, SVM grid, feature-schema version), and the stage's
//! output is stored under that key. Re-running with identical inputs
//! resolves the stage from the store; changing any input changes the
//! key and forces a recompute.
//!
//! Three layers:
//!
//! - [`hash`]: a dependency-free SHA-256 plus [`FingerprintBuilder`],
//!   which frames labeled fields unambiguously so distinct inputs can
//!   never alias to one key.
//! - [`artifact`]: the typed artifact kinds ([`TrainingSet`],
//!   [`TrainedModel`], [`CampaignSummary`], [`ProtectedModule`]) and
//!   their hand-rolled text envelope — schema-version header, checksum
//!   trailer — so corruption and version skew surface as typed
//!   [`StoreError`]s instead of silently misread data. Floats are
//!   encoded as hex bit patterns and round-trip bit-exactly.
//! - [`store`]: the on-disk [`Store`] (`put`/`get`/`list`/`verify`/
//!   `gc`, atomic tmp-file+rename writes, [`Store::memoize`]) and the
//!   [`Registry`] mapping human names to keys; registered names are
//!   the gc roots.
//!
//! The store root comes from the `IPAS_STORE_DIR` environment variable
//! (see [`STORE_DIR_ENV`]), mirroring `IPAS_JOURNAL_DIR`.

pub mod artifact;
pub mod flight;
pub mod hash;
pub mod json;
pub mod registry;
pub mod store;

pub use artifact::{
    ArtifactKind, CampaignSummary, FuzzRepro, ProtectedModule, SectionFailureRow, SectionIndex,
    SectionIndexEntry, SectionProfile, SectionRecordRow, StoreError, TrainedModel, TrainingRow,
    TrainingSet,
};
pub use flight::{FlightEntry, SingleFlight};
pub use hash::{Fingerprint, FingerprintBuilder};
pub use json::{Fields, LineBuilder};
pub use registry::{Registry, RegistryEntry};
pub use store::{
    CacheOutcome, Entry, GcReport, Key, MemoError, PinGuard, Store, VerifyReport, STORE_DIR_ENV,
};

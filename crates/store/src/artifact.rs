//! Typed, versioned, checksummed text artifacts.
//!
//! Every artifact is a line-oriented text file with three parts:
//!
//! ```text
//! ipas-artifact 1          ← envelope format version
//! kind trained-model       ← artifact kind tag
//! schema 1                 ← per-kind schema version
//! --
//! ...kind-specific body...
//! checksum <64-hex sha256> ← over every byte above this line
//! ```
//!
//! The checksum trailer makes corruption (a flipped byte, a truncated
//! file) a typed [`StoreError::Corrupt`] on load, and the schema header
//! makes version skew a typed [`StoreError::SchemaSkew`] — an artifact
//! is never silently misread. Floats in bodies are encoded as 16-digit
//! hex IEEE-754 bit patterns so decoding is bit-exact: a model exported
//! and re-imported produces byte-identical decision values.

use std::fmt;
use std::path::PathBuf;

use crate::hash::{hex, sha256};

/// Envelope format version.
pub const ENVELOPE_VERSION: u32 = 1;

/// The seven artifact kinds the pipeline persists.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Labeled feature rows extracted from a training campaign.
    TrainingSet,
    /// A trained SVM plus its feature scaling and selection score.
    TrainedModel,
    /// Outcome counts of a fault-injection campaign.
    CampaignSummary,
    /// A protected module in canonical IR text.
    ProtectedModule,
    /// A fuzzing finding: the divergent input plus its minimized repro.
    FuzzRepro,
    /// Injection outcomes of one section of a sectional campaign.
    SectionProfile,
    /// Baseline index of a sectional campaign: per-section fingerprints
    /// and profile keys, for incremental re-analysis.
    SectionIndex,
}

impl ArtifactKind {
    /// All kinds, in listing order.
    pub const ALL: [ArtifactKind; 7] = [
        ArtifactKind::TrainingSet,
        ArtifactKind::TrainedModel,
        ArtifactKind::CampaignSummary,
        ArtifactKind::ProtectedModule,
        ArtifactKind::FuzzRepro,
        ArtifactKind::SectionProfile,
        ArtifactKind::SectionIndex,
    ];

    /// The on-disk directory / header tag for this kind.
    pub fn tag(self) -> &'static str {
        match self {
            ArtifactKind::TrainingSet => "training-set",
            ArtifactKind::TrainedModel => "trained-model",
            ArtifactKind::CampaignSummary => "campaign-summary",
            ArtifactKind::ProtectedModule => "protected-module",
            ArtifactKind::FuzzRepro => "fuzz-repro",
            ArtifactKind::SectionProfile => "section-profile",
            ArtifactKind::SectionIndex => "section-index",
        }
    }

    /// Parses a header tag.
    pub fn from_tag(tag: &str) -> Option<Self> {
        ArtifactKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// The schema version currently written for this kind.
    pub fn current_schema(self) -> u32 {
        match self {
            ArtifactKind::TrainingSet => TrainingSet::SCHEMA,
            ArtifactKind::TrainedModel => TrainedModel::SCHEMA,
            ArtifactKind::CampaignSummary => CampaignSummary::SCHEMA,
            ArtifactKind::ProtectedModule => ProtectedModule::SCHEMA,
            ArtifactKind::FuzzRepro => FuzzRepro::SCHEMA,
            ArtifactKind::SectionProfile => SectionProfile::SCHEMA,
            ArtifactKind::SectionIndex => SectionIndex::SCHEMA,
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Errors from the store and the artifact codecs.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure underneath the store.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The artifact text is damaged: bad envelope, bad body line, or a
    /// checksum mismatch.
    Corrupt {
        /// Where the artifact came from (path or "<memory>").
        source: String,
        /// What was wrong.
        reason: String,
    },
    /// The artifact was written by a different schema version of its
    /// kind; re-deriving it is required, not reinterpretation.
    SchemaSkew {
        /// The artifact kind.
        kind: ArtifactKind,
        /// Version found in the header.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The artifact is of a different kind than requested.
    KindMismatch {
        /// Kind tag found in the header.
        found: String,
        /// Kind the caller asked to decode.
        expected: ArtifactKind,
    },
    /// A store key contains characters outside `[0-9a-f-]`.
    BadKey(String),
    /// A registry name is empty or contains tabs/newlines/path
    /// separators.
    BadName(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, error } => {
                write!(f, "store I/O error at {}: {error}", path.display())
            }
            StoreError::Corrupt { source, reason } => {
                write!(f, "corrupt artifact in {source}: {reason}")
            }
            StoreError::SchemaSkew {
                kind,
                found,
                expected,
            } => write!(
                f,
                "{kind} artifact has schema v{found} but this build expects v{expected}; \
                 re-derive it (the store never reinterprets old schemas)"
            ),
            StoreError::KindMismatch { found, expected } => {
                write!(f, "artifact is a `{found}`, expected `{expected}`")
            }
            StoreError::BadKey(k) => write!(f, "invalid store key `{k}`"),
            StoreError::BadName(n) => write!(f, "invalid registry name `{n}`"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A value that can be stored as an artifact.
pub trait Payload: Sized {
    /// The artifact kind this payload encodes to.
    const KIND: ArtifactKind;
    /// Schema version written by [`Payload::encode_body`]. Bump on any
    /// incompatible body change.
    const SCHEMA: u32;

    /// Appends the body lines (no envelope) to `out`.
    fn encode_body(&self, out: &mut String);

    /// Decodes the body lines.
    ///
    /// # Errors
    ///
    /// Returns a reason string on malformed bodies; the envelope layer
    /// wraps it into [`StoreError::Corrupt`].
    fn decode_body(body: &str) -> Result<Self, String>;
}

/// Encodes a payload into the full artifact text (envelope + checksum).
pub fn encode<P: Payload>(payload: &P) -> String {
    let mut text = String::new();
    text.push_str(&format!("ipas-artifact {ENVELOPE_VERSION}\n"));
    text.push_str(&format!("kind {}\n", P::KIND.tag()));
    text.push_str(&format!("schema {}\n", P::SCHEMA));
    text.push_str("--\n");
    payload.encode_body(&mut text);
    let sum = hex(&sha256(text.as_bytes()));
    text.push_str(&format!("checksum {sum}\n"));
    text
}

/// Splits artifact text into (covered-bytes, header fields, body, checksum).
struct Envelope<'a> {
    kind_tag: &'a str,
    schema: u32,
    body: &'a str,
}

fn corrupt(source: &str, reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        source: source.to_string(),
        reason: reason.into(),
    }
}

/// Parses and checksum-verifies the envelope; shared by typed decode
/// and `verify`.
fn open_envelope<'a>(text: &'a str, source: &str) -> Result<Envelope<'a>, StoreError> {
    // The checksum line is the last non-empty line.
    let trimmed = text.trim_end_matches('\n');
    let (covered, checksum_line) = match trimmed.rfind('\n') {
        Some(pos) => (&text[..pos + 1], &trimmed[pos + 1..]),
        None => return Err(corrupt(source, "artifact has no checksum trailer")),
    };
    let sum = checksum_line
        .strip_prefix("checksum ")
        .ok_or_else(|| corrupt(source, "missing `checksum` trailer line"))?
        .trim();
    let actual = hex(&sha256(covered.as_bytes()));
    if sum != actual {
        return Err(corrupt(
            source,
            format!("checksum mismatch: trailer {sum}, content {actual}"),
        ));
    }

    let mut lines = covered.lines();
    let magic = lines.next().unwrap_or("");
    let version = magic
        .strip_prefix("ipas-artifact ")
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| corrupt(source, format!("bad magic line `{magic}`")))?;
    if version != ENVELOPE_VERSION {
        return Err(corrupt(
            source,
            format!("unsupported envelope version {version}"),
        ));
    }
    let kind_line = lines.next().unwrap_or("");
    let kind_tag = kind_line
        .strip_prefix("kind ")
        .ok_or_else(|| corrupt(source, format!("bad kind line `{kind_line}`")))?;
    let schema_line = lines.next().unwrap_or("");
    let schema = schema_line
        .strip_prefix("schema ")
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| corrupt(source, format!("bad schema line `{schema_line}`")))?;
    let sep = lines.next().unwrap_or("");
    if sep != "--" {
        return Err(corrupt(source, "missing `--` header separator"));
    }
    // Body starts after the 4 header lines.
    let mut offset = 0usize;
    for _ in 0..4 {
        offset += covered[offset..]
            .find('\n')
            .map(|p| p + 1)
            .unwrap_or(covered.len() - offset);
    }
    Ok(Envelope {
        kind_tag,
        schema,
        body: &covered[offset..],
    })
}

/// Decodes artifact text into a typed payload, verifying the checksum,
/// the kind, and the schema version.
///
/// # Errors
///
/// [`StoreError::Corrupt`], [`StoreError::KindMismatch`], or
/// [`StoreError::SchemaSkew`].
pub fn decode<P: Payload>(text: &str) -> Result<P, StoreError> {
    decode_from::<P>(text, "<memory>")
}

/// Like [`decode`], attributing errors to `source` (a path).
///
/// # Errors
///
/// See [`decode`].
pub fn decode_from<P: Payload>(text: &str, source: &str) -> Result<P, StoreError> {
    let env = open_envelope(text, source)?;
    if env.kind_tag != P::KIND.tag() {
        return Err(StoreError::KindMismatch {
            found: env.kind_tag.to_string(),
            expected: P::KIND,
        });
    }
    if env.schema != P::SCHEMA {
        return Err(StoreError::SchemaSkew {
            kind: P::KIND,
            found: env.schema,
            expected: P::SCHEMA,
        });
    }
    P::decode_body(env.body).map_err(|reason| corrupt(source, reason))
}

/// Checksum- and header-verifies artifact text without decoding the
/// body. Returns the kind and schema found.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on damage; unknown kind tags are corrupt too.
pub fn inspect(text: &str, source: &str) -> Result<(ArtifactKind, u32), StoreError> {
    let env = open_envelope(text, source)?;
    let kind = ArtifactKind::from_tag(env.kind_tag)
        .ok_or_else(|| corrupt(source, format!("unknown artifact kind `{}`", env.kind_tag)))?;
    Ok((kind, env.schema))
}

// ---------------------------------------------------------------------
// Bit-exact float encoding.

/// Encodes a float as its 16-digit hex IEEE-754 bit pattern.
pub fn fhex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes a [`fhex`]-encoded float.
///
/// # Errors
///
/// Returns a reason string on malformed input.
pub fn parse_fhex(tok: &str) -> Result<f64, String> {
    if tok.len() != 16 {
        return Err(format!("bad float bits `{tok}` (want 16 hex digits)"));
    }
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad float bits `{tok}`"))
}

fn parse_fhex_list(rest: &str) -> Result<Vec<f64>, String> {
    rest.split_whitespace().map(parse_fhex).collect()
}

fn fhex_list(vs: &[f64]) -> String {
    vs.iter().map(|&v| fhex(v)).collect::<Vec<_>>().join(" ")
}

/// Pulls `key value` off a body line, enforcing the key.
fn expect_field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("missing `{key}` line"))?;
    line.strip_prefix(key)
        .map(str::trim)
        .ok_or_else(|| format!("expected `{key} ...`, got `{line}`"))
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, String> {
    tok.parse().map_err(|_| format!("bad {what} `{tok}`"))
}

// ---------------------------------------------------------------------
// TrainingSet

/// One labeled training sample: the injected instruction's feature
/// vector plus the observed outcome and the two label kinds derived
/// from it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRow {
    /// Raw (unstandardized) static features of the injected site.
    pub features: Vec<f64>,
    /// The bit flipped.
    pub bit: u32,
    /// Outcome label string (`symptom|detected|masked|SOC`).
    pub outcome: String,
    /// Positive for the SOC-generating classifier (IPAS).
    pub soc: bool,
    /// Positive for the symptom-generating classifier (baseline).
    pub symptom: bool,
}

/// Feature rows + labels extracted from one training campaign — the
/// single schema shared by the pipeline and offline analysis tooling.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSet {
    /// Workload display name (provenance only; not part of the key).
    pub workload: String,
    /// Feature column names, in row order.
    pub columns: Vec<String>,
    /// The samples.
    pub rows: Vec<TrainingRow>,
}

impl TrainingSet {
    /// Number of SOC-positive rows.
    pub fn num_soc(&self) -> usize {
        self.rows.iter().filter(|r| r.soc).count()
    }

    /// Number of symptom-positive rows.
    pub fn num_symptom(&self) -> usize {
        self.rows.iter().filter(|r| r.symptom).count()
    }

    /// Renders the rows as CSV (feature columns + bit, outcome, labels),
    /// the offline-analysis view of this artifact.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        header.extend_from_slice(&["bit", "outcome", "soc_label", "symptom_label"]);
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let mut cells: Vec<String> = row.features.iter().map(|v| v.to_string()).collect();
            cells.push(row.bit.to_string());
            cells.push(row.outcome.clone());
            cells.push((row.soc as u8).to_string());
            cells.push((row.symptom as u8).to_string());
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

impl Payload for TrainingSet {
    const KIND: ArtifactKind = ArtifactKind::TrainingSet;
    const SCHEMA: u32 = 1;

    fn encode_body(&self, out: &mut String) {
        out.push_str(&format!("workload {}\n", self.workload));
        out.push_str(&format!("columns {}\n", self.columns.join(",")));
        out.push_str(&format!("rows {}\n", self.rows.len()));
        for row in &self.rows {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                row.bit,
                row.outcome,
                u8::from(row.soc),
                u8::from(row.symptom),
                fhex_list(&row.features)
            ));
        }
    }

    fn decode_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let workload = expect_field(lines.next(), "workload")?.to_string();
        let columns: Vec<String> = expect_field(lines.next(), "columns")?
            .split(',')
            .filter(|c| !c.is_empty())
            .map(str::to_string)
            .collect();
        let n: usize = parse_num(expect_field(lines.next(), "rows")?, "row count")?;
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("training set truncated: {i} of {n} rows present"))?;
            let mut toks = line.split_whitespace();
            let bit = parse_num(toks.next().ok_or("empty row")?, "bit")?;
            let outcome = toks.next().ok_or("row missing outcome")?.to_string();
            let soc = toks.next().ok_or("row missing soc label")? == "1";
            let symptom = toks.next().ok_or("row missing symptom label")? == "1";
            let features: Vec<f64> = toks.map(parse_fhex).collect::<Result<_, _>>()?;
            if features.len() != columns.len() {
                return Err(format!(
                    "row {i} has {} features, header names {}",
                    features.len(),
                    columns.len()
                ));
            }
            rows.push(TrainingRow {
                features,
                bit,
                outcome,
                soc,
                symptom,
            });
        }
        if lines.next().is_some() {
            return Err("trailing data after final row".to_string());
        }
        Ok(TrainingSet {
            workload,
            columns,
            rows,
        })
    }
}

// ---------------------------------------------------------------------
// TrainedModel

/// A trained, self-contained IPAS classifier: the SVM's support
/// expansion, the feature standardization fit on its training set, and
/// the hyperparameters plus cross-validation score that selected it.
///
/// All floats round-trip bit-exactly, so an imported model's decision
/// function is bit-identical to the exported one's.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// Grid-selected RBF `γ` (also stored with the SVM below).
    pub gamma: f64,
    /// Positive-class penalty multiplier used in training.
    pub pos_weight: f64,
    /// KKT tolerance used in training.
    pub tol: f64,
    /// SMO sweep budget used in training.
    pub max_passes: usize,
    /// Cross-validated Eq. 1 F-score of this configuration.
    pub f_score: f64,
    /// CV accuracy on the positive class.
    pub acc1: f64,
    /// CV accuracy on the negative class.
    pub acc2: f64,
    /// Per-feature standardization means.
    pub scaler_mean: Vec<f64>,
    /// Per-feature standardization deviations.
    pub scaler_std: Vec<f64>,
    /// Support vectors (standardized feature space).
    pub support: Vec<Vec<f64>>,
    /// `alpha_i * y_i` per support vector.
    pub coef: Vec<f64>,
    /// Decision-function bias.
    pub bias: f64,
}

impl Payload for TrainedModel {
    const KIND: ArtifactKind = ArtifactKind::TrainedModel;
    const SCHEMA: u32 = 1;

    fn encode_body(&self, out: &mut String) {
        out.push_str(&format!("c {}\n", fhex(self.c)));
        out.push_str(&format!("gamma {}\n", fhex(self.gamma)));
        out.push_str(&format!("pos-weight {}\n", fhex(self.pos_weight)));
        out.push_str(&format!("tol {}\n", fhex(self.tol)));
        out.push_str(&format!("max-passes {}\n", self.max_passes));
        out.push_str(&format!("f-score {}\n", fhex(self.f_score)));
        out.push_str(&format!("acc1 {}\n", fhex(self.acc1)));
        out.push_str(&format!("acc2 {}\n", fhex(self.acc2)));
        out.push_str(&format!("mean {}\n", fhex_list(&self.scaler_mean)));
        out.push_str(&format!("std {}\n", fhex_list(&self.scaler_std)));
        out.push_str(&format!("bias {}\n", fhex(self.bias)));
        out.push_str(&format!("sv {}\n", self.support.len()));
        for (sv, c) in self.support.iter().zip(&self.coef) {
            out.push_str(&format!("{} {}\n", fhex(*c), fhex_list(sv)));
        }
    }

    fn decode_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let c = parse_fhex(expect_field(lines.next(), "c")?)?;
        let gamma = parse_fhex(expect_field(lines.next(), "gamma")?)?;
        let pos_weight = parse_fhex(expect_field(lines.next(), "pos-weight")?)?;
        let tol = parse_fhex(expect_field(lines.next(), "tol")?)?;
        let max_passes = parse_num(expect_field(lines.next(), "max-passes")?, "max-passes")?;
        let f_score = parse_fhex(expect_field(lines.next(), "f-score")?)?;
        let acc1 = parse_fhex(expect_field(lines.next(), "acc1")?)?;
        let acc2 = parse_fhex(expect_field(lines.next(), "acc2")?)?;
        let scaler_mean = parse_fhex_list(expect_field(lines.next(), "mean")?)?;
        let scaler_std = parse_fhex_list(expect_field(lines.next(), "std")?)?;
        let bias = parse_fhex(expect_field(lines.next(), "bias")?)?;
        let n: usize = parse_num(expect_field(lines.next(), "sv")?, "support count")?;
        if scaler_mean.len() != scaler_std.len() {
            return Err("scaler mean/std dimensionality mismatch".to_string());
        }
        let mut support = Vec::with_capacity(n);
        let mut coef = Vec::with_capacity(n);
        for i in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("model truncated: {i} of {n} support vectors present"))?;
            let vals = parse_fhex_list(line)?;
            let (&c0, xs) = vals
                .split_first()
                .ok_or_else(|| format!("empty support-vector line {i}"))?;
            if xs.len() != scaler_mean.len() {
                return Err(format!(
                    "support vector {i} has dimension {}, scaler has {}",
                    xs.len(),
                    scaler_mean.len()
                ));
            }
            coef.push(c0);
            support.push(xs.to_vec());
        }
        if lines.next().is_some() {
            return Err("trailing data after final support vector".to_string());
        }
        Ok(TrainedModel {
            c,
            gamma,
            pos_weight,
            tol,
            max_passes,
            f_score,
            acc1,
            acc2,
            scaler_mean,
            scaler_std,
            support,
            coef,
            bias,
        })
    }
}

// ---------------------------------------------------------------------
// CampaignSummary

/// Outcome counts of one fault-injection campaign, in §5.5 order
/// (symptom, detected, masked, SOC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Workload display name.
    pub workload: String,
    /// Planned runs.
    pub runs: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Clean-run dynamic instruction count.
    pub nominal_insts: u64,
    /// Classified-run counts: `[symptom, detected, masked, soc]`.
    pub counts: [u64; 4],
    /// Plans that exhausted their retry budget.
    pub harness_failures: u64,
}

impl CampaignSummary {
    /// Fraction of classified runs in outcome slot `i` (§5.5 order).
    pub fn fraction(&self, i: usize) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// SOC percentage of the campaign.
    pub fn soc_pct(&self) -> f64 {
        self.fraction(3) * 100.0
    }
}

impl Payload for CampaignSummary {
    const KIND: ArtifactKind = ArtifactKind::CampaignSummary;
    const SCHEMA: u32 = 1;

    fn encode_body(&self, out: &mut String) {
        out.push_str(&format!("workload {}\n", self.workload));
        out.push_str(&format!("runs {}\n", self.runs));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("nominal-insts {}\n", self.nominal_insts));
        out.push_str(&format!(
            "counts {} {} {} {}\n",
            self.counts[0], self.counts[1], self.counts[2], self.counts[3]
        ));
        out.push_str(&format!("harness-failures {}\n", self.harness_failures));
    }

    fn decode_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let workload = expect_field(lines.next(), "workload")?.to_string();
        let runs = parse_num(expect_field(lines.next(), "runs")?, "runs")?;
        let seed = parse_num(expect_field(lines.next(), "seed")?, "seed")?;
        let nominal_insts = parse_num(
            expect_field(lines.next(), "nominal-insts")?,
            "nominal-insts",
        )?;
        let counts_line = expect_field(lines.next(), "counts")?;
        let counts_vec: Vec<u64> = counts_line
            .split_whitespace()
            .map(|t| parse_num(t, "count"))
            .collect::<Result<_, _>>()?;
        let counts: [u64; 4] = counts_vec
            .try_into()
            .map_err(|_| "counts line must have 4 entries".to_string())?;
        let harness_failures = parse_num(
            expect_field(lines.next(), "harness-failures")?,
            "harness-failures",
        )?;
        Ok(CampaignSummary {
            workload,
            runs,
            seed,
            nominal_insts,
            counts,
            harness_failures,
        })
    }
}

// ---------------------------------------------------------------------
// ProtectedModule

/// A protected module in canonical IR text plus the duplication-pass
/// statistics that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedModule {
    /// Duplicable instructions considered by the pass.
    pub considered: u64,
    /// Instructions duplicated.
    pub duplicated: u64,
    /// `__ipas_check_*` comparisons inserted.
    pub checks: u64,
    /// Canonical printed IR. Stored verbatim so a warm run emits a
    /// byte-identical module.
    pub ir_text: String,
}

impl ProtectedModule {
    /// Builds from a module and its stats.
    pub fn from_module(
        module: &ipas_ir::Module,
        considered: u64,
        duplicated: u64,
        checks: u64,
    ) -> Self {
        ProtectedModule {
            considered,
            duplicated,
            checks,
            ir_text: module.to_text(),
        }
    }

    /// Parses the stored IR back into a module.
    ///
    /// # Errors
    ///
    /// Returns the IR parse error (would indicate a printer/parser bug:
    /// the checksum already proved the text is what was written).
    pub fn module(&self) -> Result<ipas_ir::Module, ipas_ir::parser::ParseError> {
        ipas_ir::parser::parse_module(&self.ir_text)
    }
}

impl Payload for ProtectedModule {
    const KIND: ArtifactKind = ArtifactKind::ProtectedModule;
    const SCHEMA: u32 = 1;

    fn encode_body(&self, out: &mut String) {
        out.push_str(&format!("considered {}\n", self.considered));
        out.push_str(&format!("duplicated {}\n", self.duplicated));
        out.push_str(&format!("checks {}\n", self.checks));
        let ir_lines = self.ir_text.lines().count();
        out.push_str(&format!("ir {ir_lines}\n"));
        out.push_str(&self.ir_text);
        if !self.ir_text.ends_with('\n') {
            out.push('\n');
        }
    }

    fn decode_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let considered = parse_num(expect_field(lines.next(), "considered")?, "considered")?;
        let duplicated = parse_num(expect_field(lines.next(), "duplicated")?, "duplicated")?;
        let checks = parse_num(expect_field(lines.next(), "checks")?, "checks")?;
        let n: usize = parse_num(expect_field(lines.next(), "ir")?, "ir line count")?;
        let mut ir_text = String::new();
        for i in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("IR truncated: {i} of {n} lines present"))?;
            ir_text.push_str(line);
            ir_text.push('\n');
        }
        if lines.next().is_some() {
            return Err("trailing data after IR text".to_string());
        }
        Ok(ProtectedModule {
            considered,
            duplicated,
            checks,
            ir_text,
        })
    }
}

// ---------------------------------------------------------------------
// FuzzRepro

/// A fuzzing finding: which oracle diverged, the seed and case index
/// that produced it, the full original input, and the delta-debugged
/// minimal reproducer. Inputs are stored verbatim so a repro replays
/// byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzRepro {
    /// Oracle that flagged the divergence (`engine-diff`, `roundtrip`,
    /// `passes`, `duplication`, `no-panic`).
    pub oracle: String,
    /// Input language: `scil` source or `ir` module text.
    pub input_kind: String,
    /// Campaign seed.
    pub seed: u64,
    /// Case index within the campaign (seed + case replays the input).
    pub case: u64,
    /// The oracle's divergence report.
    pub divergence: String,
    /// The generated input that diverged, verbatim.
    pub input: String,
    /// The minimized input (equal to `input` if minimization failed to
    /// shrink it), verbatim.
    pub minimized: String,
}

/// Appends a counted multi-line text block (`key <lines>` then the
/// verbatim lines) — the same shape `ProtectedModule` uses for IR text.
/// Blocks are newline-normalized: decode always yields text whose every
/// line (including the last) ends in `\n`.
fn encode_block(out: &mut String, key: &str, text: &str) {
    out.push_str(&format!("{key} {}\n", text.lines().count()));
    out.push_str(text);
    if !text.is_empty() && !text.ends_with('\n') {
        out.push('\n');
    }
}

fn decode_block<'a>(lines: &mut std::str::Lines<'a>, key: &str) -> Result<String, String> {
    let n: usize = parse_num(expect_field(lines.next(), key)?, key)?;
    let mut text = String::new();
    for i in 0..n {
        let line = lines
            .next()
            .ok_or_else(|| format!("`{key}` truncated: {i} of {n} lines present"))?;
        text.push_str(line);
        text.push('\n');
    }
    Ok(text)
}

impl Payload for FuzzRepro {
    const KIND: ArtifactKind = ArtifactKind::FuzzRepro;
    const SCHEMA: u32 = 1;

    fn encode_body(&self, out: &mut String) {
        out.push_str(&format!("oracle {}\n", self.oracle));
        out.push_str(&format!("input-kind {}\n", self.input_kind));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("case {}\n", self.case));
        encode_block(out, "divergence", &self.divergence);
        encode_block(out, "input", &self.input);
        encode_block(out, "minimized", &self.minimized);
    }

    fn decode_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let oracle = expect_field(lines.next(), "oracle")?.to_string();
        let input_kind = expect_field(lines.next(), "input-kind")?.to_string();
        let seed = parse_num(expect_field(lines.next(), "seed")?, "seed")?;
        let case = parse_num(expect_field(lines.next(), "case")?, "case")?;
        let divergence = decode_block(&mut lines, "divergence")?;
        let input = decode_block(&mut lines, "input")?;
        let minimized = decode_block(&mut lines, "minimized")?;
        if lines.next().is_some() {
            return Err("trailing data after minimized input".to_string());
        }
        Ok(FuzzRepro {
            oracle,
            input_kind,
            seed,
            case,
            divergence,
            input,
            minimized,
        })
    }
}

// ---------------------------------------------------------------------
// SectionProfile

/// One cached injection record of a section profile — the store-side
/// mirror of a faultsim `InjectionRecord` plus its plan index, in plain
/// string/integer fields (this crate never depends on the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionRecordRow {
    /// Plan index in the campaign's pre-drawn plan list.
    pub plan: u64,
    /// Fault-model wire token (e.g. `single-bit`).
    pub model: String,
    /// Injected function id.
    pub func: u64,
    /// Injected instruction id.
    pub inst: u64,
    /// Targeted dynamic index.
    pub target: u64,
    /// Corruption parameter.
    pub bit: u32,
    /// Outcome wire token (`symptom|detected|masked|soc`).
    pub outcome: String,
    /// Dynamic instructions executed by the faulty run.
    pub dynamic_insts: u64,
    /// Injection-to-end latency in dynamic instructions.
    pub latency: u64,
    /// Attempts the run took to classify.
    pub attempts: u32,
}

/// One cached harness failure of a section profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionFailureRow {
    /// Plan index.
    pub plan: u64,
    /// Targeted dynamic index.
    pub target: u64,
    /// Corruption parameter.
    pub bit: u32,
    /// Attempts consumed.
    pub attempts: u32,
    /// The last attempt's error (may span lines).
    pub error: String,
}

/// The cached injection outcomes of one section of a sectional
/// campaign, keyed in the store by the section's content fingerprint
/// plus the campaign's run identity. An incremental re-run splices
/// these rows in verbatim for sections whose fingerprint and plan
/// slice are unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionProfile {
    /// Workload display name (provenance only).
    pub workload: String,
    /// Section display label (`@f`, `@f/loop0`; provenance only).
    pub section_label: String,
    /// Hex fingerprint of the section's content (label + block text).
    pub section_fingerprint: String,
    /// Hex digest of the section's plan slice (indices + parameters).
    pub plan_digest: String,
    /// Classified records, in plan order.
    pub records: Vec<SectionRecordRow>,
    /// Harness failures, in plan order.
    pub failures: Vec<SectionFailureRow>,
}

impl Payload for SectionProfile {
    const KIND: ArtifactKind = ArtifactKind::SectionProfile;
    const SCHEMA: u32 = 1;

    fn encode_body(&self, out: &mut String) {
        out.push_str(&format!("workload {}\n", self.workload));
        out.push_str(&format!("section {}\n", self.section_label));
        out.push_str(&format!("fingerprint {}\n", self.section_fingerprint));
        out.push_str(&format!("plan-digest {}\n", self.plan_digest));
        out.push_str(&format!("records {}\n", self.records.len()));
        for r in &self.records {
            out.push_str(&format!(
                "{} {} {} {} {} {} {} {} {} {}\n",
                r.plan,
                r.model,
                r.func,
                r.inst,
                r.target,
                r.bit,
                r.outcome,
                r.dynamic_insts,
                r.latency,
                r.attempts
            ));
        }
        out.push_str(&format!("failures {}\n", self.failures.len()));
        for f in &self.failures {
            out.push_str(&format!(
                "failure {} {} {} {}\n",
                f.plan, f.target, f.bit, f.attempts
            ));
            encode_block(out, "error", &f.error);
        }
    }

    fn decode_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let workload = expect_field(lines.next(), "workload")?.to_string();
        let section_label = expect_field(lines.next(), "section")?.to_string();
        let section_fingerprint = expect_field(lines.next(), "fingerprint")?.to_string();
        let plan_digest = expect_field(lines.next(), "plan-digest")?.to_string();
        let n: usize = parse_num(expect_field(lines.next(), "records")?, "record count")?;
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("profile truncated: {i} of {n} records present"))?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 10 {
                return Err(format!("record {i} has {} fields, want 10", toks.len()));
            }
            records.push(SectionRecordRow {
                plan: parse_num(toks[0], "plan")?,
                model: toks[1].to_string(),
                func: parse_num(toks[2], "func")?,
                inst: parse_num(toks[3], "inst")?,
                target: parse_num(toks[4], "target")?,
                bit: parse_num(toks[5], "bit")?,
                outcome: toks[6].to_string(),
                dynamic_insts: parse_num(toks[7], "insts")?,
                latency: parse_num(toks[8], "latency")?,
                attempts: parse_num(toks[9], "attempts")?,
            });
        }
        let m: usize = parse_num(expect_field(lines.next(), "failures")?, "failure count")?;
        let mut failures = Vec::with_capacity(m);
        for i in 0..m {
            let head = expect_field(lines.next(), "failure")?;
            let toks: Vec<&str> = head.split_whitespace().collect();
            if toks.len() != 4 {
                return Err(format!("failure {i} has {} fields, want 4", toks.len()));
            }
            let error = decode_block(&mut lines, "error")?;
            failures.push(SectionFailureRow {
                plan: parse_num(toks[0], "plan")?,
                target: parse_num(toks[1], "target")?,
                bit: parse_num(toks[2], "bit")?,
                attempts: parse_num(toks[3], "attempts")?,
                error,
            });
        }
        if lines.next().is_some() {
            return Err("trailing data after final failure".to_string());
        }
        Ok(SectionProfile {
            workload,
            section_label,
            section_fingerprint,
            plan_digest,
            records,
            failures,
        })
    }
}

// ---------------------------------------------------------------------
// SectionIndex

/// One section's row in a [`SectionIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionIndexEntry {
    /// Hex fingerprint of the section's content.
    pub fingerprint: String,
    /// Hex digest of the section's plan slice.
    pub plan_digest: String,
    /// Store key of the section's [`SectionProfile`].
    pub profile_key: String,
    /// Plans assigned to the section.
    pub plans: u64,
    /// Section display label.
    pub label: String,
}

/// The baseline artifact of a sectional campaign: the campaign's run
/// identity plus one entry per section, in section-id order. An
/// incremental re-run loads this, re-partitions the new module, and
/// reuses every section whose fingerprint and plan digest still match
/// under an unchanged run identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionIndex {
    /// Workload display name.
    pub workload: String,
    /// Planned runs.
    pub runs: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Fault-model wire token.
    pub fault_model: String,
    /// Sampling-mode wire token (`dynamic|static`).
    pub sampling: String,
    /// Eligible dynamic results of the clean run.
    pub eligible_results: u64,
    /// Clean-run dynamic instruction count.
    pub nominal_insts: u64,
    /// Per-section entries, in section-id order.
    pub sections: Vec<SectionIndexEntry>,
}

impl Payload for SectionIndex {
    const KIND: ArtifactKind = ArtifactKind::SectionIndex;
    const SCHEMA: u32 = 1;

    fn encode_body(&self, out: &mut String) {
        out.push_str(&format!("workload {}\n", self.workload));
        out.push_str(&format!("runs {}\n", self.runs));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("model {}\n", self.fault_model));
        out.push_str(&format!("sampling {}\n", self.sampling));
        out.push_str(&format!("eligible {}\n", self.eligible_results));
        out.push_str(&format!("nominal {}\n", self.nominal_insts));
        out.push_str(&format!("sections {}\n", self.sections.len()));
        for s in &self.sections {
            // The label goes last: it is the only field that could ever
            // grow internal structure.
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                s.fingerprint, s.plan_digest, s.profile_key, s.plans, s.label
            ));
        }
    }

    fn decode_body(body: &str) -> Result<Self, String> {
        let mut lines = body.lines();
        let workload = expect_field(lines.next(), "workload")?.to_string();
        let runs = parse_num(expect_field(lines.next(), "runs")?, "runs")?;
        let seed = parse_num(expect_field(lines.next(), "seed")?, "seed")?;
        let fault_model = expect_field(lines.next(), "model")?.to_string();
        let sampling = expect_field(lines.next(), "sampling")?.to_string();
        let eligible_results = parse_num(expect_field(lines.next(), "eligible")?, "eligible")?;
        let nominal_insts = parse_num(expect_field(lines.next(), "nominal")?, "nominal")?;
        let n: usize = parse_num(expect_field(lines.next(), "sections")?, "section count")?;
        let mut sections = Vec::with_capacity(n);
        for i in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| format!("index truncated: {i} of {n} sections present"))?;
            let mut toks = line.splitn(5, ' ');
            let fingerprint = toks.next().ok_or("empty section line")?.to_string();
            let plan_digest = toks
                .next()
                .ok_or_else(|| format!("section {i} missing plan digest"))?
                .to_string();
            let profile_key = toks
                .next()
                .ok_or_else(|| format!("section {i} missing profile key"))?
                .to_string();
            let plans = parse_num(
                toks.next()
                    .ok_or_else(|| format!("section {i} missing plan count"))?,
                "plan count",
            )?;
            let label = toks
                .next()
                .ok_or_else(|| format!("section {i} missing label"))?
                .to_string();
            sections.push(SectionIndexEntry {
                fingerprint,
                plan_digest,
                profile_key,
                plans,
                label,
            });
        }
        if lines.next().is_some() {
            return Err("trailing data after final section".to_string());
        }
        Ok(SectionIndex {
            workload,
            runs,
            seed,
            fault_model,
            sampling,
            eligible_results,
            nominal_insts,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> TrainedModel {
        TrainedModel {
            c: 10.0,
            gamma: 0.25,
            pos_weight: 3.5,
            tol: 1e-3,
            max_passes: 8,
            f_score: 0.91,
            acc1: 0.9,
            acc2: 0.92,
            scaler_mean: vec![0.5, -1.25],
            scaler_std: vec![1.0, 2.0],
            support: vec![vec![0.1, 0.2], vec![-0.3, 0.4]],
            coef: vec![1.5, -1.5],
            bias: -0.125,
        }
    }

    #[test]
    fn model_round_trips_exactly() {
        let m = sample_model();
        let text = encode(&m);
        let back: TrainedModel = decode(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn flipped_byte_is_checksum_error() {
        let text = encode(&sample_model());
        // Flip one hex digit inside the body.
        let pos = text.find("pos-weight ").unwrap() + "pos-weight ".len();
        let mut bytes = text.into_bytes();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        let text = String::from_utf8(bytes).unwrap();
        match decode::<TrainedModel>(&text) {
            Err(StoreError::Corrupt { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}")
            }
            other => panic!("expected checksum corruption, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_corrupt() {
        let text = encode(&sample_model());
        let cut = &text[..text.len() / 2];
        assert!(matches!(
            decode::<TrainedModel>(cut),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn bumped_schema_is_typed_skew() {
        let text = encode(&sample_model());
        let bumped = text.replace("schema 1\n", "schema 2\n");
        // Re-checksum so only the schema version differs.
        let body_end = bumped.rfind("checksum ").unwrap();
        let covered = &bumped[..body_end];
        let resummed = format!("{covered}checksum {}\n", hex(&sha256(covered.as_bytes())));
        match decode::<TrainedModel>(&resummed) {
            Err(StoreError::SchemaSkew {
                kind,
                found,
                expected,
            }) => {
                assert_eq!(kind, ArtifactKind::TrainedModel);
                assert_eq!((found, expected), (2, 1));
            }
            other => panic!("expected schema skew, got {other:?}"),
        }
    }

    #[test]
    fn wrong_kind_is_typed_mismatch() {
        let summary = CampaignSummary {
            workload: "w".into(),
            runs: 10,
            seed: 1,
            nominal_insts: 1000,
            counts: [1, 2, 3, 4],
            harness_failures: 0,
        };
        let text = encode(&summary);
        match decode::<TrainedModel>(&text) {
            Err(StoreError::KindMismatch { found, expected }) => {
                assert_eq!(found, "campaign-summary");
                assert_eq!(expected, ArtifactKind::TrainedModel);
            }
            other => panic!("expected kind mismatch, got {other:?}"),
        }
    }

    #[test]
    fn training_set_round_trips() {
        let ts = TrainingSet {
            workload: "kernel".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                TrainingRow {
                    features: vec![1.0, -2.5],
                    bit: 13,
                    outcome: "SOC".into(),
                    soc: true,
                    symptom: false,
                },
                TrainingRow {
                    // An awkward irrational value, to exercise bit-exactness.
                    features: vec![0.0, std::f64::consts::PI / 3.0],
                    bit: 60,
                    outcome: "symptom".into(),
                    soc: false,
                    symptom: true,
                },
            ],
        };
        let back: TrainingSet = decode(&encode(&ts)).unwrap();
        assert_eq!(back, ts);
        assert_eq!(back.num_soc(), 1);
        assert_eq!(back.num_symptom(), 1);
        assert!(back.to_csv().starts_with("a,b,bit,outcome"));
    }

    #[test]
    fn campaign_summary_round_trips_and_fractions() {
        let s = CampaignSummary {
            workload: "HPCCG".into(),
            runs: 100,
            seed: 2016,
            nominal_insts: 123456,
            counts: [40, 10, 30, 20],
            harness_failures: 2,
        };
        let back: CampaignSummary = decode(&encode(&s)).unwrap();
        assert_eq!(back, s);
        assert!((back.fraction(3) - 0.2).abs() < 1e-12);
        assert!((back.soc_pct() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn protected_module_round_trips_verbatim() {
        let ir = "module \"m\"\n\nfn @main() -> i64 {\nbb0:\n  ret 0\n}\n";
        let module = ipas_ir::parser::parse_module(ir).unwrap();
        let pm = ProtectedModule::from_module(&module, 5, 3, 2);
        let back: ProtectedModule = decode(&encode(&pm)).unwrap();
        assert_eq!(back.ir_text, pm.ir_text);
        assert_eq!(back.module().unwrap().to_text(), pm.ir_text);
    }

    #[test]
    fn inspect_reports_kind_and_schema() {
        let text = encode(&sample_model());
        let (kind, schema) = inspect(&text, "<memory>").unwrap();
        assert_eq!(kind, ArtifactKind::TrainedModel);
        assert_eq!(schema, TrainedModel::SCHEMA);
    }

    #[test]
    fn fuzz_repro_round_trips_verbatim() {
        let r = FuzzRepro {
            oracle: "engine-diff".into(),
            input_kind: "ir".into(),
            seed: 2016,
            case: 17,
            divergence: "status: reference Completed, compiled Trapped(OutOfBounds)\n".into(),
            input: "fn @main() -> i64 {\nbb0:\n  ret 0\n}\n".into(),
            minimized: "fn @main() -> i64 {\nbb0:\n  ret 0\n}\n".into(),
        };
        let back: FuzzRepro = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
        let (kind, schema) = inspect(&encode(&r), "<memory>").unwrap();
        assert_eq!(kind, ArtifactKind::FuzzRepro);
        assert_eq!(schema, FuzzRepro::SCHEMA);
    }

    #[test]
    fn section_profile_round_trips() {
        let p = SectionProfile {
            workload: "comd".into(),
            section_label: "@force/loop0".into(),
            section_fingerprint: "ab12".into(),
            plan_digest: "cd34".into(),
            records: vec![SectionRecordRow {
                plan: 7,
                model: "single-bit".into(),
                func: 1,
                inst: 22,
                target: 9000,
                bit: 41,
                outcome: "soc".into(),
                dynamic_insts: 123456,
                latency: 789,
                attempts: 1,
            }],
            failures: vec![SectionFailureRow {
                plan: 11,
                target: 42,
                bit: 5,
                attempts: 3,
                error: "panicked: \"index out\nof bounds\"".into(),
            }],
        };
        let back: SectionProfile = decode(&encode(&p)).unwrap();
        // Multi-line errors are newline-normalized by the block codec.
        assert_eq!(
            back.failures[0].error,
            "panicked: \"index out\nof bounds\"\n"
        );
        let mut normalized = p.clone();
        normalized.failures[0].error.push('\n');
        assert_eq!(back, normalized);
        let (kind, schema) = inspect(&encode(&p), "<memory>").unwrap();
        assert_eq!(kind, ArtifactKind::SectionProfile);
        assert_eq!(schema, SectionProfile::SCHEMA);
    }

    #[test]
    fn section_index_round_trips() {
        let idx = SectionIndex {
            workload: "hpccg".into(),
            runs: 400,
            seed: 2016,
            fault_model: "single-bit".into(),
            sampling: "dynamic".into(),
            eligible_results: 987654,
            nominal_insts: 1234567,
            sections: vec![
                SectionIndexEntry {
                    fingerprint: "aa".into(),
                    plan_digest: "bb".into(),
                    profile_key: "cc-dd".into(),
                    plans: 123,
                    label: "@main".into(),
                },
                SectionIndexEntry {
                    fingerprint: "ee".into(),
                    plan_digest: "ff".into(),
                    profile_key: "11-22".into(),
                    plans: 277,
                    label: "@ddot/loop0".into(),
                },
            ],
        };
        let back: SectionIndex = decode(&encode(&idx)).unwrap();
        assert_eq!(back, idx);
        let (kind, schema) = inspect(&encode(&idx), "<memory>").unwrap();
        assert_eq!(kind, ArtifactKind::SectionIndex);
        assert_eq!(schema, SectionIndex::SCHEMA);
    }

    #[test]
    fn nan_and_infinity_round_trip() {
        let mut m = sample_model();
        m.bias = f64::NAN;
        m.c = f64::INFINITY;
        m.gamma = -0.0;
        let back: TrainedModel = decode(&encode(&m)).unwrap();
        assert!(back.bias.is_nan());
        assert_eq!(back.c, f64::INFINITY);
        assert_eq!(back.gamma.to_bits(), (-0.0f64).to_bits());
    }
}

//! Flat JSON lines: the workspace's shared line-oriented wire codec.
//!
//! One object per line, string and unsigned-integer fields only, a
//! `kind` discriminator first. The campaign journal pioneered the
//! format; job specifications and the serving protocol reuse it so a
//! checkpointed job file, a wire request, and a journal line all parse
//! with the same ~100 lines of dependency-free code and are greppable
//! with standard tools.
//!
//! Floats ride as their IEEE-754 bit patterns via [`LineBuilder::f64`]
//! / [`Fields::f64`], so values round-trip bit-exactly (the same rule
//! the artifact envelope uses).

/// Escapes `s` into `out` as JSON string contents (no quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Builds one flat JSON line field by field.
///
/// ```
/// use ipas_store::json::LineBuilder;
/// let line = LineBuilder::new("submit").num("runs", 64).str("name", "mm").finish();
/// assert_eq!(line, "{\"kind\":\"submit\",\"runs\":64,\"name\":\"mm\"}\n");
/// ```
#[derive(Debug)]
pub struct LineBuilder {
    buf: String,
}

impl LineBuilder {
    /// Starts a line with its `kind` discriminator.
    pub fn new(kind: &str) -> Self {
        let mut buf = String::with_capacity(128);
        buf.push_str("{\"kind\":\"");
        escape_into(&mut buf, kind);
        buf.push('"');
        LineBuilder { buf }
    }

    /// Appends an unsigned integer field.
    #[must_use]
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a string field (escaped).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":\"");
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Appends a float as its bit pattern (bit-exact round trip).
    #[must_use]
    pub fn f64(self, key: &str, value: f64) -> Self {
        self.num(key, value.to_bits())
    }

    /// Closes the object; the line is newline-terminated.
    pub fn finish(mut self) -> String {
        self.buf.push_str("}\n");
        self.buf
    }
}

/// A parsed field value.
#[derive(Debug, PartialEq)]
enum JsonVal {
    Num(u64),
    Str(String),
}

/// The parsed fields of one flat JSON line.
#[derive(Debug)]
pub struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    /// Parses one flat JSON object (`{"kind":"x","n":123,"s":"v"}`).
    /// Returns `None` on any syntax error, including trailing garbage.
    pub fn parse(line: &str) -> Option<Fields> {
        let mut chars = line.trim().chars().peekable();
        if chars.next()? != '{' {
            return None;
        }
        let mut fields = Vec::new();
        loop {
            match chars.peek()? {
                '}' => {
                    chars.next();
                    break;
                }
                ',' => {
                    chars.next();
                }
                _ => {}
            }
            if *chars.peek()? != '"' {
                return None;
            }
            let key = parse_string(&mut chars)?;
            if chars.next()? != ':' {
                return None;
            }
            let value = match chars.peek()? {
                '"' => JsonVal::Str(parse_string(&mut chars)?),
                c if c.is_ascii_digit() => {
                    let mut digits = String::new();
                    while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                        digits.push(chars.next().expect("peeked"));
                    }
                    JsonVal::Num(digits.parse().ok()?)
                }
                _ => return None,
            };
            fields.push((key, value));
        }
        if chars.next().is_some() {
            return None; // trailing garbage
        }
        Some(Fields(fields))
    }

    /// The line's `kind` discriminator (empty when absent).
    pub fn kind(&self) -> &str {
        self.str("kind").unwrap_or("")
    }

    /// Looks up an integer field.
    pub fn num(&self, key: &str) -> Option<u64> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                JsonVal::Num(n) => Some(*n),
                JsonVal::Str(_) => None,
            })
    }

    /// Looks up a string field.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                JsonVal::Str(s) => Some(s.as_str()),
                JsonVal::Num(_) => None,
            })
    }

    /// Looks up a float stored as its bit pattern.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.num(key).map(f64::from_bits)
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_parses_round_trip() {
        let line = LineBuilder::new("job")
            .num("runs", 400)
            .str("name", "mat\"mul\n")
            .f64("tol", 1e-9)
            .finish();
        assert!(line.ends_with("}\n"));
        let fields = Fields::parse(&line).expect("parses");
        assert_eq!(fields.kind(), "job");
        assert_eq!(fields.num("runs"), Some(400));
        assert_eq!(fields.str("name"), Some("mat\"mul\n"));
        assert_eq!(fields.f64("tol"), Some(1e-9));
        assert_eq!(fields.num("name"), None, "type confusion is a miss");
        assert_eq!(fields.str("runs"), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1} x",
            "{\"unterminated\":\"",
            "not json",
            "{\"a\":-1}",
        ] {
            assert!(Fields::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.0, -0.0, 1e-9, f64::MAX, f64::MIN_POSITIVE, 2.5] {
            let line = LineBuilder::new("t").f64("v", v).finish();
            let back = Fields::parse(&line).unwrap().f64("v").unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }
}

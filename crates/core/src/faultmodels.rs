//! Per-fault-model campaign comparison (ROADMAP "Scenario diversity").
//!
//! The paper scopes its protocol to single-bit flips in computation
//! results; this module runs the same campaign-plus-classifier pipeline
//! once per [`FaultModel`] and reports, for each model, the
//! SOC/DDC/Benign outcome breakdown and the best SOC-classifier
//! F-score, side by side with the paper's single-bit baseline. That
//! quantifies how far the published classifier quality generalizes to
//! the faults the paper assumes away (multi-bit upsets, ECC gaps on the
//! memory path, control-flow flips).

use std::fmt::Write as _;

use ipas_faultsim::{
    margin_of_error, run_campaign, CampaignConfig, CampaignError, CampaignResult, FaultModel,
    Outcome, Workload,
};
use ipas_svm::GridOptions;

use crate::classifier::train_top_configs;
use crate::training::{build_training_set, LabelKind};

/// One fault model's row of the comparison table.
#[derive(Debug, Clone)]
pub struct ModelBreakdown {
    /// The fault model this row describes.
    pub model: FaultModel,
    /// Classified runs (harness failures excluded).
    pub runs: usize,
    /// Silent output corruptions (§5.5 SOC).
    pub soc: usize,
    /// Detected or symptomatic corruptions — faults a
    /// duplication-or-recovery scheme handles (Detected + Symptom).
    pub ddc: usize,
    /// Benign faults: the run completed and verification accepted the
    /// output (Masked).
    pub benign: usize,
    /// 95% margin of error of the SOC fraction.
    pub soc_moe: f64,
    /// Cross-validated F-score of the best SOC classifier trained on
    /// this model's campaign; `None` when the labels are degenerate
    /// (no SOC, or nothing but SOC) and no classifier can be trained.
    pub f_score: Option<f64>,
    /// Set when the campaign could not run at all (e.g. the workload
    /// has no dynamic sites in this model's class); `runs` is then 0.
    pub skipped: Option<String>,
}

impl ModelBreakdown {
    /// SOC fraction of the classified runs (0 when none ran).
    pub fn soc_fraction(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.soc as f64 / self.runs as f64
        }
    }
}

/// Summarizes one finished campaign into a row (without an F-score).
pub fn model_breakdown(model: FaultModel, result: &CampaignResult) -> ModelBreakdown {
    let runs = result.records.len();
    ModelBreakdown {
        model,
        runs,
        soc: result.count(Outcome::Soc),
        ddc: result.count(Outcome::Detected) + result.count(Outcome::Symptom),
        benign: result.count(Outcome::Masked),
        soc_moe: margin_of_error(result.fraction(Outcome::Soc), runs),
        f_score: None,
        skipped: None,
    }
}

/// Runs one campaign and trains one SOC classifier per fault model in
/// `models`, using `base` for every knob except the model itself.
///
/// Models whose sample space the workload never exercises (e.g.
/// branch flips on straight-line code) produce a skipped row instead of
/// aborting the whole comparison; every other campaign failure is
/// propagated.
///
/// # Errors
///
/// Any [`CampaignError`] other than
/// [`CampaignError::NoDynamicSites`].
pub fn compare_fault_models(
    workload: &Workload,
    base: &CampaignConfig,
    models: &[FaultModel],
    grid: &GridOptions,
) -> Result<Vec<ModelBreakdown>, CampaignError> {
    let mut rows = Vec::with_capacity(models.len());
    for &model in models {
        let config = CampaignConfig {
            fault_model: model,
            ..*base
        };
        let result = match run_campaign(workload, &config) {
            Ok(r) => r,
            Err(e @ CampaignError::NoDynamicSites { .. }) => {
                rows.push(ModelBreakdown {
                    model,
                    runs: 0,
                    soc: 0,
                    ddc: 0,
                    benign: 0,
                    soc_moe: 0.0,
                    f_score: None,
                    skipped: Some(e.to_string()),
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        let mut row = model_breakdown(model, &result);
        if !result.records.is_empty() {
            let data = build_training_set(workload, &result.records, LabelKind::SocGenerating);
            if data.num_positive() > 0 && data.num_positive() < data.len() {
                row.f_score = train_top_configs(&data, grid, 1)
                    .into_iter()
                    .next()
                    .map(|m| m.score().f_score);
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Renders the comparison as a fixed-width table. The ΔF column
/// compares each model's F-score against the first single-bit row (the
/// paper's baseline); rows without an F-score print `-`.
pub fn render_model_table(rows: &[ModelBreakdown]) -> String {
    let baseline = rows
        .iter()
        .find(|r| r.model == FaultModel::SingleBit)
        .and_then(|r| r.f_score);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>6} {:>6} {:>7} {:>7} {:>8} {:>8} {:>9}",
        "model", "runs", "SOC", "DDC", "benign", "SOC%", "±95%", "F-score", "ΔF(base)"
    );
    for r in rows {
        if let Some(reason) = &r.skipped {
            let _ = writeln!(out, "{:<12} skipped: {reason}", r.model.to_string());
            continue;
        }
        let f = match r.f_score {
            Some(f) => format!("{f:.3}"),
            None => "-".to_string(),
        };
        let delta = match (r.f_score, baseline) {
            (Some(f), Some(b)) => format!("{:+.3}", f - b),
            _ => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>6} {:>6} {:>7} {:>6.1}% {:>6.1}% {:>8} {:>9}",
            r.model.to_string(),
            r.runs,
            r.soc,
            r.ddc,
            r.benign,
            r.soc_fraction() * 100.0,
            r.soc_moe * 100.0,
            f,
            delta
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_faultsim::GoldenToleranceVerifier;

    fn kernel() -> Workload {
        let module = ipas_lang::compile(
            r#"
fn main() -> int {
    let n: int = 24;
    let a: [int] = new_int(n);
    for (let i: int = 0; i < n; i = i + 1) { a[i] = i * 5 - 2; }
    let s: int = 0;
    for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
    output_i(s);
    free_arr(a);
    return 0;
}
"#,
        )
        .unwrap();
        Workload::serial("kernel", module, GoldenToleranceVerifier::EXACT).unwrap()
    }

    #[test]
    fn compares_all_models_on_a_memory_kernel() {
        let w = kernel();
        let base = CampaignConfig {
            runs: 80,
            seed: 11,
            threads: 2,
            ..CampaignConfig::default()
        };
        let rows = compare_fault_models(&w, &base, &FaultModel::ALL, &GridOptions::quick())
            .expect("comparison completes");
        assert_eq!(rows.len(), FaultModel::ALL.len());
        // The kernel touches memory and branches, so nothing skips.
        for r in &rows {
            assert!(r.skipped.is_none(), "{}: {:?}", r.model, r.skipped);
            assert_eq!(r.soc + r.ddc + r.benign, r.runs, "{}", r.model);
            assert!(r.runs > 0, "{}", r.model);
        }
        let single = &rows[0];
        assert_eq!(single.model, FaultModel::SingleBit);
        assert!(
            single.f_score.is_some(),
            "single-bit campaign must train a classifier"
        );
        let table = render_model_table(&rows);
        assert!(table.contains("single-bit"));
        assert!(table.contains("branch-flip"));
        assert!(!table.contains("NaN"));
    }

    #[test]
    fn memory_free_code_skips_load_and_store_models() {
        // A register-only loop executes no loads or stores, so those
        // models have an empty sample space and must produce skipped
        // rows, not a hard error.
        let module = ipas_lang::compile(
            "fn main() -> int { let s: int = 0;
               for (let i: int = 0; i < 8; i = i + 1) { s = s + i * i; }
               output_i(s); return 0; }",
        )
        .unwrap();
        let w = Workload::serial("regs", module, GoldenToleranceVerifier::EXACT).unwrap();
        let rows = compare_fault_models(
            &w,
            &CampaignConfig {
                runs: 8,
                seed: 1,
                threads: 1,
                ..CampaignConfig::default()
            },
            &[FaultModel::LoadValue, FaultModel::StoreValue],
            &GridOptions::quick(),
        )
        .expect("skip, not error");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.skipped.is_some(), "{} should skip", row.model);
            assert_eq!(row.runs, 0);
        }
        assert!(render_model_table(&rows).contains("skipped"));
    }
}

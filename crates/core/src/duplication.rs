//! The instruction-duplication pass (§4.4).
//!
//! Selected instructions are cloned; a clone's operands are remapped to
//! the corresponding clones when those exist *in the same basic block*
//! (duplication paths never span blocks, as in the paper). A
//! *duplication path* is a maximal chain of selected instructions linked
//! by def-use inside one block; one `__ipas_check_*` comparison is
//! inserted at the end of each path — immediately after the clone of the
//! path's last instruction — so an error is always caught before the
//! block's terminator. Isolated selected instructions get their check
//! immediately after their clone, matching the paper's rule.
//!
//! Loads and stores are never duplicated (memory is ECC-protected in the
//! fault model) and neither are control-flow instructions (covered by
//! control-flow checking); calls are duplicated only when they target
//! pure math intrinsics.

use std::collections::{HashMap, HashSet};

use ipas_ir::inst::Callee;
use ipas_ir::passmgr::{Changed, ModulePass};
use ipas_ir::{FuncId, Inst, InstId, Intrinsic, Module, Type, Value};

use crate::policy::ProtectionPolicy;

/// Returns `true` if the duplication pass may duplicate `inst`:
/// computation instructions and pure math calls.
pub fn duplicable(inst: &Inst) -> bool {
    match inst {
        Inst::Binary { .. }
        | Inst::Icmp { .. }
        | Inst::Fcmp { .. }
        | Inst::Cast { .. }
        | Inst::Select { .. }
        | Inst::Gep { .. } => true,
        Inst::Call { callee, .. } => {
            matches!(callee, Callee::Intrinsic(i) if i.is_pure_math())
        }
        _ => false,
    }
}

/// Statistics reported by [`protect_module`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DuplicationStats {
    /// Duplicable instructions in the module (denominator of Figure 7).
    pub considered: usize,
    /// Instructions actually duplicated.
    pub duplicated: usize,
    /// `__ipas_check_*` comparisons inserted (one per duplication path).
    pub checks: usize,
}

impl DuplicationStats {
    /// Fraction of duplicable instructions that were duplicated
    /// (Figure 7's "% of duplicated instructions").
    pub fn duplicated_fraction(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.duplicated as f64 / self.considered as f64
        }
    }
}

/// Where comparison checks are inserted relative to the duplicated
/// instructions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum CheckPlacement {
    /// One check at the end of each duplication path — the IPAS scheme
    /// (§4.4). Errors may propagate a few instructions further but are
    /// always caught before the block's terminator, at a lower check
    /// count.
    #[default]
    PathEnd,
    /// One check immediately after *every* duplicated instruction — the
    /// SWIFT-style eager placement the paper contrasts against. More
    /// checks, earlier detection.
    EveryInstruction,
}

/// Clones `module` and duplicates every instruction for which `select`
/// returns `true` (among [`duplicable`] instructions), inserting one
/// detector call per duplication path. Returns the protected module and
/// the pass statistics.
///
/// The output module passes `verify_module`; instruction ids of the
/// original module are *not* stable across this transformation for
/// inserted instructions, but original instructions keep their ids.
pub fn protect_module(
    module: &Module,
    select: &mut dyn FnMut(FuncId, InstId, &Inst) -> bool,
) -> (Module, DuplicationStats) {
    protect_module_placed(module, select, CheckPlacement::PathEnd)
}

/// Like [`protect_module`] with an explicit [`CheckPlacement`] (the
/// `ablation_placement` binary compares the two schemes).
pub fn protect_module_placed(
    module: &Module,
    select: &mut dyn FnMut(FuncId, InstId, &Inst) -> bool,
    placement: CheckPlacement,
) -> (Module, DuplicationStats) {
    let mut out = module.clone();
    let mut stats = DuplicationStats::default();

    let fids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    for fid in fids {
        let func = out.function_mut(fid);
        for bb in func.block_ids().collect::<Vec<_>>() {
            let original: Vec<InstId> = func.block(bb).insts().to_vec();

            // Which instructions in this block are protected?
            let mut protected: Vec<InstId> = Vec::new();
            for &id in &original {
                let inst = func.inst(id);
                if duplicable(inst) {
                    stats.considered += 1;
                    if select(fid, id, inst) {
                        protected.push(id);
                    }
                }
            }
            if protected.is_empty() {
                continue;
            }
            let protected_set: HashSet<InstId> = protected.iter().copied().collect();

            // Path tails: protected instructions not consumed by another
            // protected instruction in this block.
            let mut has_protected_user: HashSet<InstId> = HashSet::new();
            for &user in &protected {
                func.inst(user).for_each_operand(|v| {
                    if let Value::Inst(def) = v {
                        if protected_set.contains(&def) {
                            has_protected_user.insert(def);
                        }
                    }
                });
            }

            // Rebuild the block: after each protected instruction, append
            // its shadow; after a path tail's shadow, append the check.
            let mut shadow_of: HashMap<InstId, InstId> = HashMap::new();
            let mut rebuilt: Vec<InstId> = Vec::with_capacity(original.len() * 2);
            for &id in &original {
                rebuilt.push(id);
                if !protected_set.contains(&id) {
                    continue;
                }
                let mut shadow = func.inst(id).clone();
                shadow.map_operands(|v| match v {
                    Value::Inst(def) => match shadow_of.get(&def) {
                        Some(&s) => Value::Inst(s),
                        None => v,
                    },
                    other => other,
                });
                let ty = shadow.result_type();
                // Allocate the shadow in the arena; it will be linked via
                // the rebuilt list, so append to the block then unlink.
                let shadow_id = func.append_inst(bb, shadow);
                func.unlink_inst(bb, shadow_id);
                shadow_of.insert(id, shadow_id);
                rebuilt.push(shadow_id);
                stats.duplicated += 1;

                let needs_check = match placement {
                    CheckPlacement::PathEnd => !has_protected_user.contains(&id),
                    CheckPlacement::EveryInstruction => true,
                };
                if needs_check {
                    let check = check_intrinsic(ty);
                    let check_inst = Inst::Call {
                        callee: Callee::Intrinsic(check),
                        args: vec![Value::Inst(id), Value::Inst(shadow_id)],
                        ret_ty: Type::Void,
                    };
                    let check_id = func.append_inst(bb, check_inst);
                    func.unlink_inst(bb, check_id);
                    rebuilt.push(check_id);
                    stats.checks += 1;
                }
            }
            func.set_block_insts(bb, rebuilt);
        }
    }

    debug_assert!(
        ipas_ir::verify::verify_module(&out).is_ok(),
        "duplication pass produced invalid IR: {:?}",
        ipas_ir::verify::verify_module(&out)
    );
    (out, stats)
}

/// The duplication transform packaged as a module-level pass for the
/// [`ipas_ir::passmgr::PassManager`]: the protection pipeline is the
/// (usually empty) function pipeline plus this pass, described as
/// `"+duplicate"` in pipeline text and store memo keys.
///
/// The counters drained by [`ModulePass::report_stats`] mirror
/// [`DuplicationStats`]: `considered`, `duplicated`, `checks`.
pub struct DuplicationPass {
    policy: ProtectionPolicy,
    placement: CheckPlacement,
    considered: u64,
    duplicated: u64,
    checks: u64,
}

impl DuplicationPass {
    /// A pass applying `policy` with the default (path-end) check
    /// placement.
    pub fn new(policy: ProtectionPolicy) -> Self {
        Self::with_placement(policy, CheckPlacement::default())
    }

    /// A pass applying `policy` with an explicit [`CheckPlacement`].
    pub fn with_placement(policy: ProtectionPolicy, placement: CheckPlacement) -> Self {
        DuplicationPass {
            policy,
            placement,
            considered: 0,
            duplicated: 0,
            checks: 0,
        }
    }
}

impl ModulePass for DuplicationPass {
    fn name(&self) -> &'static str {
        "duplicate"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let (protected, stats) = self.policy.select_and_protect(module, self.placement);
        *module = protected;
        self.considered += stats.considered as u64;
        self.duplicated += stats.duplicated as u64;
        self.checks += stats.checks as u64;
        Changed::from_count(stats.duplicated + stats.checks)
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("considered", std::mem::take(&mut self.considered));
        sink("duplicated", std::mem::take(&mut self.duplicated));
        sink("checks", std::mem::take(&mut self.checks));
    }
}

fn check_intrinsic(ty: Type) -> Intrinsic {
    match ty {
        Type::I64 => Intrinsic::IpasCheckI,
        Type::F64 => Intrinsic::IpasCheckF,
        Type::Ptr => Intrinsic::IpasCheckP,
        Type::Bool => Intrinsic::IpasCheckB,
        Type::Void => unreachable!("duplicable instructions produce values"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_interp::{Machine, RunConfig, RunStatus};
    use ipas_ir::verify::verify_module;

    fn compile(src: &str) -> Module {
        ipas_lang::compile(src).expect("test source compiles")
    }

    const KERNEL: &str = r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 10; i = i + 1) {
        s = s + i * i;
    }
    output_i(s);
    return s;
}
"#;

    #[test]
    fn full_duplication_doubles_computation() {
        let module = compile(KERNEL);
        let before = module.num_static_insts();
        let (protected, stats) = protect_module(&module, &mut |_, _, _| true);
        verify_module(&protected).unwrap();
        assert_eq!(stats.duplicated, stats.considered);
        assert!(stats.checks > 0 && stats.checks <= stats.duplicated);
        assert!(protected.num_static_insts() > before);
        assert!((stats.duplicated_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn protected_module_behaves_identically_without_faults() {
        let module = compile(KERNEL);
        let (protected, _) = protect_module(&module, &mut |_, _, _| true);
        let clean = Machine::new(&module).run(&RunConfig::default()).unwrap();
        let prot = Machine::new(&protected).run(&RunConfig::default()).unwrap();
        assert_eq!(clean.status, prot.status);
        assert_eq!(clean.outputs, prot.outputs);
        assert!(
            prot.dynamic_insts > clean.dynamic_insts,
            "duplication costs time"
        );
    }

    #[test]
    fn empty_selection_is_identity() {
        let module = compile(KERNEL);
        let (protected, stats) = protect_module(&module, &mut |_, _, _| false);
        assert_eq!(stats.duplicated, 0);
        assert_eq!(stats.checks, 0);
        assert_eq!(protected.num_static_insts(), module.num_static_insts());
        assert!(stats.considered > 0);
    }

    #[test]
    fn paths_share_one_check() {
        // A chain a -> b -> c fully protected forms one duplication path
        // with one check at the tail. The expression below compiles to a
        // single-block chain of adds and muls.
        let module =
            compile("fn main() -> int { let x: int = mpi_rank(); return (x + 1) * (x + 2) + 3; }");
        let (_, stats) = protect_module(&module, &mut |_, _, _| true);
        // All arithmetic lives in one block and chains into the return
        // value: expect fewer checks than duplicated instructions.
        assert!(stats.checks < stats.duplicated, "{stats:?}");
    }

    #[test]
    fn clone_operands_use_shadows_within_block() {
        let module = compile("fn main() -> int { let x: int = mpi_rank(); return (x + 1) * 2; }");
        let (protected, _) = protect_module(&module, &mut |_, _, _| true);
        let (_, f) = protected.functions().next().unwrap();
        // Find a duplicated mul whose operand refers to a duplicated add.
        let mut found_shadow_chain = false;
        for bb in f.block_ids() {
            let insts = f.block(bb).insts();
            for (i, &id) in insts.iter().enumerate() {
                if i == 0 {
                    continue;
                }
                if let Inst::Binary {
                    op: ipas_ir::BinOp::Mul,
                    lhs,
                    ..
                } = f.inst(id)
                {
                    // Shadow muls are directly preceded by the original mul.
                    if let Inst::Binary {
                        op: ipas_ir::BinOp::Mul,
                        lhs: orig_lhs,
                        ..
                    } = f.inst(insts[i - 1])
                    {
                        if lhs != orig_lhs {
                            found_shadow_chain = true;
                        }
                    }
                }
            }
        }
        assert!(found_shadow_chain, "{}", protected.to_text());
    }

    #[test]
    fn detects_injected_faults() {
        let module = compile(KERNEL);
        let (protected, _) = protect_module(&module, &mut |_, _, _| true);
        let mut m = Machine::new(&protected);
        let clean = m.run(&RunConfig::default()).unwrap();
        // Inject into every eligible site with bit 40 (high bit => large
        // error): every completed outcome must be either Detected or the
        // fault hit a check-independent site (e.g. the duplicate itself,
        // whose corruption is also caught).
        let mut detected = 0usize;
        let total = clean.eligible_results.min(120);
        for t in 0..total {
            let out = m
                .run(&RunConfig {
                    injection: Some(ipas_interp::Injection::at_global_index(t, 40)),
                    ..RunConfig::default()
                })
                .unwrap();
            if out.status == RunStatus::Detected {
                detected += 1;
            }
        }
        assert!(
            detected * 2 > total as usize,
            "full duplication should detect most high-bit faults: {detected}/{total}"
        );
    }

    #[test]
    fn loads_stores_calls_not_duplicated() {
        let module = compile(
            r#"
fn main() -> int {
    let a: [int] = new_int(4);
    a[0] = mpi_rank();
    let v: int = a[0];
    output_i(v);
    free_arr(a);
    return v;
}
"#,
        );
        let (protected, _) = protect_module(&module, &mut |_, _, _| true);
        let (_, f) = protected.functions().next().unwrap();
        let mut loads = 0;
        let mut stores = 0;
        let mut mallocs = 0;
        for bb in f.block_ids() {
            for &id in f.block(bb).insts() {
                match f.inst(id) {
                    Inst::Load { .. } => loads += 1,
                    Inst::Store { .. } => stores += 1,
                    Inst::Call {
                        callee: Callee::Intrinsic(Intrinsic::Malloc),
                        ..
                    } => mallocs += 1,
                    _ => {}
                }
            }
        }
        let (_, orig) = module.functions().next().unwrap();
        let (mut oloads, mut ostores, mut omallocs) = (0, 0, 0);
        for bb in orig.block_ids() {
            for &id in orig.block(bb).insts() {
                match orig.inst(id) {
                    Inst::Load { .. } => oloads += 1,
                    Inst::Store { .. } => ostores += 1,
                    Inst::Call {
                        callee: Callee::Intrinsic(Intrinsic::Malloc),
                        ..
                    } => omallocs += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(loads, oloads);
        assert_eq!(stores, ostores);
        assert_eq!(mallocs, omallocs);
    }

    #[test]
    fn pure_math_calls_are_duplicated() {
        let module = compile(
            "fn main() -> int { let x: float = itof(mpi_rank()) + 2.0; output_f(sqrt(x)); return 0; }",
        );
        let (protected, _) = protect_module(&module, &mut |_, _, _| true);
        let (_, f) = protected.functions().next().unwrap();
        let sqrts = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts().to_vec())
            .filter(|&id| {
                matches!(
                    f.inst(id),
                    Inst::Call {
                        callee: Callee::Intrinsic(Intrinsic::Sqrt),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(sqrts, 2, "{}", protected.to_text());
    }

    #[test]
    fn selective_protection_costs_less_than_full() {
        let module = compile(KERNEL);
        let (full, _) = protect_module(&module, &mut |_, _, _| true);
        let mut flip = false;
        let (half, _) = protect_module(&module, &mut |_, _, _| {
            flip = !flip;
            flip
        });
        let base = Machine::new(&module)
            .run(&RunConfig::default())
            .unwrap()
            .dynamic_insts;
        let full_d = Machine::new(&full)
            .run(&RunConfig::default())
            .unwrap()
            .dynamic_insts;
        let half_d = Machine::new(&half)
            .run(&RunConfig::default())
            .unwrap()
            .dynamic_insts;
        assert!(base < half_d && half_d < full_d, "{base} {half_d} {full_d}");
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;
    use ipas_interp::{Machine, RunConfig};

    #[test]
    fn every_instruction_placement_adds_more_checks() {
        let module = ipas_lang::compile(
            "fn main() -> int { let x: int = mpi_rank(); return (x + 1) * (x + 2) + 3; }",
        )
        .expect("compiles");
        let (_, path_end) =
            protect_module_placed(&module, &mut |_, _, _| true, CheckPlacement::PathEnd);
        let (per_inst_mod, per_inst) = protect_module_placed(
            &module,
            &mut |_, _, _| true,
            CheckPlacement::EveryInstruction,
        );
        assert_eq!(path_end.duplicated, per_inst.duplicated);
        assert!(per_inst.checks > path_end.checks);
        assert_eq!(per_inst.checks, per_inst.duplicated);
        ipas_ir::verify::verify_module(&per_inst_mod).unwrap();
    }

    #[test]
    fn both_placements_preserve_clean_behaviour() {
        let module = ipas_lang::compile(
            r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 20; i = i + 1) { s = s + i * 3 - 1; }
    output_i(s);
    return 0;
}
"#,
        )
        .expect("compiles");
        let base = Machine::new(&module).run(&RunConfig::default()).unwrap();
        for placement in [CheckPlacement::PathEnd, CheckPlacement::EveryInstruction] {
            let (protected, _) = protect_module_placed(&module, &mut |_, _, _| true, placement);
            let out = Machine::new(&protected).run(&RunConfig::default()).unwrap();
            assert_eq!(base.outputs, out.outputs, "{placement:?}");
        }
    }
}

//! Serializable job specifications — the wire and checkpoint format of
//! the campaign service (`ipas serve`).
//!
//! A [`JobSpec`] is a self-contained, deterministic description of one
//! unit of IPAS work: a raw injection campaign, a protect pipeline
//! (train + duplicate), a train-only job, or an evaluation of a stored
//! protected module. Everything the daemon needs is in the spec — the
//! program source text travels inline, so a spec replays identically on
//! any host with the same binary.
//!
//! Two properties make specs the service's backbone:
//!
//! - **Deduplication.** [`JobSpec::fingerprint`] hashes every field
//!   that influences the computed artifact (and *excludes* the tenant,
//!   which only namespaces ownership). [`JobSpec::job_id`] is the short
//!   form; identical concurrent submissions collide on it and coalesce
//!   to one execution.
//! - **Restart-resume.** [`JobSpec::encode`] is a single flat-JSON line
//!   (the same codec as the campaign journal), written as a `.job`
//!   checkpoint at submission and as the `submit` request on the wire.
//!   A restarted daemon [`JobSpec::decode`]s leftover checkpoints and
//!   re-enqueues them, resuming finished plans from the journal.

use std::str::FromStr;
use std::time::Duration;

use ipas_faultsim::{
    CampaignConfig, CampaignOptions, Engine, FaultModel, RetryPolicy, SamplingMode,
};
use ipas_store::{Fields, Fingerprint, FingerprintBuilder, LineBuilder};

/// What kind of work a [`JobSpec`] requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Raw fault-injection campaign on the unprotected program; the
    /// artifact is the outcome summary.
    Campaign,
    /// Full protect pipeline: training campaign, C-SVM grid search,
    /// selective duplication; the artifact is the protected module.
    Protect,
    /// Training only: campaign plus grid search; the artifacts are the
    /// top-N models, registered in the tenant's registry.
    Train,
    /// Injection campaign on a previously stored protected module
    /// (referenced by [`JobSpec::module_key`]).
    Eval,
}

impl JobKind {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Campaign => "campaign",
            JobKind::Protect => "protect",
            JobKind::Train => "train",
            JobKind::Eval => "eval",
        }
    }

    /// Parses a wire label.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "campaign" => JobKind::Campaign,
            "protect" => JobKind::Protect,
            "train" => JobKind::Train,
            "eval" => JobKind::Eval,
            _ => return None,
        })
    }
}

/// A complete, serializable description of one service job.
///
/// See the module docs for the role specs play; field semantics match
/// the equivalent `ipas` CLI flags.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The kind of work requested.
    pub kind: JobKind,
    /// Owning tenant (quota ledger + registry namespace). Excluded
    /// from the fingerprint: two tenants submitting identical work
    /// share one execution and one artifact.
    pub tenant: String,
    /// Workload name (journal identity, report labels).
    pub name: String,
    /// Program source text, compiled by the daemon.
    pub source: String,
    /// Injection runs for the (training) campaign.
    pub runs: usize,
    /// Injection runs for evaluation campaigns ([`JobKind::Eval`]).
    pub eval_runs: usize,
    /// How many top grid configurations to keep ([`JobKind::Train`]).
    pub top: usize,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Verifier tolerance (0.0 = exact golden comparison).
    pub tolerance: f64,
    /// Fault model for every plan of the campaign.
    pub fault_model: FaultModel,
    /// Interpreter engine (a throughput knob; engines are bit-identical).
    pub engine: Engine,
    /// Protection policy label for protect jobs (`"ipas"`, `"full"`,
    /// `"baseline"`, `"unprotected"`).
    pub policy: String,
    /// Per-run wall-clock watchdog in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Store key of the protected module to evaluate
    /// ([`JobKind::Eval`] only).
    pub module_key: Option<String>,
    /// Run the campaign section-granularly ([`JobKind::Campaign`]
    /// only): plans are grouped by loop-nest section, chunks align to
    /// section boundaries, and journal records carry section tags — the
    /// serving-side face of incremental re-analysis.
    pub sections: bool,
    /// Run the campaign adaptively ([`JobKind::Campaign`] only): a
    /// uniform seed round, then margin-weighted rounds drawn by a
    /// classifier retrained on the labels so far, chunks aligned to
    /// round boundaries, and journal records tagged with their round.
    /// Mutually exclusive with [`JobSpec::sections`].
    pub adaptive: bool,
}

impl JobSpec {
    /// A spec with service defaults for `kind`; callers override the
    /// fields they care about.
    pub fn new(kind: JobKind, tenant: &str, name: &str, source: &str) -> Self {
        JobSpec {
            kind,
            tenant: tenant.to_string(),
            name: name.to_string(),
            source: source.to_string(),
            runs: 256,
            eval_runs: 256,
            top: 1,
            seed: 0,
            tolerance: 0.0,
            fault_model: FaultModel::default(),
            engine: Engine::default(),
            policy: "ipas".to_string(),
            deadline_ms: 0,
            module_key: None,
            sections: false,
            adaptive: false,
        }
    }

    /// Checks the spec for structural problems before it is accepted
    /// into the queue, returning a human-readable reason on failure.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() || !valid_token(&self.tenant) {
            return Err(format!("bad tenant {:?}", self.tenant));
        }
        if self.name.is_empty() || !valid_token(&self.name) {
            return Err(format!("bad name {:?}", self.name));
        }
        if self.source.is_empty() {
            return Err("empty source".to_string());
        }
        if self.runs == 0 {
            return Err("runs must be positive".to_string());
        }
        if self.kind == JobKind::Eval && self.module_key.is_none() {
            return Err("eval jobs need a module key".to_string());
        }
        if self.sections && self.kind != JobKind::Campaign {
            return Err("sectional execution only applies to campaign jobs".to_string());
        }
        if self.adaptive && self.kind != JobKind::Campaign {
            return Err("adaptive sampling only applies to campaign jobs".to_string());
        }
        if self.adaptive && self.sections {
            return Err("adaptive and sectional execution are mutually exclusive".to_string());
        }
        if !matches!(
            self.policy.as_str(),
            "ipas" | "full" | "baseline" | "unprotected"
        ) {
            return Err(format!("unknown policy {:?}", self.policy));
        }
        Ok(())
    }

    /// Fingerprint over every artifact-determining field. The tenant is
    /// deliberately excluded (see [`JobSpec::tenant`]).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut b = FingerprintBuilder::new("serve-job")
            .text("kind", self.kind.label())
            .text("name", &self.name)
            .text("source", &self.source)
            .u64("runs", self.runs as u64)
            .u64("eval-runs", self.eval_runs as u64)
            .u64("top", self.top as u64)
            .u64("seed", self.seed)
            .f64("tolerance", self.tolerance)
            .text("fault-model", &self.fault_model.to_string())
            .text("engine", self.engine.label())
            .text("policy", &self.policy)
            .u64("deadline-ms", self.deadline_ms);
        if let Some(key) = &self.module_key {
            b = b.text("module-key", key);
        }
        // Added like `module-key`: only present when set, so every job
        // id minted before the flag existed stays stable.
        if self.sections {
            b = b.bool("sections", true);
        }
        if self.adaptive {
            b = b.bool("adaptive", true);
        }
        b.finish()
    }

    /// Deterministic short job id: identical specs (up to tenant)
    /// collide here, which is what drives request coalescing.
    pub fn job_id(&self) -> String {
        self.fingerprint().short()
    }

    /// Encodes the spec as one flat-JSON line of the given kind
    /// (`"submit"` on the wire, `"jobspec"` in `.job` checkpoints).
    pub fn encode(&self, line_kind: &str) -> String {
        let mut b = LineBuilder::new(line_kind)
            .str("job", self.kind.label())
            .str("tenant", &self.tenant)
            .str("name", &self.name)
            .str("source", &self.source)
            .num("runs", self.runs as u64)
            .num("eval_runs", self.eval_runs as u64)
            .num("top", self.top as u64)
            .num("seed", self.seed)
            .f64("tolerance", self.tolerance)
            .str("fault_model", &self.fault_model.to_string())
            .str("engine", self.engine.label())
            .str("policy", &self.policy)
            .num("deadline_ms", self.deadline_ms);
        if let Some(key) = &self.module_key {
            b = b.str("module_key", key);
        }
        if self.sections {
            b = b.num("sections", 1);
        }
        if self.adaptive {
            b = b.num("adaptive", 1);
        }
        b.finish()
    }

    /// Decodes a line produced by [`JobSpec::encode`], checking the
    /// line kind.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the line is malformed, of the wrong
    /// kind, or has out-of-range fields.
    pub fn decode(line: &str, expect_kind: &str) -> Result<Self, String> {
        let fields = Fields::parse(line).ok_or("malformed job line")?;
        if fields.kind() != expect_kind {
            return Err(format!(
                "expected a {expect_kind:?} line, got {:?}",
                fields.kind()
            ));
        }
        let str_field = |k: &str| {
            fields
                .str(k)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let num_field = |k: &str| fields.num(k).ok_or_else(|| format!("missing field {k:?}"));
        let kind = JobKind::from_label(&str_field("job")?)
            .ok_or_else(|| format!("unknown job kind {:?}", fields.str("job").unwrap_or("?")))?;
        let fault_model = FaultModel::from_str(&str_field("fault_model")?)
            .map_err(|e| format!("bad fault model: {e}"))?;
        let engine =
            Engine::from_str(&str_field("engine")?).map_err(|e| format!("bad engine: {e}"))?;
        let spec = JobSpec {
            kind,
            tenant: str_field("tenant")?,
            name: str_field("name")?,
            source: str_field("source")?,
            runs: num_field("runs")? as usize,
            eval_runs: num_field("eval_runs")? as usize,
            top: num_field("top")? as usize,
            seed: num_field("seed")?,
            tolerance: fields
                .f64("tolerance")
                .ok_or("missing field \"tolerance\"")?,
            fault_model,
            engine,
            policy: str_field("policy")?,
            deadline_ms: num_field("deadline_ms")?,
            module_key: fields.str("module_key").map(str::to_string),
            sections: fields.num("sections").unwrap_or(0) != 0,
            adaptive: fields.num("adaptive").unwrap_or(0) != 0,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The campaign configuration this spec describes. `runs` picks the
    /// training or evaluation count by [`JobSpec::kind`]; `threads` is
    /// 1 because the service parallelizes across plan *chunks*, not
    /// inside a chunk.
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            runs: if self.kind == JobKind::Eval {
                self.eval_runs
            } else {
                self.runs
            },
            seed: self.seed,
            threads: 1,
            engine: self.engine,
            fault_model: self.fault_model,
        }
    }

    /// The campaign options this spec describes (journal attached by
    /// the daemon per job id).
    pub fn campaign_options(&self) -> CampaignOptions {
        CampaignOptions {
            sampling: SamplingMode::default(),
            retry: RetryPolicy::default(),
            journal: None,
            run_deadline: if self.deadline_ms == 0 {
                None
            } else {
                Some(Duration::from_millis(self.deadline_ms))
            },
        }
    }
}

fn valid_token(s: &str) -> bool {
    s.len() <= 64
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(
            JobKind::Protect,
            "acme",
            "mm",
            "fn main() -> int { output_i(7); return 0; }",
        );
        s.runs = 96;
        s.seed = 11;
        s.tolerance = 1e-6;
        s.deadline_ms = 2_000;
        s
    }

    #[test]
    fn encode_decode_round_trips() {
        for kind in ["submit", "jobspec"] {
            let s = spec();
            let line = s.encode(kind);
            assert!(line.ends_with('\n'));
            let back = JobSpec::decode(&line, kind).unwrap();
            assert_eq!(back, s);
        }
        let mut with_key = spec();
        with_key.kind = JobKind::Eval;
        with_key.module_key = Some("abcd1234".to_string());
        let back = JobSpec::decode(&with_key.encode("submit"), "submit").unwrap();
        assert_eq!(back, with_key);
    }

    #[test]
    fn wrong_line_kind_rejected() {
        let line = spec().encode("submit");
        assert!(JobSpec::decode(&line, "jobspec").is_err());
        assert!(JobSpec::decode("not json", "submit").is_err());
    }

    #[test]
    fn fingerprint_ignores_tenant_but_not_work() {
        let a = spec();
        let mut b = spec();
        b.tenant = "other".to_string();
        assert_eq!(a.job_id(), b.job_id(), "tenant must not split the cache");
        let mut c = spec();
        c.seed = 12;
        assert_ne!(a.job_id(), c.job_id());
        let mut d = spec();
        d.policy = "full".to_string();
        assert_ne!(a.job_id(), d.job_id());
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(spec().validate().is_ok());
        let mut bad = spec();
        bad.runs = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.tenant = "has space".to_string();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.kind = JobKind::Eval;
        assert!(bad.validate().is_err(), "eval without module key");
        let mut bad = spec();
        bad.policy = "mystery".to_string();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.sections = true;
        assert!(bad.validate().is_err(), "sectional protect job");
        let mut bad = spec();
        bad.adaptive = true;
        assert!(bad.validate().is_err(), "adaptive protect job");
        let mut bad = spec();
        bad.kind = JobKind::Campaign;
        bad.adaptive = true;
        bad.sections = true;
        assert!(bad.validate().is_err(), "adaptive + sectional campaign");
    }

    #[test]
    fn sections_flag_round_trips_and_splits_the_job_id() {
        let mut s = spec();
        s.kind = JobKind::Campaign;
        let plain_id = s.job_id();
        let plain_line = s.encode("submit");
        s.sections = true;
        assert!(s.validate().is_ok());
        assert_ne!(s.job_id(), plain_id, "sectional work is different work");
        let back = JobSpec::decode(&s.encode("submit"), "submit").unwrap();
        assert_eq!(back, s);
        // Lines minted before the flag existed decode as non-sectional.
        let legacy = JobSpec::decode(&plain_line, "submit").unwrap();
        assert!(!legacy.sections);
    }

    #[test]
    fn adaptive_flag_round_trips_and_splits_the_job_id() {
        let mut s = spec();
        s.kind = JobKind::Campaign;
        let plain_id = s.job_id();
        let plain_line = s.encode("submit");
        s.adaptive = true;
        assert!(s.validate().is_ok());
        assert_ne!(s.job_id(), plain_id, "adaptive work is different work");
        let back = JobSpec::decode(&s.encode("submit"), "submit").unwrap();
        assert_eq!(back, s);
        // Lines minted before the flag existed decode as non-adaptive.
        let legacy = JobSpec::decode(&plain_line, "submit").unwrap();
        assert!(!legacy.adaptive);
    }

    #[test]
    fn campaign_config_follows_kind() {
        let mut s = spec();
        s.eval_runs = 32;
        assert_eq!(s.campaign_config().runs, 96);
        s.kind = JobKind::Eval;
        s.module_key = Some("ab12".to_string());
        assert_eq!(s.campaign_config().runs, 32);
        assert_eq!(
            s.campaign_options().run_deadline,
            Some(Duration::from_millis(2_000))
        );
    }
}

//! Incremental (delta) injection campaigns over section profiles.
//!
//! A sectional campaign (see [`ipas_faultsim::sections`]) partitions
//! its plan list by loop-nest section and executes each section's
//! slice independently; the spliced result is byte-identical to the
//! monolithic campaign by construction. This module adds the payoff:
//! a **delta planner** that, given a stored baseline, re-executes only
//! the sections whose content or plan slice changed and splices the
//! cached outcomes of everything else.
//!
//! The baseline is a pair of store artifacts:
//!
//! - one [`SectionProfile`] per section, keyed by
//!   [`crate::memo::section_profile_fingerprint`] — the campaign's run
//!   identity plus the section's content fingerprint and plan-slice
//!   digest, so the key *is* the reuse condition;
//! - one [`SectionIndex`] for the whole campaign, keyed by
//!   [`crate::memo::section_index_fingerprint`], recording the run
//!   identity and every section's fingerprint, digest, and profile key.
//!
//! Reuse is sound because it is doubly conservative: a cached section
//! is spliced only when its content fingerprint *and* its plan-slice
//! digest *and* the global run identity (runs, seed, fault model,
//! sampling, eligible results, nominal instructions) all match the
//! fresh campaign. Any mismatch, missing artifact, or decode failure
//! silently falls back to executing that section — never to a wrong
//! splice. The `incremental_fuzz` oracle and the CLI's
//! `--incremental` path both pin the byte-identity of the spliced
//! result against a from-scratch campaign.

use std::collections::HashMap;
use std::str::FromStr;

use ipas_analysis::sections::SectionPartition;
use ipas_faultsim::sections::{assign_sections, execute_sections, splice_outcomes};
use ipas_faultsim::{
    draw_plans, CampaignConfig, CampaignError, CampaignOptions, CampaignResult, FaultModel,
    HarnessFailure, Injection, InjectionRecord, Outcome, PlanOutcome, Workload,
};
use ipas_ir::{FuncId, InstId};
use ipas_store::{
    Fingerprint, Key, SectionFailureRow, SectionIndex, SectionIndexEntry, SectionProfile,
    SectionRecordRow, Store, StoreError,
};

use crate::memo::{
    plan_slice_digest, section_fingerprint, section_index_fingerprint, section_profile_fingerprint,
};

/// Error running an incremental campaign.
#[derive(Debug)]
pub enum IncrementalError {
    /// The underlying sectional campaign failed.
    Campaign(CampaignError),
    /// The artifact store failed.
    Store(StoreError),
    /// The named baseline index does not exist in the store.
    MissingBaseline(Key),
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::Campaign(e) => write!(f, "incremental campaign failed: {e}"),
            IncrementalError::Store(e) => write!(f, "incremental campaign store failed: {e}"),
            IncrementalError::MissingBaseline(key) => {
                write!(f, "baseline section index {} not found", key.as_str())
            }
        }
    }
}

impl std::error::Error for IncrementalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IncrementalError::Campaign(e) => Some(e),
            IncrementalError::Store(e) => Some(e),
            IncrementalError::MissingBaseline(_) => None,
        }
    }
}

impl From<CampaignError> for IncrementalError {
    fn from(e: CampaignError) -> Self {
        IncrementalError::Campaign(e)
    }
}

impl From<StoreError> for IncrementalError {
    fn from(e: StoreError) -> Self {
        IncrementalError::Store(e)
    }
}

/// A finished incremental campaign: the spliced whole-campaign result
/// plus the reuse accounting the CLI reports.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// The spliced campaign result — byte-identical to a from-scratch
    /// campaign on the same module and config.
    pub result: CampaignResult,
    /// Sections of the module's partition.
    pub sections_total: usize,
    /// Sections spliced from cached baseline profiles.
    pub sections_reused: usize,
    /// Total plans of the campaign.
    pub injections_total: usize,
    /// Plans actually executed by this invocation (the changed
    /// sections' slices, minus any journal-resumed plans).
    pub injections_executed: usize,
    /// Store key of the [`SectionIndex`] this run saved — the baseline
    /// for the next incremental run.
    pub index_key: Key,
}

/// Runs a section-granular campaign that stores per-section profiles
/// and a baseline index, reusing every section of `baseline` whose
/// content fingerprint and plan slice are unchanged under an identical
/// run identity. With no baseline every section executes (a "full"
/// sectional run that seeds the cache).
///
/// # Errors
///
/// [`IncrementalError::MissingBaseline`] when the named baseline index
/// is absent; [`IncrementalError::Store`] on store I/O failures;
/// [`IncrementalError::Campaign`] when planning or execution fails
/// (non-value fault models are rejected as
/// [`CampaignError::UnsupportedSectional`]).
pub fn run_campaign_incremental(
    store: &Store,
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
    baseline: Option<&Key>,
) -> Result<IncrementalOutcome, IncrementalError> {
    let partition = SectionPartition::compute(&workload.module);
    let plans = draw_plans(workload, config, options.sampling)?;
    let assignment = assign_sections(workload, &partition, &plans)?;
    let total = partition.len();

    let fingerprints: Vec<Fingerprint> = (0..total)
        .map(|s| section_fingerprint(&workload.module, &partition, s))
        .collect();
    let digests: Vec<Fingerprint> = (0..total)
        .map(|s| plan_slice_digest(&plans, &assignment, s as u32))
        .collect();
    let profile_keys: Vec<Key> = (0..total)
        .map(|s| {
            Key::of(&section_profile_fingerprint(
                &workload.name,
                config,
                options.sampling,
                &fingerprints[s],
                &digests[s],
            ))
        })
        .collect();

    // Decide reuse per section *before* executing anything: a section
    // is reused only once its cached profile has fully loaded, decoded,
    // and converted — any failure along the way degrades that section
    // to fresh execution rather than erroring or mis-splicing.
    let mut cached: Vec<Option<Vec<(usize, PlanOutcome)>>> = (0..total).map(|_| None).collect();
    if let Some(key) = baseline {
        let index = store
            .get::<SectionIndex>(key)?
            .ok_or_else(|| IncrementalError::MissingBaseline(key.clone()))?;
        if identity_matches(&index, workload, config, options) {
            let by_content: HashMap<(&str, &str), &SectionIndexEntry> = index
                .sections
                .iter()
                .map(|e| ((e.fingerprint.as_str(), e.plan_digest.as_str()), e))
                .collect();
            for s in 0..total {
                let fp = fingerprints[s].hex();
                let digest = digests[s].hex();
                let Some(entry) = by_content.get(&(fp.as_str(), digest.as_str())) else {
                    continue;
                };
                cached[s] = load_profile(store, entry, &plans, &assignment, s as u32);
            }
        }
    }

    let mask: Vec<bool> = cached.iter().map(Option::is_none).collect();
    let exec = execute_sections(workload, config, options, &plans, &assignment, &mask)?;
    let executed = exec.executed;
    let resumed = exec.resumed;

    // Persist fresh sections' profiles (cached ones are already stored
    // under the identical key — fingerprint, digest, and identity all
    // matched, so the bytes are the same artifact).
    let mut fresh: Vec<Vec<(usize, PlanOutcome)>> = (0..total).map(|_| Vec::new()).collect();
    for (i, outcome) in &exec.outcomes {
        fresh[assignment[*i] as usize].push((*i, outcome.clone()));
    }
    for s in 0..total {
        if cached[s].is_some() {
            continue;
        }
        let profile = build_profile(
            workload,
            &partition,
            s,
            &fingerprints[s],
            &digests[s],
            &fresh[s],
        );
        store.put(&profile_keys[s], &profile)?;
    }

    let index = SectionIndex {
        workload: workload.name.clone(),
        runs: config.runs as u64,
        seed: config.seed,
        fault_model: config.fault_model.to_string(),
        sampling: options.sampling.wire().to_string(),
        eligible_results: workload.eligible_results,
        nominal_insts: workload.nominal_insts,
        sections: (0..total)
            .map(|s| SectionIndexEntry {
                fingerprint: fingerprints[s].hex(),
                plan_digest: digests[s].hex(),
                profile_key: profile_keys[s].as_str().to_string(),
                plans: assignment.iter().filter(|&&a| a == s as u32).count() as u64,
                label: partition.sections()[s].label.clone(),
            })
            .collect(),
    };
    let index_key = Key::of(&section_index_fingerprint(
        &workload.module,
        &workload.name,
        config,
        options.sampling,
    ));
    store.put(&index_key, &index)?;

    let sections_reused = cached.iter().filter(|c| c.is_some()).count();
    let spliced = exec
        .outcomes
        .into_iter()
        .chain(cached.into_iter().flatten().flatten());
    let result = splice_outcomes(plans.len(), spliced, resumed, workload.nominal_insts)?;

    Ok(IncrementalOutcome {
        result,
        sections_total: total,
        sections_reused,
        injections_total: plans.len(),
        injections_executed: executed,
        index_key,
    })
}

/// Checks the baseline's global run identity against the fresh
/// campaign. Everything that determines the plan list or the outcome
/// space must match; otherwise nothing is reusable.
fn identity_matches(
    index: &SectionIndex,
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
) -> bool {
    index.workload == workload.name
        && index.runs == config.runs as u64
        && index.seed == config.seed
        && index.fault_model == config.fault_model.to_string()
        && index.sampling == options.sampling.wire()
        && index.eligible_results == workload.eligible_results
        && index.nominal_insts == workload.nominal_insts
}

/// Loads and converts one cached section profile, or `None` when the
/// artifact is absent, damaged, skewed, or inconsistent with the fresh
/// campaign's plan slice (the section then re-executes).
fn load_profile(
    store: &Store,
    entry: &SectionIndexEntry,
    plans: &[Injection],
    assignment: &[u32],
    section: u32,
) -> Option<Vec<(usize, PlanOutcome)>> {
    let key = Key::parse(&entry.profile_key).ok()?;
    let profile = store.get::<SectionProfile>(&key).ok()??;
    if profile.section_fingerprint != entry.fingerprint || profile.plan_digest != entry.plan_digest
    {
        return None;
    }
    let expected = assignment.iter().filter(|&&a| a == section).count();
    if profile.records.len() + profile.failures.len() != expected {
        return None;
    }
    let mut outcomes = Vec::with_capacity(expected);
    for row in &profile.records {
        outcomes.push((
            row.plan as usize,
            PlanOutcome::Record(record_from_row(row)?),
        ));
    }
    for row in &profile.failures {
        outcomes.push((
            row.plan as usize,
            PlanOutcome::Failure(failure_from_row(row)),
        ));
    }
    // Belt and braces on top of the digest match: every cached plan
    // index must belong to this section in the *fresh* assignment.
    if !outcomes
        .iter()
        .all(|(i, _)| *i < plans.len() && assignment[*i] == section)
    {
        return None;
    }
    Some(outcomes)
}

fn build_profile(
    workload: &Workload,
    partition: &SectionPartition,
    section: usize,
    fingerprint: &Fingerprint,
    digest: &Fingerprint,
    outcomes: &[(usize, PlanOutcome)],
) -> SectionProfile {
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for (i, outcome) in outcomes {
        match outcome {
            PlanOutcome::Record(r) => records.push(row_from_record(*i, r)),
            PlanOutcome::Failure(f) => failures.push(row_from_failure(f)),
        }
    }
    SectionProfile {
        workload: workload.name.clone(),
        section_label: partition.sections()[section].label.clone(),
        section_fingerprint: fingerprint.hex(),
        plan_digest: digest.hex(),
        records,
        failures,
    }
}

fn row_from_record(plan: usize, r: &InjectionRecord) -> SectionRecordRow {
    SectionRecordRow {
        plan: plan as u64,
        model: r.model.to_string(),
        func: r.site.0.index() as u64,
        inst: r.site.1.index() as u64,
        target: r.target,
        bit: r.bit,
        outcome: r.outcome.wire().to_string(),
        dynamic_insts: r.dynamic_insts,
        latency: r.latency,
        attempts: r.attempts,
    }
}

fn record_from_row(row: &SectionRecordRow) -> Option<InjectionRecord> {
    Some(InjectionRecord {
        model: FaultModel::from_str(&row.model).ok()?,
        site: (
            FuncId::new(row.func as usize),
            InstId::new(row.inst as usize),
        ),
        target: row.target,
        bit: row.bit,
        outcome: Outcome::from_wire(&row.outcome)?,
        dynamic_insts: row.dynamic_insts,
        latency: row.latency,
        attempts: row.attempts,
    })
}

fn row_from_failure(f: &HarnessFailure) -> SectionFailureRow {
    SectionFailureRow {
        plan: f.plan_index as u64,
        target: f.target,
        bit: f.bit,
        attempts: f.attempts,
        error: f.error.clone(),
    }
}

fn failure_from_row(row: &SectionFailureRow) -> HarnessFailure {
    HarnessFailure {
        plan_index: row.plan as usize,
        target: row.target,
        bit: row.bit,
        attempts: row.attempts,
        error: row.error.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_faultsim::{run_campaign_with, GoldenToleranceVerifier};

    const BASE_SRC: &str = "fn scale(n: int) -> int {
        let s: int = 0;
        for (let i: int = 0; i < n; i = i + 1) { s = s + i * 2; }
        return s;
    }
    fn main() -> int {
        let a: int = scale(11);
        output_i(a);
        let b: int = 0;
        for (let j: int = 0; j < 9; j = j + 1) { b = b + j + 4; }
        output_i(b);
        return 0;
    }";

    // Identical to BASE_SRC except for one constant inside `scale`'s
    // loop — exactly one section's content changes, and the loop trip
    // counts (hence the eligible space and every plan) are unchanged.
    const MUTATED_SRC: &str = "fn scale(n: int) -> int {
        let s: int = 0;
        for (let i: int = 0; i < n; i = i + 1) { s = s + i * 5; }
        return s;
    }
    fn main() -> int {
        let a: int = scale(11);
        output_i(a);
        let b: int = 0;
        for (let j: int = 0; j < 9; j = j + 1) { b = b + j + 4; }
        output_i(b);
        return 0;
    }";

    fn workload(name: &str, src: &str) -> Workload {
        let module = ipas_lang::compile(src).expect("compiles");
        Workload::serial(name, module, GoldenToleranceVerifier::EXACT).expect("prepares")
    }

    fn tmp_store(name: &str) -> Store {
        let dir = std::env::temp_dir()
            .join("ipas-incremental-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            runs: 40,
            seed: 9,
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn seeding_run_executes_everything_and_stores_a_baseline() {
        let store = tmp_store("seed");
        let w = workload("inc", BASE_SRC);
        let out =
            run_campaign_incremental(&store, &w, &config(), &CampaignOptions::default(), None)
                .expect("seeding run");
        assert_eq!(out.sections_reused, 0);
        assert_eq!(out.injections_executed, out.injections_total);
        assert!(out.sections_total >= 3, "two functions with loops");
        let classic = run_campaign_with(&w, &config(), &CampaignOptions::default()).unwrap();
        assert_eq!(out.result.records, classic.records);
        let index = store
            .get::<SectionIndex>(&out.index_key)
            .unwrap()
            .expect("index stored");
        assert_eq!(index.sections.len(), out.sections_total);
    }

    #[test]
    fn unchanged_module_reuses_every_section() {
        let store = tmp_store("full-reuse");
        let w = workload("inc", BASE_SRC);
        let opts = CampaignOptions::default();
        let seed_run = run_campaign_incremental(&store, &w, &config(), &opts, None).unwrap();
        let again =
            run_campaign_incremental(&store, &w, &config(), &opts, Some(&seed_run.index_key))
                .expect("incremental run");
        assert_eq!(again.sections_reused, again.sections_total);
        assert_eq!(again.injections_executed, 0);
        assert_eq!(again.result.records, seed_run.result.records);
        assert_eq!(
            again.result.harness_failures,
            seed_run.result.harness_failures
        );
    }

    #[test]
    fn one_function_change_reruns_only_the_changed_sections() {
        let store = tmp_store("delta");
        let base = workload("inc", BASE_SRC);
        let mutated = workload("inc", MUTATED_SRC);
        let opts = CampaignOptions::default();
        let cfg = config();
        let seed_run = run_campaign_incremental(&store, &base, &cfg, &opts, None).unwrap();
        let delta =
            run_campaign_incremental(&store, &mutated, &cfg, &opts, Some(&seed_run.index_key))
                .expect("delta run");
        assert!(delta.sections_reused > 0, "untouched sections reuse");
        assert!(
            delta.sections_reused < delta.sections_total,
            "the mutated section re-executes"
        );
        assert!(delta.injections_executed < delta.injections_total);
        // The spliced result is byte-identical to a from-scratch
        // campaign on the mutated module — the acceptance bar.
        let scratch = run_campaign_with(&mutated, &cfg, &opts).unwrap();
        assert_eq!(delta.result.records, scratch.records);
        assert_eq!(delta.result.harness_failures, scratch.harness_failures);
        // And the delta run's own index now serves as a full baseline.
        let again = run_campaign_incremental(&store, &mutated, &cfg, &opts, Some(&delta.index_key))
            .unwrap();
        assert_eq!(again.injections_executed, 0);
    }

    #[test]
    fn identity_drift_disables_reuse_without_corrupting_results() {
        let store = tmp_store("drift");
        let w = workload("inc", BASE_SRC);
        let opts = CampaignOptions::default();
        let seed_run = run_campaign_incremental(&store, &w, &config(), &opts, None).unwrap();
        let other = CampaignConfig {
            seed: 10,
            ..config()
        };
        let out = run_campaign_incremental(&store, &w, &other, &opts, Some(&seed_run.index_key))
            .expect("runs despite drift");
        assert_eq!(out.sections_reused, 0, "different seed reuses nothing");
        let classic = run_campaign_with(&w, &other, &opts).unwrap();
        assert_eq!(out.result.records, classic.records);
    }

    #[test]
    fn missing_baseline_is_a_typed_error() {
        let store = tmp_store("missing");
        let w = workload("inc", BASE_SRC);
        let key = Key::parse("deadbeef").unwrap();
        match run_campaign_incremental(
            &store,
            &w,
            &config(),
            &CampaignOptions::default(),
            Some(&key),
        ) {
            Err(IncrementalError::MissingBaseline(k)) => assert_eq!(k.as_str(), "deadbeef"),
            other => panic!("expected MissingBaseline, got {other:?}"),
        }
    }
}

//! Stage fingerprints and store-backed memoization for the pipeline.
//!
//! Every expensive stage of the IPAS workflow — training campaign, grid
//! search + classifier training, duplication — is a deterministic
//! function of canonical inputs. This module derives a
//! [`Fingerprint`] per stage from exactly those inputs (the printed IR
//! module, campaign knobs, grid options, the feature-schema version)
//! and uses it as the stage's key in an [`ipas_store::Store`], so
//! re-running a pipeline with identical inputs resolves stages from the
//! store while changing any knob forces a recompute.
//!
//! Thread counts and the interpreter engine are deliberately *excluded*
//! from campaign fingerprints: campaigns are seed-deterministic across
//! worker counts and bit-identical across engines, so the same plan on
//! more cores — or re-run under `--engine reference` — must still hit.

use ipas_analysis::sections::SectionPartition;
use ipas_analysis::{Feature, FEATURE_SCHEMA_VERSION};
use ipas_faultsim::{
    CampaignConfig, CampaignResult, FaultModel, Injection, Outcome, SamplingMode, Workload,
};
use ipas_ir::Module;
use ipas_store::{
    CacheOutcome, Fingerprint, FingerprintBuilder, Key, MemoError, Store, StoreError, TrainedModel,
    TrainingRow, TrainingSet,
};
use ipas_svm::{Dataset, GridOptions};

use crate::classifier::TrainedClassifier;
use crate::training::LabelKind;

/// Fingerprint of a module: its canonical printed text.
pub fn module_fingerprint(module: &Module) -> Fingerprint {
    FingerprintBuilder::new("module")
        .text("ir", &module.to_text())
        .finish()
}

/// Fingerprint of a fault-injection campaign over `module`: the module
/// text plus the plan-determining knobs (`runs`, `seed`) and the
/// feature-schema version (the stored artifact embeds feature rows).
/// `threads` is excluded — campaigns are seed-deterministic — and so is
/// `engine`: both engines produce byte-identical records, so a cached
/// campaign is valid whichever engine computed it.
pub fn campaign_fingerprint(module: &Module, config: &CampaignConfig) -> Fingerprint {
    fault_model_field(
        FingerprintBuilder::new("training-campaign")
            .text("ir", &module.to_text())
            .u64("runs", config.runs as u64)
            .u64("seed", config.seed)
            .u64("feature-schema", u64::from(FEATURE_SCHEMA_VERSION)),
        config.fault_model,
    )
    .finish()
}

/// Adds the campaign's fault model to a fingerprint. The field is
/// omitted for [`FaultModel::SingleBit`] so every key minted before the
/// model knob existed stays addressable; any other model adds the field
/// and therefore can never alias a single-bit artifact.
fn fault_model_field(b: FingerprintBuilder, model: FaultModel) -> FingerprintBuilder {
    if model == FaultModel::SingleBit {
        b
    } else {
        b.text("fault-model", &model.to_string())
    }
}

fn grid_fields(b: FingerprintBuilder, grid: &GridOptions) -> FingerprintBuilder {
    b.u64("num-c", grid.num_c as u64)
        .u64("num-gamma", grid.num_gamma as u64)
        .f64("c-lo", grid.c_range.0)
        .f64("c-hi", grid.c_range.1)
        .f64("gamma-lo", grid.gamma_range.0)
        .f64("gamma-hi", grid.gamma_range.1)
        .u64("folds", grid.folds as u64)
        .u64("fold-seed", grid.seed)
        .bool("balanced", grid.balanced)
}

/// Fingerprint of classifier training: the training campaign it
/// consumed, the label kind, the full grid, and how many configurations
/// are kept.
pub fn training_fingerprint(
    campaign: &Fingerprint,
    label: LabelKind,
    grid: &GridOptions,
    top_n: usize,
) -> Fingerprint {
    let tag = match label {
        LabelKind::SocGenerating => "soc",
        LabelKind::SymptomGenerating => "symptom",
    };
    grid_fields(
        FingerprintBuilder::new("classifier-training")
            .fingerprint("campaign", campaign)
            .text("label", tag),
        grid,
    )
    .u64("top-n", top_n as u64)
    .finish()
}

/// Fingerprint of a duplication pass: the source module, the policy
/// tag, the canonical text of the protection pipeline that will run
/// (e.g. `"+duplicate"`, from
/// [`crate::policy::ProtectionPolicy::pipeline_text`]), and (for
/// classifier-driven policies) the key of the model that decides what
/// to duplicate. Including the pipeline text means reshaping the
/// protection pipeline invalidates memoized protected modules.
pub fn protect_fingerprint(
    module: &Module,
    policy: &str,
    model_key: Option<&Key>,
    pipeline: &str,
) -> Fingerprint {
    FingerprintBuilder::new("duplication")
        .text("ir", &module.to_text())
        .text("policy", policy)
        .text("model", model_key.map(Key::as_str).unwrap_or("-"))
        .text("pipeline", pipeline)
        .finish()
}

/// Fingerprint of an evaluation campaign: the reference workload (its
/// name and module; the verifier's golden outputs are derived from the
/// module, so they need no separate field), the variant module under
/// test, and the campaign knobs.
pub fn eval_fingerprint(
    reference: &Module,
    variant: &Module,
    name: &str,
    config: &CampaignConfig,
) -> Fingerprint {
    fault_model_field(
        FingerprintBuilder::new("eval-campaign")
            .text("reference-ir", &reference.to_text())
            .text("variant-ir", &variant.to_text())
            .text("variant", name)
            .u64("runs", config.runs as u64)
            .u64("seed", config.seed),
        config.fault_model,
    )
    .finish()
}

/// Fingerprint of a standalone `ipas campaign` summary: the module, the
/// workload name, and the plan-determining knobs. Lives in its own
/// domain (`cli-campaign`) so it can never collide with the
/// training-campaign keys, which store [`TrainingSet`] artifacts rather
/// than summaries.
pub fn summary_fingerprint(module: &Module, name: &str, config: &CampaignConfig) -> Fingerprint {
    fault_model_field(
        FingerprintBuilder::new("cli-campaign")
            .text("ir", &module.to_text())
            .text("workload", name)
            .u64("runs", config.runs as u64)
            .u64("seed", config.seed),
        config.fault_model,
    )
    .finish()
}

/// Fingerprint of one section's content: the canonical printed text of
/// its label and blocks ([`SectionPartition::section_text`]). Editing
/// any instruction of the section (or renaming its function) changes
/// the key; edits elsewhere in the module do not — which is exactly the
/// granularity the incremental driver reuses at.
pub fn section_fingerprint(
    module: &Module,
    partition: &SectionPartition,
    section: usize,
) -> Fingerprint {
    FingerprintBuilder::new("section")
        .text("text", &partition.section_text(module, section))
        .finish()
}

/// Digest of the plan slice a campaign assigns to one section: every
/// plan index plus the plan's full parameters, in plan order. Two
/// campaigns whose slices share this digest execute identical plans at
/// identical indices — the precondition for splicing a cached section
/// profile into a fresh campaign.
pub fn plan_slice_digest(plans: &[Injection], assignment: &[u32], section: u32) -> Fingerprint {
    let mut b = FingerprintBuilder::new("section-plans");
    for (i, plan) in plans.iter().enumerate() {
        if assignment[i] != section {
            continue;
        }
        b = b
            .u64("plan", i as u64)
            .text("model", &plan.model.to_string())
            .u64("target", plan.target)
            .u64("bit", u64::from(plan.bit));
        if let Some((f, inst)) = plan.site {
            b = b
                .u64("site-func", f.index() as u64)
                .u64("site-inst", inst.index() as u64);
        }
    }
    b.finish()
}

/// Fingerprint (store key) of one section's cached outcome profile:
/// the campaign's run identity plus the section's content fingerprint
/// and plan-slice digest. A section profile is reusable exactly when
/// this whole key matches, so the key *is* the reuse condition.
pub fn section_profile_fingerprint(
    name: &str,
    config: &CampaignConfig,
    sampling: SamplingMode,
    section: &Fingerprint,
    plan_digest: &Fingerprint,
) -> Fingerprint {
    FingerprintBuilder::new("section-profile")
        .text("workload", name)
        .u64("runs", config.runs as u64)
        .u64("seed", config.seed)
        .text("fault-model", &config.fault_model.to_string())
        .text("sampling", sampling.wire())
        .fingerprint("section", section)
        .fingerprint("plans", plan_digest)
        .finish()
}

/// Fingerprint (store key) of a sectional campaign's baseline
/// [`ipas_store::SectionIndex`]: the full module text plus the campaign
/// identity. Every `--incremental` run stores its index under this key
/// and prints it, so the next run can name it as `--baseline`.
pub fn section_index_fingerprint(
    module: &Module,
    name: &str,
    config: &CampaignConfig,
    sampling: SamplingMode,
) -> Fingerprint {
    FingerprintBuilder::new("section-index")
        .text("ir", &module.to_text())
        .text("workload", name)
        .u64("runs", config.runs as u64)
        .u64("seed", config.seed)
        .text("fault-model", &config.fault_model.to_string())
        .text("sampling", sampling.wire())
        .finish()
}

/// Builds the [`TrainingSet`] artifact from a finished training
/// campaign: one row per injection record carrying the raw 31 static
/// features of the injected site plus both label columns.
///
/// # Panics
///
/// Panics if the campaign has no records.
pub fn training_set_artifact(workload: &Workload, campaign: &CampaignResult) -> TrainingSet {
    assert!(!campaign.records.is_empty(), "no training records");
    let extractor = ipas_analysis::FeatureExtractor::new(&workload.module);
    let rows = campaign
        .records
        .iter()
        .map(|rec| {
            let (fid, iid) = rec.site;
            TrainingRow {
                features: extractor.extract(fid, iid).as_slice().to_vec(),
                bit: rec.bit,
                outcome: rec.outcome.label().to_string(),
                soc: rec.outcome == Outcome::Soc,
                symptom: rec.outcome == Outcome::Symptom,
            }
        })
        .collect();
    TrainingSet {
        workload: workload.name.clone(),
        columns: Feature::ALL.iter().map(|f| f.name().to_string()).collect(),
        rows,
    }
}

/// Reconstructs the labeled dataset for one classifier from a stored
/// [`TrainingSet`] — the warm-path equivalent of
/// [`crate::training::build_training_set`].
///
/// # Panics
///
/// Panics if the artifact has no rows (the codec rejects such
/// artifacts before they get here).
pub fn dataset_from_artifact(set: &TrainingSet, label: LabelKind) -> Dataset {
    let x = set.rows.iter().map(|r| r.features.clone()).collect();
    let y = set
        .rows
        .iter()
        .map(|r| match label {
            LabelKind::SocGenerating => r.soc,
            LabelKind::SymptomGenerating => r.symptom,
        })
        .collect();
    Dataset::new(x, y).expect("stored training set is rectangular")
}

/// Loads the top-N trained classifiers stored under the ranked keys of
/// `fp`, or `None` when any rank is missing or damaged (the stage then
/// recomputes). All `top_n` ranks must be present: a partial set (e.g.
/// an interrupted previous run) is treated as a miss, never as a
/// shorter model list.
pub fn load_models(
    store: &Store,
    fp: &Fingerprint,
    top_n: usize,
) -> Result<Option<Vec<TrainedClassifier>>, StoreError> {
    let mut models = Vec::with_capacity(top_n);
    for rank in 0..top_n {
        let key = Key::ranked(fp, rank);
        match store.get::<TrainedModel>(&key) {
            Ok(Some(artifact)) => match TrainedClassifier::from_export(&artifact) {
                Ok(model) => models.push(model),
                Err(_) => return Ok(None),
            },
            Ok(None) => return Ok(None),
            Err(StoreError::Io { path, error }) => return Err(StoreError::Io { path, error }),
            // Damaged or skewed rank: recompute the whole stage.
            Err(_) => return Ok(None),
        }
    }
    Ok(Some(models))
}

/// Stores trained classifiers under the ranked keys of `fp`.
pub fn save_models(
    store: &Store,
    fp: &Fingerprint,
    models: &[TrainedClassifier],
) -> Result<(), StoreError> {
    for (rank, model) in models.iter().enumerate() {
        store.put(&Key::ranked(fp, rank), &model.export())?;
    }
    Ok(())
}

/// Memoizes the classifier-training stage: a full ranked hit loads all
/// `top_n` models from the store; otherwise `train` runs and its
/// results are persisted. Returns the models plus whether training was
/// skipped.
pub fn memoized_models(
    store: Option<&Store>,
    fp: &Fingerprint,
    top_n: usize,
    train: impl FnOnce() -> Vec<TrainedClassifier>,
) -> Result<(Vec<TrainedClassifier>, CacheOutcome), StoreError> {
    if let Some(store) = store {
        if let Some(models) = load_models(store, fp, top_n)? {
            return Ok((models, CacheOutcome::Hit));
        }
        let models = train();
        save_models(store, fp, &models)?;
        Ok((models, CacheOutcome::Miss))
    } else {
        Ok((train(), CacheOutcome::Miss))
    }
}

/// Flattens a [`MemoError`] whose compute side already fails with the
/// caller's error type, mapping store failures through `wrap`.
pub fn flatten_memo<E>(err: MemoError<E>, wrap: impl FnOnce(StoreError) -> E) -> E {
    match err {
        MemoError::Store(e) => wrap(e),
        MemoError::Compute(e) => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_module() -> Module {
        ipas_lang::compile(
            "fn main() -> int { let s: int = 0;
               for (let i: int = 0; i < 8; i = i + 1) { s = s + i; }
               output_i(s); return 0; }",
        )
        .unwrap()
    }

    #[test]
    fn campaign_fingerprint_tracks_inputs_not_threads() {
        let m = sample_module();
        let base = CampaignConfig {
            runs: 100,
            seed: 7,
            threads: 1,
            ..CampaignConfig::default()
        };
        let fp = campaign_fingerprint(&m, &base);
        assert_eq!(
            fp,
            campaign_fingerprint(&m, &CampaignConfig { threads: 8, ..base }),
            "thread count must not change the key"
        );
        for engine in ipas_faultsim::Engine::ALL {
            assert_eq!(
                fp,
                campaign_fingerprint(&m, &CampaignConfig { engine, ..base }),
                "engine must not change the key (records are engine-independent)"
            );
        }
        assert_ne!(
            fp,
            campaign_fingerprint(&m, &CampaignConfig { runs: 101, ..base })
        );
        assert_ne!(
            fp,
            campaign_fingerprint(&m, &CampaignConfig { seed: 8, ..base })
        );
        let other = ipas_lang::compile("fn main() -> int { output_i(1); return 0; }").unwrap();
        assert_ne!(fp, campaign_fingerprint(&other, &base));
    }

    #[test]
    fn fault_model_distinguishes_keys_but_single_bit_is_legacy_stable() {
        let m = sample_module();
        let base = CampaignConfig {
            runs: 100,
            seed: 7,
            threads: 1,
            ..CampaignConfig::default()
        };
        let single = campaign_fingerprint(&m, &base);
        // Every non-default model mints a distinct key — mixed-model
        // artifacts can never alias.
        let mut seen = vec![single];
        for model in FaultModel::ALL.into_iter().skip(1) {
            let fp = campaign_fingerprint(
                &m,
                &CampaignConfig {
                    fault_model: model,
                    ..base
                },
            );
            assert!(!seen.contains(&fp), "{model} aliases another model's key");
            seen.push(fp);
        }
        // Two burst widths are two different models.
        let b2 = campaign_fingerprint(
            &m,
            &CampaignConfig {
                fault_model: FaultModel::MultiBitBurst { width: 2 },
                ..base
            },
        );
        let b3 = campaign_fingerprint(
            &m,
            &CampaignConfig {
                fault_model: FaultModel::MultiBitBurst { width: 3 },
                ..base
            },
        );
        assert_ne!(b2, b3);
        // Summary keys live in their own domain.
        assert_ne!(summary_fingerprint(&m, "cli", &base), single);
        assert_ne!(
            summary_fingerprint(&m, "cli", &base),
            summary_fingerprint(
                &m,
                "cli",
                &CampaignConfig {
                    fault_model: FaultModel::BranchFlip,
                    ..base
                }
            )
        );
    }

    #[test]
    fn training_fingerprint_tracks_grid_and_label() {
        let m = sample_module();
        let cfp = campaign_fingerprint(
            &m,
            &CampaignConfig {
                runs: 64,
                seed: 1,
                threads: 0,
                ..CampaignConfig::default()
            },
        );
        let grid = GridOptions::quick();
        let fp = training_fingerprint(&cfp, LabelKind::SocGenerating, &grid, 5);
        assert_ne!(
            fp,
            training_fingerprint(&cfp, LabelKind::SymptomGenerating, &grid, 5)
        );
        assert_ne!(
            fp,
            training_fingerprint(&cfp, LabelKind::SocGenerating, &grid, 4)
        );
        let mut grid2 = grid;
        grid2.folds += 1;
        assert_ne!(
            fp,
            training_fingerprint(&cfp, LabelKind::SocGenerating, &grid2, 5)
        );
        // Stability: same inputs, same key.
        assert_eq!(
            fp,
            training_fingerprint(&cfp, LabelKind::SocGenerating, &grid, 5)
        );
    }

    #[test]
    fn section_fingerprints_isolate_the_edited_section() {
        let base = ipas_lang::compile(
            "fn f(n: int) -> int { let s: int = 0;
               for (let i: int = 0; i < n; i = i + 1) { s = s + i * 3; }
               return s; }
             fn main() -> int { output_i(f(6)); return 0; }",
        )
        .unwrap();
        let edited = ipas_lang::compile(
            "fn f(n: int) -> int { let s: int = 0;
               for (let i: int = 0; i < n; i = i + 1) { s = s + i * 7; }
               return s; }
             fn main() -> int { output_i(f(6)); return 0; }",
        )
        .unwrap();
        let pb = SectionPartition::compute(&base);
        let pe = SectionPartition::compute(&edited);
        assert_eq!(pb.len(), pe.len());
        let changed: Vec<usize> = (0..pb.len())
            .filter(|&s| section_fingerprint(&base, &pb, s) != section_fingerprint(&edited, &pe, s))
            .collect();
        // Only the loop section of `f` saw the constant change.
        assert_eq!(changed.len(), 1);
        assert!(pb.sections()[changed[0]].label.contains("loop"));
        // Stability: recomputing yields the same key.
        assert_eq!(
            section_fingerprint(&base, &pb, 0),
            section_fingerprint(&base, &pb, 0)
        );
    }

    #[test]
    fn plan_slice_digest_tracks_membership_and_parameters() {
        use ipas_faultsim::Injection;
        let plans = vec![
            Injection::at_global_index(10, 3),
            Injection::at_global_index(20, 4),
            Injection::at_global_index(30, 5),
        ];
        let assignment = vec![0, 1, 0];
        let d0 = plan_slice_digest(&plans, &assignment, 0);
        assert_ne!(d0, plan_slice_digest(&plans, &assignment, 1));
        // Moving a plan between sections changes both digests.
        assert_ne!(d0, plan_slice_digest(&plans, &[0, 0, 0], 0));
        // Changing a parameter of a member plan changes the digest.
        let mut bumped = plans.clone();
        bumped[2].bit = 6;
        assert_ne!(d0, plan_slice_digest(&bumped, &assignment, 0));
        // Unrelated sections are unaffected.
        assert_eq!(
            plan_slice_digest(&plans, &assignment, 1),
            plan_slice_digest(&bumped, &assignment, 1)
        );
    }

    #[test]
    fn protect_fingerprint_tracks_model_and_pipeline() {
        let m = sample_module();
        let k1 = Key::parse("aa").unwrap();
        let k2 = Key::parse("bb").unwrap();
        let fp = protect_fingerprint(&m, "IPAS", Some(&k1), "+duplicate");
        assert_ne!(fp, protect_fingerprint(&m, "IPAS", Some(&k2), "+duplicate"));
        assert_ne!(
            fp,
            protect_fingerprint(&m, "baseline", Some(&k1), "+duplicate")
        );
        assert_ne!(fp, protect_fingerprint(&m, "IPAS", None, "+duplicate"));
        assert_ne!(
            fp,
            protect_fingerprint(&m, "IPAS", Some(&k1), "dce+duplicate"),
            "pipeline shape must change the key"
        );
        // Stability: same inputs, same key.
        assert_eq!(fp, protect_fingerprint(&m, "IPAS", Some(&k1), "+duplicate"));
    }
}

//! Protection policies: which instructions get duplicated.

use ipas_analysis::features::FeatureExtractor;
use ipas_ir::Module;

use crate::classifier::TrainedClassifier;
use crate::duplication::{protect_module, DuplicationStats};

/// A rule mapping a module to its protected variant.
#[derive(Debug, Clone)]
pub enum ProtectionPolicy {
    /// No protection (the first bar of Figure 5).
    Unprotected,
    /// SWIFT-style full duplication of every duplicable instruction
    /// (the second bar of Figure 5).
    FullDuplication,
    /// IPAS: duplicate instructions the classifier predicts as
    /// SOC-generating (class 1).
    Ipas(TrainedClassifier),
    /// Shoestring-style baseline: the classifier is trained on
    /// symptom labels, and instructions predicted *non*-symptom-
    /// generating are duplicated (§5.3).
    Baseline(TrainedClassifier),
}

impl ProtectionPolicy {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ProtectionPolicy::Unprotected => "unprotected",
            ProtectionPolicy::FullDuplication => "full",
            ProtectionPolicy::Ipas(_) => "IPAS",
            ProtectionPolicy::Baseline(_) => "baseline",
        }
    }

    /// Applies the policy to `module`, returning the protected module
    /// and duplication statistics.
    pub fn apply(&self, module: &Module) -> (Module, DuplicationStats) {
        match self {
            ProtectionPolicy::Unprotected => {
                // Identity transform; the pass still counts duplicable
                // instructions so reports stay consistent.
                protect_module(module, &mut |_, _, _| false)
            }
            ProtectionPolicy::FullDuplication => protect_module(module, &mut |_, _, _| true),
            ProtectionPolicy::Ipas(model) => {
                let extractor = FeatureExtractor::new(module);
                protect_module(module, &mut |fid, iid, _| {
                    model.predict_features(&extractor.extract(fid, iid))
                })
            }
            ProtectionPolicy::Baseline(model) => {
                let extractor = FeatureExtractor::new(module);
                protect_module(module, &mut |fid, iid, _| {
                    // Protect what is NOT predicted symptom-generating.
                    !model.predict_features(&extractor.extract(fid, iid))
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_policy_is_identity_with_stats() {
        let module =
            ipas_lang::compile("fn main() -> int { let x: int = mpi_rank(); return x * 3 + 1; }")
                .unwrap();
        let (out, stats) = ProtectionPolicy::Unprotected.apply(&module);
        assert_eq!(out.num_static_insts(), module.num_static_insts());
        assert!(stats.considered > 0);
        assert_eq!(stats.duplicated, 0);
    }

    #[test]
    fn full_policy_duplicates_everything() {
        let module =
            ipas_lang::compile("fn main() -> int { let x: int = mpi_rank(); return x * 3 + 1; }")
                .unwrap();
        let (_, stats) = ProtectionPolicy::FullDuplication.apply(&module);
        assert_eq!(stats.duplicated, stats.considered);
    }

    #[test]
    fn labels() {
        assert_eq!(ProtectionPolicy::Unprotected.label(), "unprotected");
        assert_eq!(ProtectionPolicy::FullDuplication.label(), "full");
    }
}

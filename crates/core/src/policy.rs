//! Protection policies: which instructions get duplicated.

use ipas_analysis::features::FeatureExtractor;
use ipas_ir::passmgr::PassManager;
use ipas_ir::Module;

use crate::classifier::TrainedClassifier;
use crate::duplication::{
    protect_module_placed, CheckPlacement, DuplicationPass, DuplicationStats,
};

/// A rule mapping a module to its protected variant.
#[derive(Debug, Clone)]
pub enum ProtectionPolicy {
    /// No protection (the first bar of Figure 5).
    Unprotected,
    /// SWIFT-style full duplication of every duplicable instruction
    /// (the second bar of Figure 5).
    FullDuplication,
    /// IPAS: duplicate instructions the classifier predicts as
    /// SOC-generating (class 1).
    Ipas(TrainedClassifier),
    /// Shoestring-style baseline: the classifier is trained on
    /// symptom labels, and instructions predicted *non*-symptom-
    /// generating are duplicated (§5.3).
    Baseline(TrainedClassifier),
}

impl ProtectionPolicy {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ProtectionPolicy::Unprotected => "unprotected",
            ProtectionPolicy::FullDuplication => "full",
            ProtectionPolicy::Ipas(_) => "IPAS",
            ProtectionPolicy::Baseline(_) => "baseline",
        }
    }

    /// Builds the protection pipeline for this policy: an empty
    /// function pipeline plus the [`DuplicationPass`] module pass. The
    /// manager's [`PassManager::describe`] text (`"+duplicate"`) is
    /// what [`ProtectionPolicy::pipeline_text`] feeds into store memo
    /// keys.
    pub fn manager(&self) -> PassManager {
        let mut pm = PassManager::empty();
        pm.add_module_pass(Box::new(DuplicationPass::new(self.clone())));
        pm
    }

    /// Canonical text of the protection pipeline this policy runs
    /// (`"+duplicate"`). Fingerprinted into memoized protected modules
    /// so a change to the pipeline shape invalidates stale artifacts.
    pub fn pipeline_text(&self) -> String {
        self.manager().describe()
    }

    /// Applies the policy to `module` through the pass manager,
    /// returning the protected module and the duplication statistics
    /// recovered from the manager's per-pass counters.
    pub fn apply(&self, module: &Module) -> (Module, DuplicationStats) {
        let mut pm = self.manager();
        let mut out = module.clone();
        pm.run_module(&mut out)
            .expect("protection pipeline without verify-each cannot fail");
        let stats = pm
            .stats()
            .pass("duplicate")
            .map(|s| DuplicationStats {
                considered: s.counter("considered") as usize,
                duplicated: s.counter("duplicated") as usize,
                checks: s.counter("checks") as usize,
            })
            .unwrap_or_default();
        (out, stats)
    }

    /// The policy's instruction selector applied through
    /// [`protect_module_placed`] — the raw transform behind
    /// [`DuplicationPass`] and [`ProtectionPolicy::apply`].
    pub(crate) fn select_and_protect(
        &self,
        module: &Module,
        placement: CheckPlacement,
    ) -> (Module, DuplicationStats) {
        match self {
            ProtectionPolicy::Unprotected => {
                // Identity transform; the pass still counts duplicable
                // instructions so reports stay consistent.
                protect_module_placed(module, &mut |_, _, _| false, placement)
            }
            ProtectionPolicy::FullDuplication => {
                protect_module_placed(module, &mut |_, _, _| true, placement)
            }
            ProtectionPolicy::Ipas(model) => {
                let extractor = FeatureExtractor::new(module);
                protect_module_placed(
                    module,
                    &mut |fid, iid, _| model.predict_features(&extractor.extract(fid, iid)),
                    placement,
                )
            }
            ProtectionPolicy::Baseline(model) => {
                let extractor = FeatureExtractor::new(module);
                protect_module_placed(
                    module,
                    &mut |fid, iid, _| {
                        // Protect what is NOT predicted symptom-generating.
                        !model.predict_features(&extractor.extract(fid, iid))
                    },
                    placement,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_policy_is_identity_with_stats() {
        let module =
            ipas_lang::compile("fn main() -> int { let x: int = mpi_rank(); return x * 3 + 1; }")
                .unwrap();
        let (out, stats) = ProtectionPolicy::Unprotected.apply(&module);
        assert_eq!(out.num_static_insts(), module.num_static_insts());
        assert!(stats.considered > 0);
        assert_eq!(stats.duplicated, 0);
    }

    #[test]
    fn full_policy_duplicates_everything() {
        let module =
            ipas_lang::compile("fn main() -> int { let x: int = mpi_rank(); return x * 3 + 1; }")
                .unwrap();
        let (_, stats) = ProtectionPolicy::FullDuplication.apply(&module);
        assert_eq!(stats.duplicated, stats.considered);
    }

    #[test]
    fn labels() {
        assert_eq!(ProtectionPolicy::Unprotected.label(), "unprotected");
        assert_eq!(ProtectionPolicy::FullDuplication.label(), "full");
    }

    #[test]
    fn pipeline_text_names_the_module_pass() {
        assert_eq!(ProtectionPolicy::Unprotected.pipeline_text(), "+duplicate");
        assert_eq!(
            ProtectionPolicy::FullDuplication.pipeline_text(),
            "+duplicate"
        );
    }

    #[test]
    fn apply_matches_the_raw_transform() {
        let module = ipas_lang::compile(
            "fn main() -> int { let x: int = mpi_rank(); return (x + 1) * (x + 2); }",
        )
        .unwrap();
        for policy in [
            ProtectionPolicy::Unprotected,
            ProtectionPolicy::FullDuplication,
        ] {
            let (via_manager, stats) = policy.apply(&module);
            let (raw, raw_stats) = policy.select_and_protect(&module, CheckPlacement::default());
            assert_eq!(via_manager.to_text(), raw.to_text(), "{}", policy.label());
            assert_eq!(stats, raw_stats, "{}", policy.label());
        }
    }
}

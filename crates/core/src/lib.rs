//! IPAS: intelligent protection against silent output corruption.
//!
//! This crate is the paper's primary contribution — the four-step
//! workflow of Figure 1 — built on the substrates in the sibling crates:
//!
//! 1. **Verification routine** — supplied per workload as an
//!    [`ipas_faultsim::OutputVerifier`];
//! 2. **Data collection** ([`training`]) — a statistical fault-injection
//!    campaign labels each injected instruction's 31-feature vector as
//!    SOC-generating or not (or symptom-generating, for the
//!    Shoestring-style baseline);
//! 3. **Training** ([`classifier`]) — a class-weighted C-SVM is tuned
//!    over the paper's 500-configuration (C, γ) grid by cross-validated
//!    F-score; the top-N configurations are kept;
//! 4. **Application protection** ([`duplication`], [`policy`]) — every
//!    instruction the classifier predicts as SOC-generating is duplicated
//!    and duplication paths are terminated with `__ipas_check_*` calls.
//!
//! [`experiment`] orchestrates the full evaluation protocol of §6
//! (coverage, SOC-reduction-vs-slowdown, duplicated-instruction counts,
//! ideal-point configuration selection) and is what the `ipas-bench`
//! binaries call to regenerate the paper's figures and tables.
//!
//! # Example
//!
//! Protect a small kernel with full duplication and observe that faults
//! become *detected* instead of silent:
//!
//! ```
//! use ipas_core::duplication::{protect_module, duplicable};
//! use ipas_core::policy::ProtectionPolicy;
//! use ipas_faultsim::{run_campaign, CampaignConfig, GoldenToleranceVerifier, Outcome, Workload};
//!
//! let module = ipas_lang::compile(
//!     "fn main() -> int { let s: int = 0;
//!        for (let i: int = 0; i < 60; i = i + 1) { s = s + i * i; }
//!        output_i(s); return 0; }",
//! ).unwrap();
//! let workload = Workload::serial("sum", module, GoldenToleranceVerifier::EXACT).unwrap();
//! let (protected, stats) = ProtectionPolicy::FullDuplication.apply(&workload.module);
//! assert!(stats.duplicated > 0);
//! let protected_wl = workload.with_module("sum-full", protected).unwrap();
//! let config = CampaignConfig { runs: 48, seed: 1, threads: 2, ..CampaignConfig::default() };
//! let result = run_campaign(&protected_wl, &config).expect("campaign completes");
//! assert!(result.count(Outcome::Detected) > 0);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod classifier;
pub mod duplication;
pub mod experiment;
pub mod faultmodels;
pub mod incremental;
pub mod jobspec;
pub mod memo;
pub mod policy;
pub mod selection;
pub mod training;

pub use adaptive::{
    binary_entropy, run_campaign_adaptive, AdaptiveDriver, AdaptiveParams, AdaptiveResult,
    RoundSampling, RoundSummary,
};
pub use classifier::{train_top_configs, TrainedClassifier};
pub use duplication::{
    duplicable, protect_module, protect_module_placed, CheckPlacement, DuplicationStats,
};
pub use experiment::{
    campaign_journal_path, evaluate_variant, memoized_protect, run_experiment, ExperimentOptions,
    ExperimentResult, VariantResult,
};
pub use faultmodels::{compare_fault_models, model_breakdown, render_model_table, ModelBreakdown};
pub use incremental::{run_campaign_incremental, IncrementalError, IncrementalOutcome};
pub use memo::{
    campaign_fingerprint, dataset_from_artifact, eval_fingerprint, memoized_models,
    module_fingerprint, plan_slice_digest, protect_fingerprint, section_fingerprint,
    section_index_fingerprint, section_profile_fingerprint, summary_fingerprint,
    training_fingerprint, training_set_artifact,
};
pub use policy::ProtectionPolicy;
pub use selection::ideal_point_index;
pub use training::{build_training_set, LabelKind};

//! Active-learning campaigns: margin-driven adaptive injection
//! sampling.
//!
//! Injection runs are the dominant cost of every protect request, yet a
//! classic campaign spends them uniformly. An *adaptive* campaign spends
//! them where the classifier is uncertain instead:
//!
//! 1. **Seed round** — one round of plans drawn uniformly over the
//!    profiled static sites (the [`ipas_faultsim::SamplingMode::StaticUniform`]
//!    draw shape);
//! 2. **Retrain** — a quick-grid C-SVM is trained on every label
//!    collected so far;
//! 3. **Margin weighting** — every eligible static instruction `i` gets
//!    weight `1 / (ε + |d(i)|)` where `d` is the SVM's signed decision
//!    value ([`crate::TrainedClassifier::decision_raw`]) — sites near
//!    the decision boundary draw the most new injections;
//! 4. **Stop** — when the binary entropy of per-round labels is stable
//!    (within [`AdaptiveParams::entropy_tol`]) for
//!    [`AdaptiveParams::patience`] consecutive rounds, or the hard runs
//!    budget is exhausted.
//!
//! # Determinism and resume
//!
//! All randomness flows from one `StdRng` seeded with the campaign
//! seed. Round `k+1`'s draw depends only on the labels of rounds
//! `0..=k` — which a resumed campaign replays bit-identically from the
//! journal — so a given `(seed, config, params)` is byte-deterministic
//! across thread counts and engines, and a resume never re-draws a
//! partial round differently. Rounds that cannot train (single-class
//! labels, degenerate weights) deterministically degrade to uniform
//! sampling ([`ipas_faultsim::rounds::UniformFallback`]) *without*
//! consuming extra randomness on the failed path. See
//! `docs/active-learning.md` for the full contract.

use std::collections::HashMap;

use ipas_analysis::features::FeatureExtractor;
use ipas_faultsim::rounds::{
    draw_uniform_site_plans, draw_weighted_site_plans, execute_round, UniformFallback,
};
use ipas_faultsim::{
    profile_sites, CampaignConfig, CampaignError, CampaignJournal, CampaignOptions, CampaignResult,
    CompiledProgram, Engine, FaultModel, Injection, InjectionRecord, JournalHeader, PlanOutcome,
    ResumeState, SamplingMode, SiteCount, Workload,
};
use ipas_svm::{Dataset, GridOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::classifier::train_top_configs;
use crate::training::LabelKind;

/// The margin-weight floor: weight is `1 / (EPSILON + |margin|)`, so a
/// site exactly on the decision boundary gets finite (but maximal)
/// weight.
const MARGIN_EPSILON: f64 = 0.05;

/// Tuning knobs of an adaptive campaign.
#[derive(Debug, Clone)]
pub struct AdaptiveParams {
    /// Plans drawn per round. Journaled in the header
    /// ([`ipas_faultsim::JournalHeader::round_runs`]): a resume must
    /// agree on it, because round boundaries decide which labels feed
    /// which retraining.
    pub round_runs: usize,
    /// Stopping tolerance: consecutive rounds whose label-entropy delta
    /// stays within this are "stable".
    pub entropy_tol: f64,
    /// Consecutive stable rounds required to stop before the budget.
    pub patience: usize,
    /// Which outcome the classifier learns (and the entropy tracks).
    pub label: LabelKind,
    /// Grid-search options for the per-round quick retrain.
    pub grid: GridOptions,
}

impl AdaptiveParams {
    /// Default parameters for a campaign with a `runs` budget: eight
    /// rounds of at least 16 plans, entropy tolerance 0.05, patience 2,
    /// SOC labels, and the quick grid.
    pub fn for_budget(runs: usize) -> Self {
        AdaptiveParams {
            round_runs: (runs / 8).max(16).min(runs.max(1)),
            entropy_tol: 0.05,
            patience: 2,
            label: LabelKind::SocGenerating,
            grid: GridOptions::quick(),
        }
    }
}

/// How one round's plans were drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundSampling {
    /// The uniform seed round (round 0).
    SeedUniform,
    /// Margin-weighted by the round's freshly trained classifier.
    Weighted,
    /// Degraded to uniform for the given reason.
    Fallback(UniformFallback),
}

impl RoundSampling {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RoundSampling::SeedUniform => "seed-uniform",
            RoundSampling::Weighted => "weighted",
            RoundSampling::Fallback(UniformFallback::SingleClassLabels) => {
                "uniform (single-class labels)"
            }
            RoundSampling::Fallback(UniformFallback::NoModel) => "uniform (no model)",
            RoundSampling::Fallback(UniformFallback::DegenerateWeights) => {
                "uniform (degenerate weights)"
            }
        }
    }
}

/// What one executed round looked like.
#[derive(Debug, Clone)]
pub struct RoundSummary {
    /// Round index (0 = seed round).
    pub round: u32,
    /// Plans drawn for this round.
    pub drawn: usize,
    /// How the plans were drawn.
    pub sampling: RoundSampling,
    /// Binary entropy of this round's labels (0.0 when the round
    /// produced no classified records).
    pub entropy: f64,
    /// Plans recovered from the journal.
    pub resumed: usize,
    /// Plans executed by this invocation.
    pub executed: usize,
}

/// A completed adaptive campaign.
#[derive(Debug)]
pub struct AdaptiveResult {
    /// The campaign result over every executed round, records in plan
    /// order.
    pub result: CampaignResult,
    /// Per-round summaries, in round order.
    pub rounds: Vec<RoundSummary>,
    /// True when the entropy stopping rule fired before the runs budget
    /// was exhausted.
    pub stopped_early: bool,
}

/// Shannon entropy (in bits) of a Bernoulli distribution with success
/// probability `p`. Degenerate inputs (outside `[0, 1]`, or exactly 0
/// or 1) report 0.0.
pub fn binary_entropy(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// The round-by-round planning state of an adaptive campaign: owns the
/// seeded RNG, the site profile with per-site feature vectors, and the
/// entropy-based stopping rule. Callers (the in-process
/// [`run_campaign_adaptive`] loop and the serve daemon) alternate
/// [`AdaptiveDriver::next_round`] with round execution.
#[derive(Debug)]
pub struct AdaptiveDriver {
    rng: StdRng,
    params: AdaptiveParams,
    profile: Vec<SiteCount>,
    /// Raw feature vector per profiled site, parallel to `profile`.
    features: Vec<Vec<f64>>,
    /// `(func index, inst index)` → row in `profile`/`features`.
    site_row: HashMap<(usize, usize), usize>,
    model: FaultModel,
    budget: usize,
    drawn: usize,
    round: u32,
    entropy: Vec<f64>,
    stable: usize,
    stopped: bool,
}

impl AdaptiveDriver {
    /// Profiles the workload's sites and prepares the driver.
    ///
    /// # Errors
    ///
    /// [`CampaignError::UnsupportedSampling`] for non-value fault models
    /// (site-restricted draws enumerate value-producing instructions);
    /// [`CampaignError::Run`] / [`CampaignError::MissingProfile`] when
    /// site profiling fails.
    pub fn new(
        workload: &Workload,
        config: &CampaignConfig,
        params: AdaptiveParams,
    ) -> Result<Self, CampaignError> {
        let model = config.fault_model;
        if !model.injects_values() {
            return Err(CampaignError::UnsupportedSampling { model });
        }
        let profile = profile_sites(workload)?;
        let extractor = FeatureExtractor::new(&workload.module);
        let features: Vec<Vec<f64>> = profile
            .iter()
            .map(|((f, i), _)| extractor.extract(*f, *i).as_slice().to_vec())
            .collect();
        let site_row = profile
            .iter()
            .enumerate()
            .map(|(row, ((f, i), _))| ((f.index(), i.index()), row))
            .collect();
        Ok(AdaptiveDriver {
            rng: StdRng::seed_from_u64(config.seed),
            params,
            profile,
            features,
            site_row,
            model,
            budget: config.runs,
            drawn: 0,
            round: 0,
            entropy: Vec::new(),
            stable: 0,
            stopped: false,
        })
    }

    /// The params the driver was built with.
    pub fn params(&self) -> &AdaptiveParams {
        &self.params
    }

    /// Plans drawn across all rounds so far.
    pub fn drawn(&self) -> usize {
        self.drawn
    }

    /// True when the entropy stopping rule has fired.
    pub fn stopped_early(&self) -> bool {
        self.stopped
    }

    /// Label-entropy history, one entry per completed round (computed
    /// when the *next* round is requested).
    pub fn entropy_history(&self) -> &[f64] {
        &self.entropy
    }

    /// Plans the next round, given every classified record so far as
    /// `(global plan index, record)` pairs. Returns the round id, how
    /// its plans were drawn, and the plans — or `None` when the
    /// campaign is finished (stopping rule fired or budget exhausted).
    ///
    /// Calling this with replayed (journal-resumed) labels reproduces
    /// the original draw bit for bit: the stopping rule and the
    /// weighted-vs-fallback branch depend only on the labels, and the
    /// failed weighted path consumes no randomness.
    pub fn next_round(
        &mut self,
        labeled: &[(usize, InjectionRecord)],
    ) -> Option<(u32, RoundSampling, Vec<Injection>)> {
        if self.stopped || self.drawn >= self.budget {
            return None;
        }
        if self.round > 0 {
            // Stopping rule: entropy of the previous round's labels,
            // compared against the round before it.
            let lo = (self.round - 1) as usize * self.params.round_runs;
            let labels: Vec<bool> = labeled
                .iter()
                .filter(|(i, _)| *i >= lo && *i < self.drawn)
                .map(|(_, r)| self.params.label.label(r.outcome))
                .collect();
            let h = if labels.is_empty() {
                0.0
            } else {
                let p = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
                binary_entropy(p)
            };
            if let Some(&prev) = self.entropy.last() {
                if (h - prev).abs() <= self.params.entropy_tol {
                    self.stable += 1;
                } else {
                    self.stable = 0;
                }
            }
            self.entropy.push(h);
            if self.stable >= self.params.patience.max(1) {
                self.stopped = true;
                return None;
            }
        }
        let count = self.params.round_runs.min(self.budget - self.drawn);
        let (sampling, plans) = if self.round == 0 {
            (
                RoundSampling::SeedUniform,
                draw_uniform_site_plans(&self.profile, self.model, count, &mut self.rng),
            )
        } else {
            match self.margin_weights(labeled) {
                Ok(weights) => {
                    match draw_weighted_site_plans(
                        &self.profile,
                        &weights,
                        self.model,
                        count,
                        &mut self.rng,
                    ) {
                        Ok(plans) => (RoundSampling::Weighted, plans),
                        // The failed draw consumed no randomness, so
                        // this uniform draw is deterministic.
                        Err(fb) => (
                            RoundSampling::Fallback(fb),
                            draw_uniform_site_plans(
                                &self.profile,
                                self.model,
                                count,
                                &mut self.rng,
                            ),
                        ),
                    }
                }
                Err(fb) => (
                    RoundSampling::Fallback(fb),
                    draw_uniform_site_plans(&self.profile, self.model, count, &mut self.rng),
                ),
            }
        };
        let round = self.round;
        self.round += 1;
        self.drawn += plans.len();
        Some((round, sampling, plans))
    }

    /// Trains the quick-grid classifier on every label so far and
    /// scores each profiled site by inverse margin.
    ///
    /// # Errors
    ///
    /// The [`UniformFallback`] reason when no classifier can be
    /// trained; the caller degrades the round to uniform sampling.
    fn margin_weights(
        &self,
        labeled: &[(usize, InjectionRecord)],
    ) -> Result<Vec<f64>, UniformFallback> {
        let mut x = Vec::with_capacity(labeled.len());
        let mut y = Vec::with_capacity(labeled.len());
        for (_, rec) in labeled {
            let key = (rec.site.0.index(), rec.site.1.index());
            if let Some(&row) = self.site_row.get(&key) {
                x.push(self.features[row].clone());
                y.push(self.params.label.label(rec.outcome));
            }
        }
        let positives = y.iter().filter(|&&b| b).count();
        // The PR 1 class-starved tolerance, applied campaign-wide: an
        // all-benign (or all-SOC) label set trains nothing, and must
        // degrade to a uniform round instead of erroring the campaign.
        if y.is_empty() || positives == 0 || positives == y.len() {
            return Err(UniformFallback::SingleClassLabels);
        }
        let data = Dataset::new(x, y).map_err(|_| UniformFallback::NoModel)?;
        let mut models = train_top_configs(&data, &self.params.grid, 1);
        let model = models.pop().ok_or(UniformFallback::NoModel)?;
        Ok(self
            .features
            .iter()
            .map(|f| 1.0 / (MARGIN_EPSILON + model.decision_raw(f).abs()))
            .collect())
    }
}

/// Runs a full adaptive campaign: seed round, retrain, margin-weighted
/// rounds, entropy stop — with the resilient runtime (panic isolation,
/// retries, watchdog) and round-tagged journaling of
/// [`ipas_faultsim::rounds::execute_round`].
///
/// With [`CampaignOptions::journal`] set, the journal header carries
/// the round size ([`JournalHeader::round_runs`]) and every record its
/// round id; a re-invocation resumes by deterministic replay — each
/// round is re-drawn from the identical RNG stream, resumed plans are
/// filled from the journal, and only missing plans execute, so a kill
/// mid-round never re-draws a partial round differently.
///
/// # Errors
///
/// The union of [`AdaptiveDriver::new`] and
/// [`ipas_faultsim::rounds::execute_round`] errors.
pub fn run_campaign_adaptive(
    workload: &Workload,
    config: &CampaignConfig,
    options: &CampaignOptions,
    params: &AdaptiveParams,
) -> Result<AdaptiveResult, CampaignError> {
    let mut driver = AdaptiveDriver::new(workload, config, params.clone())?;
    let (journal, resume) = match &options.journal {
        Some(path) => {
            let header = JournalHeader {
                workload: workload.name.clone(),
                entry: workload.entry.clone(),
                seed: config.seed,
                runs: config.runs,
                sampling: SamplingMode::StaticUniform,
                fault_model: config.fault_model,
                eligible_results: workload.eligible_results,
                nominal_insts: workload.nominal_insts,
                round_runs: Some(params.round_runs),
            };
            let (journal, resume) = CampaignJournal::open(path, &header)?;
            (Some(journal), resume)
        }
        None => (None, ResumeState::default()),
    };
    let compiled = match config.engine {
        Engine::Compiled => Some(CompiledProgram::compile(&workload.module)),
        Engine::Reference => None,
    };
    let mut outcomes: Vec<(usize, PlanOutcome)> = Vec::new();
    let mut labeled: Vec<(usize, InjectionRecord)> = Vec::new();
    let mut rounds = Vec::new();
    let mut base = 0usize;
    let mut resumed_total = 0usize;
    while let Some((round, sampling, plans)) = driver.next_round(&labeled) {
        let exec = execute_round(
            workload,
            config,
            options,
            compiled.as_ref(),
            journal.as_ref(),
            &resume,
            base,
            round,
            &plans,
        )?;
        let mut positives = 0usize;
        let mut classified = 0usize;
        for (i, outcome) in &exec.outcomes {
            if let PlanOutcome::Record(record) = outcome {
                labeled.push((*i, *record));
                classified += 1;
                if params.label.label(record.outcome) {
                    positives += 1;
                }
            }
        }
        let entropy = if classified == 0 {
            0.0
        } else {
            binary_entropy(positives as f64 / classified as f64)
        };
        rounds.push(RoundSummary {
            round,
            drawn: plans.len(),
            sampling,
            entropy,
            resumed: exec.resumed,
            executed: exec.executed,
        });
        resumed_total += exec.resumed;
        base += plans.len();
        outcomes.extend(exec.outcomes);
    }
    let mut records = Vec::with_capacity(outcomes.len());
    let mut harness_failures = Vec::new();
    for (_, outcome) in outcomes {
        match outcome {
            PlanOutcome::Record(record) => records.push(record),
            PlanOutcome::Failure(failure) => harness_failures.push(failure),
        }
    }
    harness_failures.sort_by_key(|f| f.plan_index);
    Ok(AdaptiveResult {
        result: CampaignResult {
            records,
            harness_failures,
            resumed: resumed_total,
            nominal_insts: workload.nominal_insts,
        },
        rounds,
        stopped_early: driver.stopped_early(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_faultsim::{GoldenToleranceVerifier, Outcome};

    const SRC: &str = "fn main() -> int {
        let s: int = 0;
        for (let i: int = 0; i < 20; i = i + 1) { s = s + i * i; }
        output_i(s);
        return 0;
    }";

    fn workload() -> Workload {
        let module = ipas_lang::compile(SRC).expect("compiles");
        Workload::serial("adaptive", module, GoldenToleranceVerifier::EXACT).expect("prepares")
    }

    fn fake_record(site: (ipas_ir::FuncId, ipas_ir::InstId), outcome: Outcome) -> InjectionRecord {
        InjectionRecord {
            model: FaultModel::SingleBit,
            site,
            target: 0,
            bit: 0,
            outcome,
            dynamic_insts: 100,
            latency: 10,
            attempts: 1,
        }
    }

    #[test]
    fn all_benign_round_degrades_to_uniform() {
        // Satellite: a round whose labels are single-class (all benign)
        // must fall back to uniform sampling, not error the campaign.
        let w = workload();
        let config = CampaignConfig {
            runs: 64,
            seed: 3,
            ..CampaignConfig::default()
        };
        let mut params = AdaptiveParams::for_budget(config.runs);
        params.round_runs = 16;
        let mut driver = AdaptiveDriver::new(&w, &config, params).expect("driver");
        let (round, sampling, plans) = driver.next_round(&[]).expect("seed round");
        assert_eq!(round, 0);
        assert_eq!(sampling, RoundSampling::SeedUniform);
        assert_eq!(plans.len(), 16);

        let profile = profile_sites(&w).expect("profile");
        let labeled: Vec<(usize, InjectionRecord)> = (0..16)
            .map(|i| {
                (
                    i,
                    fake_record(profile[i % profile.len()].0, Outcome::Masked),
                )
            })
            .collect();
        let (round, sampling, plans) = driver.next_round(&labeled).expect("fallback round");
        assert_eq!(round, 1);
        assert_eq!(
            sampling,
            RoundSampling::Fallback(UniformFallback::SingleClassLabels)
        );
        assert_eq!(plans.len(), 16);
    }

    #[test]
    fn entropy_stability_stops_before_budget() {
        let w = workload();
        let config = CampaignConfig {
            runs: 1024,
            seed: 5,
            ..CampaignConfig::default()
        };
        let mut params = AdaptiveParams::for_budget(config.runs);
        params.round_runs = 8;
        params.entropy_tol = 1.0; // every consecutive pair is "stable"
        params.patience = 2;
        let mut driver = AdaptiveDriver::new(&w, &config, params).expect("driver");
        let profile = profile_sites(&w).expect("profile");
        let mut labeled = Vec::new();
        let mut rounds = 0;
        while let Some((_, _, plans)) = driver.next_round(&labeled) {
            for (j, _) in plans.iter().enumerate() {
                let outcome = if j % 2 == 0 {
                    Outcome::Soc
                } else {
                    Outcome::Masked
                };
                labeled.push((
                    labeled.len(),
                    fake_record(profile[j % profile.len()].0, outcome),
                ));
            }
            rounds += 1;
            assert!(rounds < 10, "stopping rule never fired");
        }
        // Rounds 1 and 2's entropies both match round 0's (identical
        // label mix), so stability is reached after three rounds.
        assert_eq!(rounds, 3);
        assert!(driver.stopped_early());
        assert!(driver.drawn() < 1024, "stopped before the budget");
    }

    #[test]
    fn budget_caps_the_final_round() {
        let w = workload();
        let config = CampaignConfig {
            runs: 20,
            seed: 1,
            ..CampaignConfig::default()
        };
        let mut params = AdaptiveParams::for_budget(config.runs);
        params.round_runs = 16;
        params.patience = 100; // never stop on entropy
        let mut driver = AdaptiveDriver::new(&w, &config, params).expect("driver");
        let (_, _, first) = driver.next_round(&[]).expect("seed round");
        assert_eq!(first.len(), 16);
        let profile = profile_sites(&w).expect("profile");
        let labeled: Vec<(usize, InjectionRecord)> = (0..16)
            .map(|i| {
                let outcome = if i % 3 == 0 {
                    Outcome::Soc
                } else {
                    Outcome::Masked
                };
                (i, fake_record(profile[i % profile.len()].0, outcome))
            })
            .collect();
        let (_, _, second) = driver.next_round(&labeled).expect("truncated round");
        assert_eq!(second.len(), 4, "budget truncates the round");
        assert!(driver.next_round(&labeled).is_none(), "budget exhausted");
        assert!(!driver.stopped_early());
    }

    #[test]
    fn adaptive_campaign_runs_and_reports_rounds() {
        let w = workload();
        let config = CampaignConfig {
            runs: 48,
            seed: 7,
            threads: 2,
            ..CampaignConfig::default()
        };
        let mut params = AdaptiveParams::for_budget(config.runs);
        params.round_runs = 16;
        let out = run_campaign_adaptive(&w, &config, &CampaignOptions::default(), &params)
            .expect("adaptive campaign");
        let total: usize = out.rounds.iter().map(|r| r.drawn).sum();
        assert_eq!(
            out.result.records.len() + out.result.harness_failures.len(),
            total
        );
        assert!(total <= 48, "budget respected");
        assert_eq!(out.rounds[0].sampling, RoundSampling::SeedUniform);
        assert!(!out.rounds.is_empty());
    }

    #[test]
    fn non_value_models_are_rejected() {
        let w = workload();
        let config = CampaignConfig {
            runs: 32,
            seed: 1,
            fault_model: FaultModel::BranchFlip,
            ..CampaignConfig::default()
        };
        match AdaptiveDriver::new(&w, &config, AdaptiveParams::for_budget(32)) {
            Err(CampaignError::UnsupportedSampling { model }) => {
                assert_eq!(model, FaultModel::BranchFlip);
            }
            other => panic!("expected UnsupportedSampling, got {other:?}"),
        }
    }

    #[test]
    fn binary_entropy_is_sane() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(binary_entropy(f64::NAN), 0.0);
        assert_eq!(binary_entropy(-0.5), 0.0);
    }
}

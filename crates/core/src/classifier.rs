//! Step 3 of the workflow: classifier training and model selection.

use ipas_analysis::features::FeatureVector;
use ipas_store::TrainedModel;
use ipas_svm::{
    grid_search, ClassAccuracy, Classifier, ConfigScore, Dataset, GridOptions, Scaler, Svm,
    SvmParams,
};

/// A fully trained IPAS classifier: the standardizer fit on the training
/// set plus the SVM trained with one of the top-ranked (C, γ)
/// configurations on the *entire* training set.
#[derive(Debug, Clone)]
pub struct TrainedClassifier {
    scaler: Scaler,
    svm: Svm,
    score: ConfigScore,
}

impl TrainedClassifier {
    /// Cross-validation score of the configuration this model used.
    pub fn score(&self) -> &ConfigScore {
        &self.score
    }

    /// The underlying SVM.
    pub fn svm(&self) -> &Svm {
        &self.svm
    }

    /// Predicts from raw (unstandardized) features.
    pub fn predict_features(&self, fv: &FeatureVector) -> bool {
        let row = self.scaler.transform_row(fv.as_slice());
        self.svm.predict(&row)
    }

    /// Predicts from a raw feature slice.
    pub fn predict_raw(&self, features: &[f64]) -> bool {
        let row = self.scaler.transform_row(features);
        self.svm.predict(&row)
    }

    /// Signed SVM decision value for a raw (unstandardized) feature
    /// slice. Zero is the decision boundary; |value| is the margin that
    /// adaptive campaigns use to rank per-instruction uncertainty.
    pub fn decision_raw(&self, features: &[f64]) -> f64 {
        let row = self.scaler.transform_row(features);
        self.svm.decision_function(&row)
    }

    /// Exports this classifier as a store artifact. All floats are
    /// carried as bit patterns, so `from_export(export(m))` yields a
    /// model with bit-identical decision function.
    pub fn export(&self) -> TrainedModel {
        TrainedModel {
            c: self.score.params.c,
            gamma: self.score.params.gamma,
            pos_weight: self.score.params.pos_weight,
            tol: self.score.params.tol,
            max_passes: self.score.params.max_passes,
            f_score: self.score.f_score,
            acc1: self.score.accuracy.acc1,
            acc2: self.score.accuracy.acc2,
            scaler_mean: self.scaler.mean().to_vec(),
            scaler_std: self.scaler.std().to_vec(),
            support: self.svm.support_vectors().to_vec(),
            coef: self.svm.coefficients().to_vec(),
            bias: self.svm.bias(),
        }
    }

    /// Reconstructs a classifier from an exported artifact.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency when the artifact's
    /// parts do not form a valid model (mismatched lengths, ragged
    /// support vectors, non-finite `γ`, non-positive scaler
    /// deviations).
    pub fn from_export(model: &TrainedModel) -> Result<Self, String> {
        let scaler = Scaler::from_parts(model.scaler_mean.clone(), model.scaler_std.clone())?;
        let svm = Svm::from_parts(
            model.support.clone(),
            model.coef.clone(),
            model.bias,
            model.gamma,
        )?;
        if let Some(sv) = svm.support_vectors().first() {
            if sv.len() != scaler.mean().len() {
                return Err(format!(
                    "support vector dimension {} does not match scaler dimension {}",
                    sv.len(),
                    scaler.mean().len()
                ));
            }
        }
        Ok(TrainedClassifier {
            scaler,
            svm,
            score: ConfigScore {
                params: SvmParams {
                    c: model.c,
                    gamma: model.gamma,
                    pos_weight: model.pos_weight,
                    tol: model.tol,
                    max_passes: model.max_passes,
                },
                accuracy: ClassAccuracy {
                    acc1: model.acc1,
                    acc2: model.acc2,
                },
                f_score: model.f_score,
            },
        })
    }
}

/// Runs the (C, γ) grid search on `data` and trains one classifier per
/// top-`n` configuration (each on the full training set, with balanced
/// class weights as in the grid search). Returns them best-first.
///
/// This is exactly §6.1's protocol: the paper keeps the top-5
/// configurations by F-score rather than only the single best.
pub fn train_top_configs(data: &Dataset, grid: &GridOptions, n: usize) -> Vec<TrainedClassifier> {
    let scores = grid_search(data, grid);
    let scaler = Scaler::fit(data);
    let scaled = scaler.transform(data);
    scores
        .into_iter()
        .take(n)
        .map(|score| {
            let mut params = score.params;
            if grid.balanced {
                params = params.balanced_for(&scaled);
            }
            TrainedClassifier {
                scaler: scaler.clone(),
                svm: Svm::train(&scaled, &params),
                score,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_dataset() -> Dataset {
        // Positives cluster at high feature values.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            x.push(vec![(i % 9) as f64, (i % 7) as f64, 0.0]);
            y.push(false);
        }
        for i in 0..12 {
            x.push(vec![20.0 + (i % 3) as f64, 20.0 + (i % 4) as f64, 1.0]);
            y.push(true);
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn trains_requested_number_of_configs() {
        let data = clustered_dataset();
        let models = train_top_configs(&data, &GridOptions::quick(), 5);
        assert_eq!(models.len(), 5);
        // Best-first ordering.
        for w in models.windows(2) {
            assert!(w[0].score().f_score >= w[1].score().f_score);
        }
    }

    #[test]
    fn best_model_separates_clusters() {
        let data = clustered_dataset();
        let models = train_top_configs(&data, &GridOptions::quick(), 1);
        let m = &models[0];
        assert!(m.score().f_score > 0.9, "{:?}", m.score());
        assert!(m.predict_raw(&[21.0, 21.0, 1.0]));
        assert!(!m.predict_raw(&[3.0, 3.0, 0.0]));
    }

    #[test]
    fn n_larger_than_grid_is_clamped() {
        let data = clustered_dataset();
        let grid = GridOptions {
            num_c: 2,
            num_gamma: 2,
            folds: 2,
            ..GridOptions::default()
        };
        let models = train_top_configs(&data, &grid, 100);
        assert_eq!(models.len(), 4);
    }
}

//! Step 3 of the workflow: classifier training and model selection.

use ipas_analysis::features::FeatureVector;
use ipas_svm::{grid_search, Classifier, ConfigScore, Dataset, GridOptions, Scaler, Svm};

/// A fully trained IPAS classifier: the standardizer fit on the training
/// set plus the SVM trained with one of the top-ranked (C, γ)
/// configurations on the *entire* training set.
#[derive(Debug, Clone)]
pub struct TrainedClassifier {
    scaler: Scaler,
    svm: Svm,
    score: ConfigScore,
}

impl TrainedClassifier {
    /// Cross-validation score of the configuration this model used.
    pub fn score(&self) -> &ConfigScore {
        &self.score
    }

    /// The underlying SVM.
    pub fn svm(&self) -> &Svm {
        &self.svm
    }

    /// Predicts from raw (unstandardized) features.
    pub fn predict_features(&self, fv: &FeatureVector) -> bool {
        let row = self.scaler.transform_row(fv.as_slice());
        self.svm.predict(&row)
    }

    /// Predicts from a raw feature slice.
    pub fn predict_raw(&self, features: &[f64]) -> bool {
        let row = self.scaler.transform_row(features);
        self.svm.predict(&row)
    }
}

/// Runs the (C, γ) grid search on `data` and trains one classifier per
/// top-`n` configuration (each on the full training set, with balanced
/// class weights as in the grid search). Returns them best-first.
///
/// This is exactly §6.1's protocol: the paper keeps the top-5
/// configurations by F-score rather than only the single best.
pub fn train_top_configs(data: &Dataset, grid: &GridOptions, n: usize) -> Vec<TrainedClassifier> {
    let scores = grid_search(data, grid);
    let scaler = Scaler::fit(data);
    let scaled = scaler.transform(data);
    scores
        .into_iter()
        .take(n)
        .map(|score| {
            let mut params = score.params;
            if grid.balanced {
                params = params.balanced_for(&scaled);
            }
            TrainedClassifier {
                scaler: scaler.clone(),
                svm: Svm::train(&scaled, &params),
                score,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_dataset() -> Dataset {
        // Positives cluster at high feature values.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            x.push(vec![(i % 9) as f64, (i % 7) as f64, 0.0]);
            y.push(false);
        }
        for i in 0..12 {
            x.push(vec![20.0 + (i % 3) as f64, 20.0 + (i % 4) as f64, 1.0]);
            y.push(true);
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn trains_requested_number_of_configs() {
        let data = clustered_dataset();
        let models = train_top_configs(&data, &GridOptions::quick(), 5);
        assert_eq!(models.len(), 5);
        // Best-first ordering.
        for w in models.windows(2) {
            assert!(w[0].score().f_score >= w[1].score().f_score);
        }
    }

    #[test]
    fn best_model_separates_clusters() {
        let data = clustered_dataset();
        let models = train_top_configs(&data, &GridOptions::quick(), 1);
        let m = &models[0];
        assert!(m.score().f_score > 0.9, "{:?}", m.score());
        assert!(m.predict_raw(&[21.0, 21.0, 1.0]));
        assert!(!m.predict_raw(&[3.0, 3.0, 0.0]));
    }

    #[test]
    fn n_larger_than_grid_is_clamped() {
        let data = clustered_dataset();
        let grid = GridOptions {
            num_c: 2,
            num_gamma: 2,
            folds: 2,
            ..GridOptions::default()
        };
        let models = train_top_configs(&data, &grid, 100);
        assert_eq!(models.len(), 4);
    }
}

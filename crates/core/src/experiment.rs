//! The §6 evaluation protocol, end to end.
//!
//! [`run_experiment`] reproduces, for one workload, everything Figures
//! 5–7 and Tables 4 and 6 need: it runs the training campaign on the
//! unprotected code, trains the top-N IPAS and baseline (Shoestring-like)
//! classifiers, builds every protected variant, and evaluates each with
//! a fresh fault-injection campaign.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ipas_faultsim::{
    run_campaign_with, CampaignConfig, CampaignError, CampaignOptions, CampaignResult, Engine,
    FaultModel, JournalError, Outcome, Workload, WorkloadError,
};
use ipas_store::{Key, ProtectedModule, Store, StoreError, TrainingSet};
use ipas_svm::GridOptions;

use crate::classifier::train_top_configs;
use crate::duplication::DuplicationStats;
use crate::memo;
use crate::policy::ProtectionPolicy;
use crate::selection::ideal_point_index;
use crate::training::LabelKind;

/// Options controlling one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Injection runs for the training campaign (paper: 2,500).
    pub training_runs: usize,
    /// Injection runs per evaluated configuration (paper: 1,024).
    pub eval_runs: usize,
    /// Number of top configurations to keep (paper: 5).
    pub top_n: usize,
    /// The (C, γ) grid.
    pub grid: GridOptions,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for campaigns (0 = all cores).
    pub threads: usize,
    /// Directory for campaign checkpoint journals. When set, every
    /// campaign (training and per-variant evaluation) journals its
    /// records there and a re-invocation of the experiment resumes the
    /// interrupted campaign instead of restarting it.
    pub journal_dir: Option<PathBuf>,
    /// Artifact-store directory (`IPAS_STORE_DIR`). When set, the
    /// training campaign, classifier training, and duplication stages
    /// are memoized by input fingerprint: a re-run with identical
    /// inputs resolves them from the store instead of recomputing.
    pub store_dir: Option<PathBuf>,
    /// Interpreter engine for all campaigns (training and evaluation).
    /// Engines are bit-identical, so this never changes results or
    /// store fingerprints — only wall-clock time.
    pub engine: Engine,
    /// Fault model for all campaigns (training and evaluation). Unlike
    /// the engine this *does* change results, so it is part of every
    /// campaign fingerprint and journal identity.
    pub fault_model: FaultModel,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            training_runs: 600,
            eval_runs: 256,
            top_n: 5,
            grid: GridOptions::default(),
            seed: 2016,
            threads: 0,
            journal_dir: None,
            store_dir: None,
            engine: Engine::default(),
            fault_model: FaultModel::default(),
        }
    }
}

impl ExperimentOptions {
    /// A fast preset for tests: small campaigns and a reduced grid.
    pub fn quick() -> Self {
        ExperimentOptions {
            training_runs: 200,
            eval_runs: 96,
            top_n: 2,
            grid: GridOptions::quick(),
            ..ExperimentOptions::default()
        }
    }
}

/// One evaluated protection variant.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Display name (e.g. `IPAS#1`).
    pub name: String,
    /// Duplication statistics of the protecting pass.
    pub stats: DuplicationStats,
    /// Dynamic-instruction slowdown vs the unprotected clean run.
    pub slowdown: f64,
    /// The evaluation campaign.
    pub campaign: CampaignResult,
    /// SOC percentage of the campaign.
    pub soc_pct: f64,
    /// SOC reduction relative to the unprotected variant, in percent.
    pub soc_reduction_pct: f64,
}

impl VariantResult {
    /// Fraction of runs with the given outcome.
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        self.campaign.fraction(outcome)
    }
}

/// The full result of one workload's experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Workload name.
    pub workload: String,
    /// The unprotected variant.
    pub unprotected: VariantResult,
    /// SWIFT-style full duplication.
    pub full: VariantResult,
    /// Top-N IPAS configurations, best CV score first.
    pub ipas: Vec<VariantResult>,
    /// Top-N baseline (Shoestring-like) configurations.
    pub baseline: Vec<VariantResult>,
    /// Fraction of SOC-labeled samples in the training set (the paper
    /// reports 3–10%).
    pub training_soc_fraction: f64,
    /// Fraction of symptom-labeled samples in the training set.
    pub training_symptom_fraction: f64,
    /// Wall-clock time of classifier training including the grid search
    /// (Table 6 "training time").
    pub training_time: Duration,
    /// Wall-clock time of classification + duplication for the best
    /// IPAS configuration (Table 6 "duplication time").
    pub duplication_time: Duration,
}

impl ExperimentResult {
    /// Index of the ideal-point best IPAS configuration (§6.3).
    pub fn best_ipas(&self) -> Option<usize> {
        ideal_point_index(
            &self
                .ipas
                .iter()
                .map(|v| (v.slowdown, v.soc_reduction_pct))
                .collect::<Vec<_>>(),
        )
    }

    /// Index of the ideal-point best baseline configuration.
    pub fn best_baseline(&self) -> Option<usize> {
        ideal_point_index(
            &self
                .baseline
                .iter()
                .map(|v| (v.slowdown, v.soc_reduction_pct))
                .collect::<Vec<_>>(),
        )
    }
}

/// Errors from [`run_experiment`].
#[derive(Debug)]
pub enum ExperimentError {
    /// The training campaign produced a single-class dataset (no SOC or
    /// no symptoms observed) — enlarge `training_runs`.
    DegenerateTraining(&'static str),
    /// A protected module failed its clean run (protection-pass bug).
    Workload(WorkloadError),
    /// A fault-injection campaign failed (journal or run-setup error).
    Campaign(CampaignError),
    /// The artifact store failed (I/O underneath `store_dir`).
    Store(StoreError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::DegenerateTraining(which) => {
                write!(f, "training campaign produced no {which} samples")
            }
            ExperimentError::Workload(e) => write!(f, "workload preparation failed: {e}"),
            ExperimentError::Campaign(e) => write!(f, "campaign failed: {e}"),
            ExperimentError::Store(e) => write!(f, "artifact store failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Workload(e) => Some(e),
            ExperimentError::Campaign(e) => Some(e),
            ExperimentError::Store(e) => Some(e),
            ExperimentError::DegenerateTraining(_) => None,
        }
    }
}

impl From<StoreError> for ExperimentError {
    fn from(e: StoreError) -> Self {
        ExperimentError::Store(e)
    }
}

impl From<WorkloadError> for ExperimentError {
    fn from(e: WorkloadError) -> Self {
        ExperimentError::Workload(e)
    }
}

impl From<CampaignError> for ExperimentError {
    fn from(e: CampaignError) -> Self {
        ExperimentError::Campaign(e)
    }
}

/// The journal file used for one campaign of an experiment: a slug of
/// the workload and campaign label plus the seed, so concurrent
/// experiments in one directory never collide and a changed seed never
/// resumes a stale journal.
pub fn campaign_journal_path(dir: &Path, workload: &str, label: &str, seed: u64) -> PathBuf {
    fn slug(s: &str) -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect()
    }
    dir.join(format!(
        "{}-{}-seed{seed}.jsonl",
        slug(workload),
        slug(label)
    ))
}

/// Campaign options for one experiment campaign, journaling under
/// `journal_dir` when it is set.
fn campaign_options(
    journal_dir: Option<&Path>,
    workload: &str,
    label: &str,
    seed: u64,
) -> CampaignOptions {
    CampaignOptions {
        journal: journal_dir.map(|dir| campaign_journal_path(dir, workload, label, seed)),
        ..CampaignOptions::default()
    }
}

/// Applies `policy` to `module`, memoized through the store when one is
/// configured: a fingerprint hit returns the previously protected
/// module (byte-identical IR text) without re-running classification or
/// duplication.
pub fn memoized_protect(
    store: Option<&Store>,
    module: &ipas_ir::Module,
    policy: &ProtectionPolicy,
    model_key: Option<&Key>,
) -> Result<(ipas_ir::Module, DuplicationStats, ipas_store::CacheOutcome), ExperimentError> {
    let Some(store) = store else {
        let (m, stats) = policy.apply(module);
        return Ok((m, stats, ipas_store::CacheOutcome::Miss));
    };
    let fp = memo::protect_fingerprint(module, policy.label(), model_key, &policy.pipeline_text());
    let (artifact, outcome) = store
        .memoize(&Key::of(&fp), || {
            let (m, stats) = policy.apply(module);
            Ok::<_, ExperimentError>(ProtectedModule::from_module(
                &m,
                stats.considered as u64,
                stats.duplicated as u64,
                stats.checks as u64,
            ))
        })
        .map_err(|e| memo::flatten_memo(e, ExperimentError::Store))?;
    let m = artifact.module().map_err(|e| {
        ExperimentError::Store(StoreError::Corrupt {
            source: format!("protected-module {}", Key::of(&fp)),
            reason: format!("stored IR no longer parses: {e}"),
        })
    })?;
    let stats = DuplicationStats {
        considered: artifact.considered as usize,
        duplicated: artifact.duplicated as usize,
        checks: artifact.checks as usize,
    };
    Ok((m, stats, outcome))
}

/// Evaluates one protected module against the reference workload.
///
/// Used both by [`run_experiment`] and by the input-variation experiment
/// (Figure 9), which re-evaluates an already-protected module on new
/// inputs.
///
/// # Errors
///
/// Fails when the protected module's clean run fails or the evaluation
/// campaign cannot complete (e.g. its checkpoint journal is broken).
pub fn evaluate_variant(
    reference: &Workload,
    module: ipas_ir::Module,
    name: &str,
    stats: DuplicationStats,
    unprotected_soc_pct: Option<f64>,
    eval: &CampaignConfig,
    journal_dir: Option<&Path>,
) -> Result<VariantResult, ExperimentError> {
    let wl = reference.with_module(name, module)?;
    let options = campaign_options(journal_dir, &reference.name, name, eval.seed);
    let campaign = run_campaign_with(&wl, eval, &options)?;
    let slowdown = wl.nominal_insts as f64 / reference.nominal_insts as f64;
    let soc_pct = campaign.fraction(Outcome::Soc) * 100.0;
    let soc_reduction_pct = match unprotected_soc_pct {
        Some(u) if u > 0.0 => (u - soc_pct) / u * 100.0,
        _ => 0.0,
    };
    Ok(VariantResult {
        name: name.to_string(),
        stats,
        slowdown,
        campaign,
        soc_pct,
        soc_reduction_pct,
    })
}

/// Runs the complete §6 protocol on one workload.
///
/// # Errors
///
/// See [`ExperimentError`].
pub fn run_experiment(
    workload: &Workload,
    opts: &ExperimentOptions,
) -> Result<ExperimentResult, ExperimentError> {
    if let Some(dir) = &opts.journal_dir {
        std::fs::create_dir_all(dir).map_err(|error| {
            CampaignError::Journal(JournalError::Io {
                path: dir.clone(),
                error,
            })
        })?;
    }
    let journal_dir = opts.journal_dir.as_deref();
    let store = opts
        .store_dir
        .as_ref()
        .map(Store::open)
        .transpose()
        .map_err(ExperimentError::Store)?;

    // --- Step 2: training campaign on the unprotected code. -------------
    let train_cfg = CampaignConfig {
        runs: opts.training_runs,
        seed: opts.seed,
        threads: opts.threads,
        engine: opts.engine,
        fault_model: opts.fault_model,
    };
    let campaign_fp = memo::campaign_fingerprint(&workload.module, &train_cfg);
    let run_training = || -> Result<TrainingSet, ExperimentError> {
        let training = run_campaign_with(
            workload,
            &train_cfg,
            &campaign_options(journal_dir, &workload.name, "training", opts.seed),
        )?;
        Ok(memo::training_set_artifact(workload, &training))
    };
    let training_set = match &store {
        Some(store) => {
            store
                .memoize(&Key::of(&campaign_fp), run_training)
                .map_err(|e| memo::flatten_memo(e, ExperimentError::Store))?
                .0
        }
        None => run_training()?,
    };
    let soc_data = memo::dataset_from_artifact(&training_set, LabelKind::SocGenerating);
    let sym_data = memo::dataset_from_artifact(&training_set, LabelKind::SymptomGenerating);
    if soc_data.num_positive() == 0 {
        return Err(ExperimentError::DegenerateTraining("SOC"));
    }
    if soc_data.num_positive() == soc_data.len() {
        return Err(ExperimentError::DegenerateTraining("non-SOC"));
    }
    if sym_data.num_positive() == 0 {
        return Err(ExperimentError::DegenerateTraining("symptom"));
    }
    if sym_data.num_positive() == sym_data.len() {
        return Err(ExperimentError::DegenerateTraining("non-symptom"));
    }

    // --- Step 3: train top-N classifiers for both label kinds. -----------
    let ipas_fp = memo::training_fingerprint(
        &campaign_fp,
        LabelKind::SocGenerating,
        &opts.grid,
        opts.top_n,
    );
    let baseline_fp = memo::training_fingerprint(
        &campaign_fp,
        LabelKind::SymptomGenerating,
        &opts.grid,
        opts.top_n,
    );
    let train_start = Instant::now();
    let (ipas_models, _) = memo::memoized_models(store.as_ref(), &ipas_fp, opts.top_n, || {
        train_top_configs(&soc_data, &opts.grid, opts.top_n)
    })?;
    let training_time = train_start.elapsed();
    let (baseline_models, _) =
        memo::memoized_models(store.as_ref(), &baseline_fp, opts.top_n, || {
            train_top_configs(&sym_data, &opts.grid, opts.top_n)
        })?;

    // --- Step 4 + evaluation campaigns. -----------------------------------
    let eval = CampaignConfig {
        runs: opts.eval_runs,
        seed: opts.seed ^ 0x00C0_FFEE,
        threads: opts.threads,
        engine: opts.engine,
        fault_model: opts.fault_model,
    };

    let (unprot_module, unprot_stats) = ProtectionPolicy::Unprotected.apply(&workload.module);
    let unprotected = evaluate_variant(
        workload,
        unprot_module,
        "unprotected",
        unprot_stats,
        None,
        &eval,
        journal_dir,
    )?;
    let unprot_soc = unprotected.soc_pct;

    let (full_module, full_stats) = ProtectionPolicy::FullDuplication.apply(&workload.module);
    let full = evaluate_variant(
        workload,
        full_module,
        "full",
        full_stats,
        Some(unprot_soc),
        &eval,
        journal_dir,
    )?;

    let mut ipas = Vec::with_capacity(ipas_models.len());
    let mut duplication_time = Duration::ZERO;
    for (i, model) in ipas_models.into_iter().enumerate() {
        let policy = ProtectionPolicy::Ipas(model);
        let model_key = Key::ranked(&ipas_fp, i);
        let dup_start = Instant::now();
        let (module, stats, _) =
            memoized_protect(store.as_ref(), &workload.module, &policy, Some(&model_key))?;
        if i == 0 {
            duplication_time = dup_start.elapsed();
        }
        ipas.push(evaluate_variant(
            workload,
            module,
            &format!("IPAS#{}", i + 1),
            stats,
            Some(unprot_soc),
            &eval,
            journal_dir,
        )?);
    }

    let mut baseline = Vec::with_capacity(baseline_models.len());
    for (i, model) in baseline_models.into_iter().enumerate() {
        let policy = ProtectionPolicy::Baseline(model);
        let model_key = Key::ranked(&baseline_fp, i);
        let (module, stats, _) =
            memoized_protect(store.as_ref(), &workload.module, &policy, Some(&model_key))?;
        baseline.push(evaluate_variant(
            workload,
            module,
            &format!("Baseline#{}", i + 1),
            stats,
            Some(unprot_soc),
            &eval,
            journal_dir,
        )?);
    }

    Ok(ExperimentResult {
        workload: workload.name.clone(),
        unprotected,
        full,
        ipas,
        baseline,
        training_soc_fraction: soc_data.positive_fraction(),
        training_symptom_fraction: sym_data.positive_fraction(),
        training_time,
        duplication_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_faultsim::GoldenToleranceVerifier;

    fn kernel_workload() -> Workload {
        // A mixed integer/float kernel with memory traffic: produces all
        // four outcome classes under injection.
        let module = ipas_lang::compile(
            r#"
fn main() -> int {
    let n: int = 24;
    let a: [float] = new_float(n);
    for (let i: int = 0; i < n; i = i + 1) {
        a[i] = itof(i) * 0.25 + 1.0;
    }
    let s: float = 0.0;
    for (let i: int = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    output_f(s);
    free_arr(a);
    return 0;
}
"#,
        )
        .unwrap();
        Workload::serial("kernel", module, 1e-6).unwrap()
    }

    #[test]
    fn full_protocol_runs_and_reduces_soc() {
        let w = kernel_workload();
        let opts = ExperimentOptions::quick();
        let result = run_experiment(&w, &opts).expect("experiment succeeds");

        assert_eq!(result.ipas.len(), opts.top_n);
        assert_eq!(result.baseline.len(), opts.top_n);
        assert!(result.training_soc_fraction > 0.0);
        assert!(result.unprotected.soc_pct > 0.0);

        // Full duplication must cut SOC substantially.
        assert!(
            result.full.soc_pct < result.unprotected.soc_pct,
            "full: {} vs unprot: {}",
            result.full.soc_pct,
            result.unprotected.soc_pct
        );
        // Full duplication costs the most dynamic instructions.
        assert!(result.full.slowdown > 1.3);
        for v in result.ipas.iter().chain(&result.baseline) {
            assert!(
                v.slowdown <= result.full.slowdown + 1e-9,
                "{}: {} > full {}",
                v.name,
                v.slowdown,
                result.full.slowdown
            );
        }
        // Selection works.
        assert!(result.best_ipas().is_some());
        assert!(result.best_baseline().is_some());
    }

    #[test]
    fn degenerate_training_is_reported() {
        // A kernel whose faults never produce SOC within a tiny campaign:
        // everything funnels into one output comparison that is checked
        // exactly; but with an enormous tolerance nothing is ever SOC.
        let module = ipas_lang::compile(
            "fn main() -> int { let x: int = mpi_rank(); output_i(x * 0); return 0; }",
        )
        .unwrap();
        let w = Workload::with_custom_verifier("tolerant", module, "main", vec![], |_| {
            struct AcceptAll;
            impl ipas_faultsim::OutputVerifier for AcceptAll {
                fn verify(&self, _: &ipas_interp::RunOutput) -> bool {
                    true
                }
            }
            Box::new(AcceptAll)
        })
        .unwrap();
        let err = run_experiment(&w, &ExperimentOptions::quick()).unwrap_err();
        assert!(
            matches!(err, ExperimentError::DegenerateTraining(_)),
            "{err}"
        );
    }

    #[test]
    fn evaluate_variant_computes_reduction() {
        let w = kernel_workload();
        let (module, stats) = ProtectionPolicy::FullDuplication.apply(&w.module);
        let v = evaluate_variant(
            &w,
            module,
            "full",
            stats,
            Some(10.0),
            &CampaignConfig {
                runs: 32,
                seed: 1,
                threads: 2,
                ..CampaignConfig::default()
            },
            None,
        )
        .unwrap();
        assert!(v.slowdown > 1.0);
        assert!(v.soc_reduction_pct <= 100.0);
    }

    // Keep a reference to the verifier tolerance marker so the import is
    // exercised in this module too.
    #[test]
    fn exact_marker_is_tight() {
        let exact = GoldenToleranceVerifier::EXACT;
        assert!(
            exact < 1e-6,
            "EXACT should be stricter than workload tolerances"
        );
    }
}

//! Ideal-point configuration selection (§6.3).
//!
//! The paper picks, among the top-5 configurations, the one whose
//! (slowdown, SOC-reduction%) point lies closest to the ideal point
//! (1.0, 100) in Euclidean distance.

/// Distance from a configuration's `(slowdown, soc_reduction_pct)` to
/// the ideal point `(1.0, 100.0)`.
pub fn ideal_point_distance(slowdown: f64, soc_reduction_pct: f64) -> f64 {
    let ds = slowdown - 1.0;
    let dr = soc_reduction_pct - 100.0;
    (ds * ds + dr * dr).sqrt()
}

/// Index of the configuration closest to the ideal point, given
/// `(slowdown, soc_reduction_pct)` pairs. Returns `None` for an empty
/// slice.
pub fn ideal_point_index(points: &[(f64, f64)]) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            ideal_point_distance(a.0, a.1)
                .partial_cmp(&ideal_point_distance(b.0, b.1))
                .expect("distances are finite")
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_config_has_zero_distance() {
        assert_eq!(ideal_point_distance(1.0, 100.0), 0.0);
    }

    #[test]
    fn reduction_dominates_slowdown() {
        // The axes are on very different scales (paper's criterion as
        // written): 10% reduction loss outweighs 1x slowdown gain.
        let near_ideal_reduction = ideal_point_distance(2.0, 100.0);
        let lower_reduction = ideal_point_distance(1.0, 90.0);
        assert!(near_ideal_reduction < lower_reduction);
    }

    #[test]
    fn picks_closest() {
        let points = vec![(1.5, 70.0), (1.1, 85.0), (2.0, 95.0), (1.04, 60.0)];
        assert_eq!(ideal_point_index(&points), Some(2));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(ideal_point_index(&[]), None);
    }

    #[test]
    fn ties_resolve_to_first() {
        let points = vec![(1.0, 90.0), (1.0, 90.0)];
        assert_eq!(ideal_point_index(&points), Some(0));
    }
}

//! Step 2 of the workflow: turning fault-injection records into a
//! labeled training set.

use ipas_analysis::features::FeatureExtractor;
use ipas_faultsim::{InjectionRecord, Outcome, Workload};
use ipas_svm::Dataset;

/// Which label the classifier learns.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LabelKind {
    /// Positive = the fault produced SOC (the IPAS classifier).
    SocGenerating,
    /// Positive = the fault produced an observable symptom (used to
    /// emulate Shoestring: the baseline then protects instructions
    /// predicted *non*-symptom-generating).
    SymptomGenerating,
}

impl LabelKind {
    /// Whether `outcome` is a positive example under this label kind.
    pub fn label(self, outcome: Outcome) -> bool {
        match self {
            LabelKind::SocGenerating => outcome == Outcome::Soc,
            LabelKind::SymptomGenerating => outcome == Outcome::Symptom,
        }
    }
}

/// Builds a labeled dataset from campaign records: one row per injection,
/// whose features are the 31 static features of the injected instruction
/// and whose label is derived from the observed outcome.
///
/// The same static instruction can appear multiple times (different
/// dynamic instances/bits) with conflicting labels; that is faithful to
/// the paper's protocol and is exactly the noise the soft-margin SVM
/// absorbs.
///
/// # Panics
///
/// Panics if `records` is empty.
pub fn build_training_set(
    workload: &Workload,
    records: &[InjectionRecord],
    label: LabelKind,
) -> Dataset {
    assert!(!records.is_empty(), "no training records");
    let extractor = FeatureExtractor::new(&workload.module);
    let mut x = Vec::with_capacity(records.len());
    let mut y = Vec::with_capacity(records.len());
    for rec in records {
        let (fid, iid) = rec.site;
        let fv = extractor.extract(fid, iid);
        x.push(fv.as_slice().to_vec());
        y.push(label.label(rec.outcome));
    }
    Dataset::new(x, y).expect("records produce a rectangular dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_faultsim::{run_campaign, CampaignConfig, GoldenToleranceVerifier};

    fn sample_workload() -> Workload {
        let module = ipas_lang::compile(
            r#"
fn main() -> int {
    let s: int = 0;
    let a: [int] = new_int(32);
    for (let i: int = 0; i < 32; i = i + 1) { a[i] = i * 3 - 1; }
    for (let i: int = 0; i < 32; i = i + 1) { s = s + a[i]; }
    output_i(s);
    free_arr(a);
    return 0;
}
"#,
        )
        .unwrap();
        Workload::serial("toy", module, GoldenToleranceVerifier::EXACT).unwrap()
    }

    #[test]
    fn builds_dataset_with_31_features() {
        let w = sample_workload();
        let r = run_campaign(
            &w,
            &CampaignConfig {
                runs: 64,
                seed: 2,
                threads: 4,
                ..CampaignConfig::default()
            },
        )
        .expect("campaign completes");
        let data = build_training_set(&w, &r.records, LabelKind::SocGenerating);
        assert_eq!(data.len(), 64);
        assert_eq!(data.dim(), ipas_analysis::NUM_FEATURES);
        // SOC labels must match the records.
        let expected = r
            .records
            .iter()
            .filter(|rec| rec.outcome == ipas_faultsim::Outcome::Soc)
            .count();
        assert_eq!(data.num_positive(), expected);
    }

    #[test]
    fn symptom_labels_differ_from_soc_labels() {
        let w = sample_workload();
        let r = run_campaign(
            &w,
            &CampaignConfig {
                runs: 96,
                seed: 3,
                threads: 4,
                ..CampaignConfig::default()
            },
        )
        .expect("campaign completes");
        let soc = build_training_set(&w, &r.records, LabelKind::SocGenerating);
        let sym = build_training_set(&w, &r.records, LabelKind::SymptomGenerating);
        let soc_count = r
            .records
            .iter()
            .filter(|x| x.outcome == Outcome::Soc)
            .count();
        let sym_count = r
            .records
            .iter()
            .filter(|x| x.outcome == Outcome::Symptom)
            .count();
        assert_eq!(soc.num_positive(), soc_count);
        assert_eq!(sym.num_positive(), sym_count);
    }

    #[test]
    #[should_panic(expected = "no training records")]
    fn empty_records_panic() {
        let w = sample_workload();
        build_training_set(&w, &[], LabelKind::SocGenerating);
    }
}

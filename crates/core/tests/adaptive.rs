//! Adaptive-campaign determinism suite: a given `(seed, config)` must
//! produce byte-identical records and journal bytes across engines and
//! thread counts, and a journal truncated mid-round must resume to the
//! same campaign as an uninterrupted run.

use std::path::PathBuf;

use ipas_core::{run_campaign_adaptive, AdaptiveParams, AdaptiveResult};
use ipas_faultsim::{CampaignConfig, CampaignOptions, Engine, GoldenToleranceVerifier, Workload};

const SRC: &str = "fn main() -> int {
    let s: int = 0;
    let a: [int] = new_int(40);
    for (let i: int = 0; i < 40; i = i + 1) { a[i] = i * 5 - 7; }
    for (let i: int = 0; i < 40; i = i + 1) { s = s + a[i] * a[i]; }
    output_i(s);
    free_arr(a);
    return 0;
}";

fn workload() -> Workload {
    let module = ipas_lang::compile(SRC).expect("compiles");
    Workload::serial("adaptive-det", module, GoldenToleranceVerifier::EXACT).expect("prepares")
}

fn params() -> AdaptiveParams {
    let mut p = AdaptiveParams::for_budget(60);
    p.round_runs = 12;
    p
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ipas-adaptive-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!(
        "{tag}-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn run(
    engine: Engine,
    threads: usize,
    journal: Option<PathBuf>,
) -> (AdaptiveResult, Option<String>) {
    let w = workload();
    let config = CampaignConfig {
        runs: 60,
        seed: 21,
        threads,
        engine,
        ..CampaignConfig::default()
    };
    let options = CampaignOptions {
        journal: journal.clone(),
        ..CampaignOptions::default()
    };
    let out =
        run_campaign_adaptive(&w, &config, &options, &params()).expect("adaptive campaign runs");
    let text = journal.map(|p| std::fs::read_to_string(p).expect("journal readable"));
    (out, text)
}

#[test]
fn records_and_journal_bytes_match_across_engines_and_threads() {
    let mut baseline: Option<(AdaptiveResult, String)> = None;
    for engine in [Engine::Reference, Engine::Compiled] {
        for threads in [1usize, 4] {
            let path = temp_journal(&format!("matrix-{}-{threads}", engine.label()));
            let (out, text) = run(engine, threads, Some(path.clone()));
            let text = text.unwrap();
            match &baseline {
                None => baseline = Some((out, text)),
                Some((base, base_text)) => {
                    assert_eq!(
                        out.result.records,
                        base.result.records,
                        "records diverge on {} x{threads}",
                        engine.label()
                    );
                    assert_eq!(
                        &text,
                        base_text,
                        "journal bytes diverge on {} x{threads}",
                        engine.label()
                    );
                    assert_eq!(out.rounds.len(), base.rounds.len());
                    assert_eq!(out.stopped_early, base.stopped_early);
                    for (a, b) in out.rounds.iter().zip(&base.rounds) {
                        assert_eq!(a.sampling, b.sampling);
                        assert_eq!(a.drawn, b.drawn);
                        assert!((a.entropy - b.entropy).abs() < 1e-12);
                    }
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn mid_round_truncation_resumes_to_the_uninterrupted_campaign() {
    // Uninterrupted reference run.
    let full_path = temp_journal("full");
    let (full, full_text) = run(Engine::Compiled, 2, Some(full_path.clone()));
    let full_text = full_text.unwrap();

    // Simulate a kill mid-round-1: keep the header, all of round 0, and
    // 5 of round 1's 12 records.
    let keep = 1 + 12 + 5;
    let truncated: String = full_text
        .lines()
        .take(keep)
        .map(|l| format!("{l}\n"))
        .collect();
    let resume_path = temp_journal("resume");
    std::fs::write(&resume_path, truncated).expect("write truncated journal");

    let (resumed, _) = run(Engine::Compiled, 2, Some(resume_path.clone()));
    assert_eq!(
        resumed.result.records, full.result.records,
        "resumed campaign diverges from the uninterrupted one"
    );
    assert_eq!(resumed.result.resumed, 17, "all journaled plans recovered");
    assert_eq!(resumed.rounds.len(), full.rounds.len());
    for (a, b) in resumed.rounds.iter().zip(&full.rounds) {
        assert_eq!(
            a.sampling, b.sampling,
            "round {} re-drew differently",
            a.round
        );
        assert!((a.entropy - b.entropy).abs() < 1e-12);
    }
    assert_eq!(
        resumed.rounds[0].resumed, 12,
        "round 0 came entirely from the journal"
    );
    assert_eq!(resumed.rounds[1].resumed, 5);
    assert_eq!(resumed.rounds[1].executed, 7);

    // The resumed journal holds the same record *set*; only the lines
    // of the torn round are reordered (resumed entries were already on
    // disk before the fresh ones were appended).
    let resumed_text = std::fs::read_to_string(&resume_path).expect("journal readable");
    let mut full_lines: Vec<&str> = full_text.lines().collect();
    let mut resumed_lines: Vec<&str> = resumed_text.lines().collect();
    full_lines.sort_unstable();
    resumed_lines.sort_unstable();
    assert_eq!(resumed_lines, full_lines, "journal contents diverge");

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&resume_path);
}

#[test]
fn journal_free_runs_match_journaled_runs() {
    let path = temp_journal("plain");
    let (journaled, _) = run(Engine::Reference, 1, Some(path.clone()));
    let (plain, _) = run(Engine::Reference, 4, None);
    assert_eq!(plain.result.records, journaled.result.records);
    let _ = std::fs::remove_file(&path);
}

//! Golden snapshot of the section partition for the five paper
//! workloads.
//!
//! Incremental reuse keys on section ids and content fingerprints, so
//! both must stay stable across refactors of the partitioner, the IR
//! printer, and the compilation pipeline: a drift silently invalidates
//! every stored baseline (all sections re-execute — correct but
//! expensive) and, worse, a drift that *collides* labels could splice
//! the wrong cached profile. Each line below freezes one section as
//! `workload section-id label fingerprint-prefix`. Regenerate only for
//! a deliberate partition or pipeline change, and say so in the commit:
//! run the test and copy the `actual` block from the failure message.

use ipas_analysis::sections::SectionPartition;
use ipas_core::section_fingerprint;
use ipas_workloads::Kind;

/// Captured from the current partitioner + pipeline; see module docs.
const EXPECTED: &[&str] = &[
    "CoMD 0 @lj_forces fc9f30230320ea0e",
    "CoMD 1 @lj_forces/loop0 cdcce4844ad162ea",
    "CoMD 2 @lj_forces/loop1 d8201d93b61ae472",
    "CoMD 3 @main 2247707f2af27dce",
    "CoMD 4 @main/loop0 f90e4291a0fc5870",
    "CoMD 5 @main/loop1 1d26eba2a224c6cd",
    "HPCCG 0 @apply_stencil 2e0f6f118ca69460",
    "HPCCG 1 @apply_stencil/loop0 eaa81c068d9ebc9b",
    "HPCCG 2 @dot_part 8730a77985ba5217",
    "HPCCG 3 @dot_part/loop0 88a9c019e2dcc0c4",
    "HPCCG 4 @main e54bdb1e8779673d",
    "HPCCG 5 @main/loop0 4683847f993a5dc6",
    "HPCCG 6 @main/loop1 7dc1e440e3e89830",
    "HPCCG 7 @main/loop2 8ce697e64403b108",
    "HPCCG 8 @main/loop3 784dfcc7898a1374",
    "AMG 0 @smooth 6e4b5c41cca01491",
    "AMG 1 @smooth/loop0 ab033ff09d112751",
    "AMG 2 @residual 7508a3cdf57418eb",
    "AMG 3 @residual/loop0 1ca389b40290b3ab",
    "AMG 4 @restrict_to bbcc8fcb006d37cf",
    "AMG 5 @restrict_to/loop0 5f886357d7cb2dd0",
    "AMG 6 @prolong_add 49bd0696eea40d39",
    "AMG 7 @prolong_add/loop0 877271617b2c583f",
    "AMG 8 @zero_fill e6c82537d9f91d0b",
    "AMG 9 @zero_fill/loop0 bc9accd46f7d89f4",
    "AMG 10 @norm_part a8b8f89510708b7e",
    "AMG 11 @norm_part/loop0 d002e575fd7f37ce",
    "AMG 12 @main 97f6f1032453e93c",
    "AMG 13 @main/loop0 ba85e317a2ed3677",
    "AMG 14 @main/loop1 25b796fb35dfecd7",
    "FFT 0 @bit_reverse 5d9c93942295f50b",
    "FFT 1 @bit_reverse/loop0 3d160d20d9765eb5",
    "FFT 2 @fft_row 4a92cd89fcd3ca2b",
    "FFT 3 @fft_row/loop0 2eddef23130e4ad4",
    "FFT 4 @fft_row/loop1 e1316be238ee01bf",
    "FFT 5 @transpose c439810c6b58868b",
    "FFT 6 @transpose/loop0 ec941fb4b194dcc0",
    "FFT 7 @fft2d 8dc9dc58b905db17",
    "FFT 8 @fft2d/loop0 f17cf40ac715e90d",
    "FFT 9 @fft2d/loop1 141b38a77944f0cb",
    "FFT 10 @main 8db24bb497464884",
    "FFT 11 @main/loop0 d4b25bf755a17b88",
    "FFT 12 @main/loop1 12998a3827b899dc",
    "FFT 13 @main/loop2 b12062a10c8d2a9b",
    "FFT 14 @main/loop3 a3ca5dc94a80ebee",
    "IS 0 @key_hash fbc507db8b8fdb25",
    "IS 1 @main a6d0bbf58d98ba67",
    "IS 2 @main/loop0 19cd565ca5550ac0",
    "IS 3 @main/loop1 764b82a939c430db",
    "IS 4 @main/loop2 a0ce5ae16bbd5819",
];

fn actual() -> Vec<String> {
    let mut lines = Vec::new();
    for kind in Kind::ALL {
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let partition = SectionPartition::compute(&workload.module);
        for id in 0..partition.len() {
            let section = &partition.sections()[id];
            let fp = section_fingerprint(&workload.module, &partition, id);
            lines.push(format!(
                "{} {id} {} {}",
                kind.name(),
                section.label,
                fp.short()
            ));
        }
    }
    lines
}

#[test]
fn paper_workload_partitions_match_the_frozen_snapshot() {
    let actual = actual();
    let expected: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        expected,
        actual,
        "section partition drifted from the frozen snapshot.\n\
         actual:\n{}",
        actual.join("\n")
    );
}

/// Labels are the human handle in reuse logs and journals — within one
/// workload they must be unique, or two sections become
/// indistinguishable in reports.
#[test]
fn section_labels_are_unique_per_workload() {
    for kind in Kind::ALL {
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let partition = SectionPartition::compute(&workload.module);
        let mut labels: Vec<&str> = partition
            .sections()
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len(), "{}: duplicate labels", kind.name());
    }
}

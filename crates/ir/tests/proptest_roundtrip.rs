//! Property-based tests for printer → parser round-trips.
//!
//! The artifact store content-addresses modules by their printed text
//! (`ipas-store` hashes `Module::to_text`), so the text form must be a
//! lossless, stable encoding: parsing a printed module and printing it
//! again must reproduce the same text, and every non-NaN float constant
//! must survive with its exact bit pattern. NaN payloads are the one
//! documented exception — the printer canonicalizes every NaN to `NaN`.

use proptest::prelude::*;

use ipas_ir::builder::FunctionBuilder;
use ipas_ir::parser::parse_module;
use ipas_ir::{BinOp, Constant, Inst, Module, Type, Value};

/// Builds a module exercising the float-heavy printer paths: a chain of
/// float arithmetic over the given constants, a comparison, and a
/// select, split across two functions.
fn float_module(bits: &[u64]) -> Module {
    let mut module = Module::new("prop");

    let mut b = FunctionBuilder::new("acc", &[Type::F64], Type::F64);
    let mut cur = Value::param(0);
    for (i, &pattern) in bits.iter().enumerate() {
        let c = Value::Const(Constant::F64Bits(pattern));
        let op = match i % 4 {
            0 => BinOp::Fadd,
            1 => BinOp::Fsub,
            2 => BinOp::Fmul,
            _ => BinOp::Fdiv,
        };
        cur = b.binary(op, Type::F64, cur, c);
    }
    b.ret(Some(cur));
    module.add_function(b.finish());

    let mut b = FunctionBuilder::new("pick", &[Type::F64], Type::F64);
    let first = Value::Const(Constant::F64Bits(bits.first().copied().unwrap_or(0)));
    let c = b.fcmp(ipas_ir::FcmpPred::Olt, Value::param(0), first);
    let s = b.select(Type::F64, c, Value::param(0), first);
    b.ret(Some(s));
    module.add_function(b.finish());

    module
}

/// Collects every float constant (as bits) in module order.
fn float_bits(module: &Module) -> Vec<u64> {
    let mut out = Vec::new();
    for (_, func) in module.functions() {
        for bb in func.block_ids() {
            for &id in func.block(bb).insts() {
                func.inst(id).for_each_operand(|v| {
                    if let Value::Const(Constant::F64Bits(bits)) = v {
                        out.push(bits);
                    }
                });
            }
        }
    }
    out
}

fn is_nan(bits: u64) -> bool {
    f64::from_bits(bits).is_nan()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print is a fixpoint for arbitrary f64 bit
    /// patterns (including NaNs and infinities), and non-NaN constants
    /// round-trip bit-exactly.
    #[test]
    fn printed_module_is_a_stable_lossless_encoding(
        bits in proptest::collection::vec(any::<u64>(), 1..12)
    ) {
        let module = float_module(&bits);
        let text = module.to_text();
        let reparsed = parse_module(&text).expect("printed module parses");
        let text2 = reparsed.to_text();
        prop_assert_eq!(&text, &text2, "printed text must be a fixpoint");

        let before = float_bits(&module);
        let after = float_bits(&reparsed);
        prop_assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(after.iter()) {
            if is_nan(*b) {
                prop_assert!(is_nan(*a), "NaN must stay NaN");
            } else {
                prop_assert_eq!(b, a, "non-NaN constants must be bit-exact");
            }
        }
    }

    /// Interesting boundary values round-trip bit-exactly (subnormals,
    /// signed zero, max/min finite, near-integer values that hit the
    /// `{v:.1}` fast path).
    #[test]
    fn boundary_floats_roundtrip(exp in 0u64..0x7ff, frac in any::<u64>(), sign in any::<bool>()) {
        // exp < 0x7ff keeps the exponent out of the NaN/inf range.
        let bits = ((sign as u64) << 63) | (exp << 52) | (frac & ((1 << 52) - 1));
        let module = float_module(&[bits, 0.0f64.to_bits(), (-0.0f64).to_bits(), 1e15f64.to_bits()]);
        let reparsed = parse_module(&module.to_text()).expect("parses");
        prop_assert_eq!(float_bits(&module), float_bits(&reparsed));
    }
}

/// Non-property check: a handful of directed patterns that have burned
/// float printers before.
#[test]
fn directed_float_patterns_roundtrip() {
    let patterns: &[u64] = &[
        0,                     // +0.0
        0x8000_0000_0000_0000, // -0.0
        1,                     // smallest subnormal
        0x000f_ffff_ffff_ffff, // largest subnormal
        0x7fef_ffff_ffff_ffff, // f64::MAX
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
        (std::f64::consts::PI / 3.0).to_bits(),
        1e15f64.to_bits(), // edge of the `{v:.1}` fast path
        (1e15f64 - 1.0).to_bits(),
        0.1f64.to_bits(),
    ];
    let module = float_module(patterns);
    let text = module.to_text();
    let reparsed = parse_module(&text).expect("parses");
    assert_eq!(text, reparsed.to_text());
    assert_eq!(float_bits(&module), float_bits(&reparsed));
}

/// A module with no floats at all still round-trips (guards the integer
/// and control-flow printer paths this suite otherwise skips).
#[test]
fn integer_module_roundtrips() {
    let mut module = Module::new("ints");
    let mut b = FunctionBuilder::new("f", &[Type::I64], Type::I64);
    let x = b.binary(BinOp::Add, Type::I64, Value::param(0), Value::i64(i64::MIN));
    let y = b.binary(BinOp::Xor, Type::I64, x, Value::i64(i64::MAX));
    b.ret(Some(y));
    module.add_function(b.finish());
    let text = module.to_text();
    let reparsed = parse_module(&text).expect("parses");
    assert_eq!(text, reparsed.to_text());
    let _ = Inst::Ret { value: None }; // silence unused-import lints on feature subsets
}

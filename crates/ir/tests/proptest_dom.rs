//! Property-based tests for dominator analysis over random CFGs.

use proptest::prelude::*;

use ipas_ir::dom::DomTree;
use ipas_ir::{Function, Inst, Type, Value};

/// Builds a function whose CFG is induced by `edges`: block `i` gets a
/// conditional branch to `edges[i] = (a, b)` (indices mod the block
/// count), except blocks marked as exits, which return.
fn build_cfg(n: usize, edges: &[(usize, usize)], exits: &[bool]) -> Function {
    let mut f = Function::new("g", &[Type::Bool], Type::Void);
    for _ in 1..n {
        f.add_block();
    }
    let blocks: Vec<_> = f.block_ids().collect();
    for (i, &bb) in blocks.iter().enumerate() {
        if exits[i] {
            f.append_inst(bb, Inst::Ret { value: None });
        } else {
            let (a, b) = edges[i];
            f.append_inst(
                bb,
                Inst::CondBr {
                    cond: Value::param(0),
                    then_bb: blocks[a % n],
                    else_bb: blocks[b % n],
                },
            );
        }
    }
    f
}

/// Reference reachability: can `from` reach `to` while avoiding
/// `without`? Used to check dominance by definition.
fn reaches_avoiding(f: &Function, from: usize, to: usize, without: usize) -> bool {
    let n = f.num_blocks();
    if from == without {
        return false;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(cur) = stack.pop() {
        if cur == to {
            return true;
        }
        let bb = f.block_ids().nth(cur).expect("in range");
        for s in f.successors(bb) {
            let si = s.index();
            if si != without && !seen[si] {
                seen[si] = true;
                stack.push(si);
            }
        }
    }
    false
}

fn cfg_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<bool>)> {
    (2usize..10).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..n, 0usize..n), n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(n, edges, mut exits)| {
                // Guarantee at least one exit so DFS terminates quickly
                // (not required for dominators, but keeps CFGs sane).
                exits[n - 1] = true;
                (n, edges, exits)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The computed dominance relation matches the definition: `a dom b`
    /// iff removing `a` disconnects `b` from the entry (for reachable
    /// `b`, `a != b`).
    #[test]
    fn dominance_matches_definition((n, edges, exits) in cfg_strategy()) {
        let f = build_cfg(n, &edges, &exits);
        let dt = DomTree::compute(&f);
        let blocks: Vec<_> = f.block_ids().collect();
        for (ai, &a) in blocks.iter().enumerate() {
            for (bi, &b) in blocks.iter().enumerate() {
                if !dt.is_reachable(b) || !dt.is_reachable(a) {
                    continue;
                }
                let computed = dt.dominates(a, b);
                let expected = if ai == bi {
                    true
                } else {
                    !reaches_avoiding(&f, 0, bi, ai)
                };
                prop_assert_eq!(
                    computed, expected,
                    "a={} b={} edges={:?} exits={:?}", ai, bi, &edges, &exits
                );
            }
        }
    }

    /// The immediate dominator strictly dominates its block and every
    /// other strict dominator of the block dominates the idom.
    #[test]
    fn idom_is_the_closest_strict_dominator((n, edges, exits) in cfg_strategy()) {
        let f = build_cfg(n, &edges, &exits);
        let dt = DomTree::compute(&f);
        let blocks: Vec<_> = f.block_ids().collect();
        for &b in &blocks {
            if !dt.is_reachable(b) || b == f.entry() {
                continue;
            }
            let idom = dt.idom(b).expect("reachable non-entry blocks have idoms");
            prop_assert!(dt.dominates(idom, b));
            prop_assert_ne!(idom, b);
            for &d in &blocks {
                if d != b && dt.dominates(d, b) {
                    prop_assert!(
                        dt.dominates(d, idom),
                        "strict dominator {} must dominate idom {}",
                        d.index(),
                        idom.index()
                    );
                }
            }
        }
    }

    /// Dominance frontier definition: `y ∈ DF(x)` iff `x` dominates a
    /// predecessor of `y` but does not strictly dominate `y`.
    #[test]
    fn frontier_matches_definition((n, edges, exits) in cfg_strategy()) {
        let f = build_cfg(n, &edges, &exits);
        let dt = DomTree::compute(&f);
        let df = dt.dominance_frontiers(&f);
        let preds = f.predecessors();
        let blocks: Vec<_> = f.block_ids().collect();
        for &x in &blocks {
            if !dt.is_reachable(x) {
                continue;
            }
            for &y in &blocks {
                if !dt.is_reachable(y) {
                    continue;
                }
                let expected = preds[y.index()]
                    .iter()
                    .any(|&p| dt.is_reachable(p) && dt.dominates(x, p))
                    && !(dt.dominates(x, y) && x != y);
                let computed = df[x.index()].contains(&y);
                // The computed frontier only contains join points (>= 2
                // preds); single-pred "frontiers" cannot host phis and
                // are skipped by construction.
                if preds[y.index()].len() >= 2 {
                    prop_assert_eq!(computed, expected, "x={} y={}", x.index(), y.index());
                } else {
                    prop_assert!(!computed);
                }
            }
        }
    }
}

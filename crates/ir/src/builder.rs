//! An append-oriented function builder.

use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOp, Callee, CastOp, FcmpPred, IcmpPred, Inst, Intrinsic};
use crate::module::FuncId;
use crate::types::Type;
use crate::value::Value;

/// Incrementally constructs a [`Function`].
///
/// The builder keeps a *current block*; instruction-emitting methods append
/// to it and return the result [`Value`]. Use [`FunctionBuilder::finish`]
/// to extract the function (callers should then run
/// [`crate::verify::verify_function`]).
///
/// # Example
///
/// ```
/// use ipas_ir::{FunctionBuilder, Type, Value, BinOp, IcmpPred};
///
/// // fn abs(x: i64) -> i64 { if x < 0 { -x } else { x } }
/// let mut b = FunctionBuilder::new("abs", &[Type::I64], Type::I64);
/// let entry = b.entry_block();
/// let neg_bb = b.new_block();
/// let pos_bb = b.new_block();
/// b.switch_to_block(entry);
/// let x = Value::param(0);
/// let is_neg = b.icmp(IcmpPred::Slt, x, Value::i64(0));
/// b.cond_br(is_neg, neg_bb, pos_bb);
/// b.switch_to_block(neg_bb);
/// let negated = b.binary(BinOp::Sub, Type::I64, Value::i64(0), x);
/// b.ret(Some(negated));
/// b.switch_to_block(pos_bb);
/// b.ret(Some(x));
/// let func = b.finish();
/// ipas_ir::verify::verify_function(&func).unwrap();
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Creates a builder for a function with the given signature. The
    /// current block starts as the entry block.
    pub fn new(name: impl Into<String>, params: &[Type], ret: Type) -> Self {
        let func = Function::new(name, params, ret);
        let current = func.entry();
        FunctionBuilder { func, current }
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        self.func.entry()
    }

    /// Creates a new, empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Makes `bb` the block that subsequent instructions append to.
    pub fn switch_to_block(&mut self, bb: BlockId) {
        self.current = bb;
    }

    /// The block instructions currently append to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Returns `true` if the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func
            .block(self.current)
            .terminator()
            .map(|t| self.func.inst(t).is_terminator())
            .unwrap_or(false)
    }

    /// Borrows the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Finishes construction, yielding the function.
    pub fn finish(self) -> Function {
        self.func
    }

    fn emit(&mut self, inst: Inst) -> InstId {
        self.func.append_inst(self.current, inst)
    }

    fn emit_value(&mut self, inst: Inst) -> Value {
        Value::inst(self.emit(inst))
    }

    /// Emits a binary operation.
    pub fn binary(&mut self, op: BinOp, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.emit_value(Inst::Binary { op, ty, lhs, rhs })
    }

    /// Emits an integer comparison.
    pub fn icmp(&mut self, pred: IcmpPred, lhs: Value, rhs: Value) -> Value {
        self.emit_value(Inst::Icmp { pred, lhs, rhs })
    }

    /// Emits a float comparison.
    pub fn fcmp(&mut self, pred: FcmpPred, lhs: Value, rhs: Value) -> Value {
        self.emit_value(Inst::Fcmp { pred, lhs, rhs })
    }

    /// Emits a type conversion.
    pub fn cast(&mut self, op: CastOp, to: Type, arg: Value) -> Value {
        self.emit_value(Inst::Cast { op, to, arg })
    }

    /// Emits a select.
    pub fn select(&mut self, ty: Type, cond: Value, then_value: Value, else_value: Value) -> Value {
        self.emit_value(Inst::Select {
            ty,
            cond,
            then_value,
            else_value,
        })
    }

    /// Emits a stack allocation of `count` slots.
    pub fn alloca(&mut self, ty: Type, count: u32) -> Value {
        self.emit_value(Inst::Alloca { ty, count })
    }

    /// Emits a load.
    pub fn load(&mut self, ty: Type, addr: Value) -> Value {
        self.emit_value(Inst::Load { ty, addr })
    }

    /// Emits a store.
    pub fn store(&mut self, ty: Type, value: Value, addr: Value) {
        self.emit(Inst::Store { ty, value, addr });
    }

    /// Emits pointer arithmetic (`base + index * 8`).
    pub fn gep(&mut self, elem_ty: Type, base: Value, index: Value) -> Value {
        self.emit_value(Inst::Gep {
            elem_ty,
            base,
            index,
        })
    }

    /// Emits a call to a module function. Returns the result value (unit
    /// for void calls; do not use it).
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>, ret_ty: Type) -> Value {
        self.emit_value(Inst::Call {
            callee: Callee::Func(callee),
            args,
            ret_ty,
        })
    }

    /// Emits a call to an intrinsic.
    pub fn call_intrinsic(&mut self, intr: Intrinsic, args: Vec<Value>) -> Value {
        self.emit_value(Inst::Call {
            callee: Callee::Intrinsic(intr),
            args,
            ret_ty: intr.return_type(),
        })
    }

    /// Emits a phi node at the *current append position*.
    ///
    /// The verifier requires phis to be at the top of a block, so call this
    /// before emitting other instructions into the block.
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, Value)>) -> Value {
        self.emit_value(Inst::Phi { ty, incomings })
    }

    /// Emits an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.emit(Inst::Br { target });
    }

    /// Emits a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.emit(Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Emits a return.
    pub fn ret(&mut self, value: Option<Value>) {
        self.emit(Inst::Ret { value });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_code() {
        let mut b = FunctionBuilder::new("f", &[Type::F64], Type::F64);
        let x = Value::param(0);
        let sq = b.binary(BinOp::Fmul, Type::F64, x, x);
        let r = b.call_intrinsic(Intrinsic::Sqrt, vec![sq]);
        b.ret(Some(r));
        let f = b.finish();
        assert_eq!(f.num_linked_insts(), 3);
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn is_terminated_tracks_terminators() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        assert!(!b.is_terminated());
        b.ret(None);
        assert!(b.is_terminated());
    }

    #[test]
    fn loop_with_phi_verifies() {
        // sum 0..n
        let mut b = FunctionBuilder::new("sum", &[Type::I64], Type::I64);
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();

        b.switch_to_block(entry);
        b.br(header);

        b.switch_to_block(header);
        let i = b.phi(Type::I64, vec![(entry, Value::i64(0))]);
        let acc = b.phi(Type::I64, vec![(entry, Value::i64(0))]);
        let cond = b.icmp(IcmpPred::Slt, i, Value::param(0));
        b.cond_br(cond, body, exit);

        b.switch_to_block(body);
        let acc2 = b.binary(BinOp::Add, Type::I64, acc, i);
        let i2 = b.binary(BinOp::Add, Type::I64, i, Value::i64(1));
        b.br(header);

        // Patch the phis with the back-edge values.
        let mut f = {
            b.switch_to_block(exit);
            b.ret(Some(acc));
            b.finish()
        };
        let header_insts: Vec<_> = f.block(header).insts().to_vec();
        if let Inst::Phi { incomings, .. } = f.inst_mut(header_insts[0]) {
            incomings.push((body, i2));
        }
        if let Inst::Phi { incomings, .. } = f.inst_mut(header_insts[1]) {
            incomings.push((body, acc2));
        }
        crate::verify::verify_function(&f).unwrap();
    }
}

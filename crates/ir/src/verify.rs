//! Structural, type, and SSA-dominance verification.

use std::collections::HashSet;
use std::fmt;

use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::{Callee, CastOp, Inst};
use crate::module::Module;
use crate::types::Type;
use crate::value::Value;

/// Error describing an IR invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    func: String,
    message: String,
}

impl VerifyError {
    fn new(func: &str, message: impl Into<String>) -> Self {
        VerifyError {
            func: func.to_string(),
            message: message.into(),
        }
    }

    /// Name of the offending function.
    pub fn function(&self) -> &str {
        &self.func
    }

    /// The violation description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verification failed in `{}`: {}",
            self.func, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in `module`, including call signatures.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for (_, func) in module.functions() {
        verify_function_inner(func, Some(module), None)?;
    }
    Ok(())
}

/// Verifies a single function (calls to module functions are checked for
/// arity only when a module is unavailable — use [`verify_module`] for the
/// full check).
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    verify_function_inner(func, None, None)
}

/// Like [`verify_function`], but borrows a caller-provided dominator
/// tree for the SSA-dominance checks instead of recomputing one. The
/// tree must be current for `func`; the pass manager's `--verify-each`
/// mode uses this so interleaved verification does not recompute the
/// tree once per pass application.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function_with(func: &Function, dt: &DomTree) -> Result<(), VerifyError> {
    verify_function_inner(func, None, Some(dt))
}

fn verify_function_inner(
    func: &Function,
    module: Option<&Module>,
    cached_dom: Option<&DomTree>,
) -> Result<(), VerifyError> {
    let name = func.name();
    let err = |msg: String| Err(VerifyError::new(name, msg));

    // --- Structure: blocks end with exactly one terminator. -------------
    for bb in func.block_ids() {
        let block = func.block(bb);
        if block.is_empty() {
            return err(format!("{bb} is empty"));
        }
        for (i, &id) in block.insts().iter().enumerate() {
            let inst = func.inst(id);
            let last = i + 1 == block.len();
            if inst.is_terminator() != last {
                return err(format!(
                    "{bb}: terminator placement violation at {id} (`{}`)",
                    inst.opcode_name()
                ));
            }
            if inst.is_phi() {
                // Phis must be contiguous at the top.
                let prefix_ok = block.insts()[..i].iter().all(|&p| func.inst(p).is_phi());
                if !prefix_ok {
                    return err(format!("{bb}: phi {id} is not at the top of the block"));
                }
            }
        }
        // Branch targets must be in range.
        if let Some(t) = block.terminator() {
            for succ in func.inst(t).successors() {
                if succ.index() >= func.num_blocks() {
                    return err(format!("{bb}: branch to out-of-range {succ}"));
                }
            }
        }
    }

    // --- An instruction may be linked at most once. ---------------------
    let mut seen: HashSet<InstId> = HashSet::new();
    for bb in func.block_ids() {
        for &id in func.block(bb).insts() {
            if !seen.insert(id) {
                return err(format!("instruction {id} linked into multiple positions"));
            }
            if id.index() >= func.num_inst_slots() {
                return err(format!("instruction {id} out of arena range"));
            }
        }
    }

    // --- Types. ----------------------------------------------------------
    let value_ok = |v: Value| -> Result<Type, VerifyError> {
        match v {
            Value::Param(n) => {
                if (n as usize) < func.params().len() {
                    Ok(func.params()[n as usize])
                } else {
                    Err(VerifyError::new(
                        name,
                        format!("out-of-range parameter %arg{n}"),
                    ))
                }
            }
            Value::Inst(id) => {
                if id.index() >= func.num_inst_slots() {
                    return Err(VerifyError::new(name, format!("use of out-of-range {id}")));
                }
                if !seen.contains(&id) {
                    return Err(VerifyError::new(
                        name,
                        format!("use of unlinked instruction {id}"),
                    ));
                }
                let ty = func.inst(id).result_type();
                if ty == Type::Void {
                    return Err(VerifyError::new(name, format!("use of void result {id}")));
                }
                Ok(ty)
            }
            Value::Const(c) => Ok(c.ty()),
        }
    };

    let preds = func.predecessors();
    for bb in func.block_ids() {
        for &id in func.block(bb).insts() {
            let inst = func.inst(id);
            match inst {
                Inst::Binary { op, ty, lhs, rhs } => {
                    if *ty == Type::Void || *ty == Type::Ptr {
                        return err(format!("{id}: binary op on {ty}"));
                    }
                    if op.is_float() != ty.is_float() {
                        return err(format!("{id}: opcode {op} does not match type {ty}"));
                    }
                    // Booleans only support the bitwise opcodes; the
                    // interpreter has no arithmetic on i1.
                    if *ty == Type::Bool
                        && !matches!(
                            op,
                            crate::inst::BinOp::And
                                | crate::inst::BinOp::Or
                                | crate::inst::BinOp::Xor
                        )
                    {
                        return err(format!("{id}: opcode {op} is not defined on i1"));
                    }
                    for v in [lhs, rhs] {
                        let vt = value_ok(*v)?;
                        if vt != *ty {
                            return err(format!("{id}: operand type {vt} != {ty}"));
                        }
                    }
                }
                Inst::Icmp { lhs, rhs, .. } => {
                    let lt = value_ok(*lhs)?;
                    let rt = value_ok(*rhs)?;
                    if lt != rt {
                        return err(format!("{id}: icmp operand types differ ({lt} vs {rt})"));
                    }
                    if !(lt.is_int() || lt == Type::Ptr) {
                        return err(format!("{id}: icmp on {lt}"));
                    }
                }
                Inst::Fcmp { lhs, rhs, .. } => {
                    for v in [lhs, rhs] {
                        let vt = value_ok(*v)?;
                        if vt != Type::F64 {
                            return err(format!("{id}: fcmp on {vt}"));
                        }
                    }
                }
                Inst::Cast { op, to, arg } => {
                    let from = value_ok(*arg)?;
                    let ok = match op {
                        CastOp::Sitofp => from == Type::I64 && *to == Type::F64,
                        CastOp::Fptosi => from == Type::F64 && *to == Type::I64,
                        CastOp::Zext => from == Type::Bool && *to == Type::I64,
                        CastOp::Trunc => from == Type::I64 && *to == Type::Bool,
                        CastOp::Bitcast => {
                            (from == Type::I64 && *to == Type::F64)
                                || (from == Type::F64 && *to == Type::I64)
                        }
                        CastOp::Ptrtoint => from == Type::Ptr && *to == Type::I64,
                        CastOp::Inttoptr => from == Type::I64 && *to == Type::Ptr,
                    };
                    if !ok {
                        return err(format!("{id}: invalid cast {op} {from} -> {to}"));
                    }
                }
                Inst::Select {
                    ty,
                    cond,
                    then_value,
                    else_value,
                } => {
                    if value_ok(*cond)? != Type::Bool {
                        return err(format!("{id}: select condition is not i1"));
                    }
                    for v in [then_value, else_value] {
                        if value_ok(*v)? != *ty {
                            return err(format!("{id}: select arm type mismatch"));
                        }
                    }
                }
                Inst::Alloca { ty, count } => {
                    if *ty == Type::Void {
                        return err(format!("{id}: alloca of void"));
                    }
                    if *count == 0 {
                        return err(format!("{id}: zero-sized alloca"));
                    }
                }
                Inst::Load { ty, addr } => {
                    if *ty == Type::Void {
                        return err(format!("{id}: load of void"));
                    }
                    if value_ok(*addr)? != Type::Ptr {
                        return err(format!("{id}: load address is not a pointer"));
                    }
                }
                Inst::Store { ty, value, addr } => {
                    if value_ok(*value)? != *ty {
                        return err(format!("{id}: stored value type mismatch"));
                    }
                    if value_ok(*addr)? != Type::Ptr {
                        return err(format!("{id}: store address is not a pointer"));
                    }
                }
                Inst::Gep { base, index, .. } => {
                    if value_ok(*base)? != Type::Ptr {
                        return err(format!("{id}: gep base is not a pointer"));
                    }
                    if value_ok(*index)? != Type::I64 {
                        return err(format!("{id}: gep index is not i64"));
                    }
                }
                Inst::Call {
                    callee,
                    args,
                    ret_ty,
                } => {
                    let arg_tys: Result<Vec<Type>, VerifyError> =
                        args.iter().map(|a| value_ok(*a)).collect();
                    let arg_tys = arg_tys?;
                    match callee {
                        Callee::Intrinsic(intr) => {
                            if arg_tys.as_slice() != intr.param_types() {
                                return err(format!(
                                    "{id}: intrinsic `{intr}` argument types {arg_tys:?} do not match {:?}",
                                    intr.param_types()
                                ));
                            }
                            if *ret_ty != intr.return_type() {
                                return err(format!(
                                    "{id}: intrinsic `{intr}` returns {}, declared {ret_ty}",
                                    intr.return_type()
                                ));
                            }
                        }
                        Callee::Func(fid) => {
                            if let Some(m) = module {
                                if fid.index() >= m.num_functions() {
                                    return err(format!("{id}: call to out-of-range {fid}"));
                                }
                                let callee_fn = m.function(*fid);
                                if arg_tys.as_slice() != callee_fn.params() {
                                    return err(format!(
                                        "{id}: call to `{}` argument types mismatch",
                                        callee_fn.name()
                                    ));
                                }
                                if *ret_ty != callee_fn.return_type() {
                                    return err(format!(
                                        "{id}: call to `{}` return type mismatch",
                                        callee_fn.name()
                                    ));
                                }
                            }
                        }
                    }
                }
                Inst::Phi { ty, incomings } => {
                    if *ty == Type::Void {
                        return err(format!("{id}: phi of void"));
                    }
                    let mut incoming_blocks: Vec<BlockId> =
                        incomings.iter().map(|(b, _)| *b).collect();
                    incoming_blocks.sort();
                    incoming_blocks.dedup();
                    if incoming_blocks.len() != incomings.len() {
                        return err(format!("{id}: duplicate phi predecessor"));
                    }
                    let mut actual: Vec<BlockId> = preds[bb.index()].clone();
                    actual.sort();
                    actual.dedup();
                    if incoming_blocks != actual {
                        return err(format!(
                            "{id}: phi predecessors {incoming_blocks:?} do not match CFG predecessors {actual:?}"
                        ));
                    }
                    for (_, v) in incomings {
                        if value_ok(*v)? != *ty {
                            return err(format!("{id}: phi incoming type mismatch"));
                        }
                    }
                }
                Inst::Br { .. } => {}
                Inst::CondBr { cond, .. } => {
                    if value_ok(*cond)? != Type::Bool {
                        return err(format!("{id}: condbr condition is not i1"));
                    }
                }
                Inst::Ret { value } => match (value, func.return_type()) {
                    (None, Type::Void) => {}
                    (Some(v), ret) => {
                        if ret == Type::Void {
                            return err(format!("{id}: returning a value from a void function"));
                        }
                        if value_ok(*v)? != ret {
                            return err(format!("{id}: return type mismatch"));
                        }
                    }
                    (None, _) => {
                        return err(format!("{id}: missing return value"));
                    }
                },
            }
        }
    }

    // --- SSA dominance. ---------------------------------------------------
    let storage;
    let dt = match cached_dom {
        Some(dt) => dt,
        None => {
            storage = DomTree::compute(func);
            &storage
        }
    };
    let inst_blocks = func.inst_blocks();
    for bb in func.block_ids() {
        if !dt.is_reachable(bb) {
            continue;
        }
        let block = func.block(bb);
        for (pos, &id) in block.insts().iter().enumerate() {
            let inst = func.inst(id);
            if let Inst::Phi { incomings, .. } = inst {
                for (pred, v) in incomings {
                    if let Value::Inst(def) = v {
                        let def_bb = inst_blocks[def];
                        if !dt.dominates(def_bb, *pred) {
                            return err(format!(
                                "{id}: phi incoming {def} from {pred} not dominated by its definition"
                            ));
                        }
                    }
                }
                continue;
            }
            let mut bad = None;
            inst.for_each_operand(|v| {
                if bad.is_some() {
                    return;
                }
                if let Value::Inst(def) = v {
                    let def_bb = inst_blocks[&def];
                    let ok = if def_bb == bb {
                        // Same block: definition must come first.
                        let def_pos = block.insts().iter().position(|&x| x == def);
                        matches!(def_pos, Some(dp) if dp < pos)
                    } else {
                        dt.dominates(def_bb, bb)
                    };
                    if !ok {
                        bad = Some(def);
                    }
                }
            });
            if let Some(def) = bad {
                return err(format!(
                    "{id}: use of {def} not dominated by its definition"
                ));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Intrinsic};

    #[test]
    fn accepts_valid_function() {
        let mut b = FunctionBuilder::new("ok", &[Type::I64], Type::I64);
        let v = b.binary(BinOp::Add, Type::I64, Value::param(0), Value::i64(1));
        b.ret(Some(v));
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("f", &[], Type::Void);
        f.append_inst(
            f.entry(),
            Inst::Binary {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::i64(1),
                rhs: Value::i64(2),
            },
        );
        let e = verify_function(&f).unwrap_err();
        assert!(e.message().contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_empty_block() {
        let mut f = Function::new("f", &[], Type::Void);
        f.append_inst(f.entry(), Inst::Ret { value: None });
        f.add_block();
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_type_mismatch_in_binary() {
        let mut b = FunctionBuilder::new("f", &[Type::F64], Type::Void);
        b.binary(BinOp::Add, Type::I64, Value::param(0), Value::i64(1));
        b.ret(None);
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.message().contains("operand type"), "{e}");
    }

    #[test]
    fn rejects_float_opcode_on_int_type() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        b.binary(BinOp::Fadd, Type::I64, Value::i64(1), Value::i64(2));
        b.ret(None);
        assert!(verify_function(&b.finish()).is_err());
    }

    #[test]
    fn rejects_bad_intrinsic_arity() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        b.call_intrinsic(Intrinsic::Sqrt, vec![]);
        b.ret(None);
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.message().contains("sqrt"), "{e}");
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut f = Function::new("f", &[], Type::I64);
        let entry = f.entry();
        // %v0 = add i64 %v1, 1 ; %v1 defined after use
        let use_before = f.append_inst(
            entry,
            Inst::Binary {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::inst(InstId::new(1)),
                rhs: Value::i64(1),
            },
        );
        f.append_inst(
            entry,
            Inst::Binary {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::i64(2),
                rhs: Value::i64(3),
            },
        );
        f.append_inst(
            entry,
            Inst::Ret {
                value: Some(Value::inst(use_before)),
            },
        );
        let e = verify_function(&f).unwrap_err();
        assert!(e.message().contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_phi_with_wrong_predecessors() {
        let mut f = Function::new("f", &[], Type::I64);
        let entry = f.entry();
        let next = f.add_block();
        f.append_inst(entry, Inst::Br { target: next });
        f.append_inst(
            next,
            Inst::Phi {
                ty: Type::I64,
                incomings: vec![(next, Value::i64(0))], // wrong: pred is entry
            },
        );
        let phi = Value::inst(InstId::new(1));
        f.append_inst(next, Inst::Ret { value: Some(phi) });
        let e = verify_function(&f).unwrap_err();
        assert!(e.message().contains("predecessors"), "{e}");
    }

    #[test]
    fn rejects_non_pointer_load() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        b.load(Type::I64, Value::i64(42));
        b.ret(None);
        let e = verify_function(&b.finish()).unwrap_err();
        assert!(e.message().contains("pointer"), "{e}");
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut b = FunctionBuilder::new("f", &[], Type::I64);
        b.ret(Some(Value::f64(1.0)));
        assert!(verify_function(&b.finish()).is_err());
    }

    #[test]
    fn module_checks_call_signatures() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("callee", &[Type::I64], Type::I64);
        b.ret(Some(Value::param(0)));
        let callee = m.add_function(b.finish());

        let mut b = FunctionBuilder::new("caller", &[], Type::Void);
        b.call(callee, vec![Value::f64(1.0)], Type::I64); // wrong arg type
        b.ret(None);
        m.add_function(b.finish());

        let e = verify_module(&m).unwrap_err();
        assert!(e.message().contains("argument types mismatch"), "{e}");
    }
}

#[cfg(test)]
mod bool_binary_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    #[test]
    fn rejects_arithmetic_on_bool() {
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Sdiv, BinOp::Shl] {
            let mut b = FunctionBuilder::new("f", &[Type::Bool], Type::Bool);
            let v = b.binary(op, Type::Bool, Value::param(0), Value::param(0));
            b.ret(Some(v));
            let e = verify_function(&b.finish()).unwrap_err();
            assert!(e.message().contains("not defined on i1"), "{op:?}: {e}");
        }
    }

    #[test]
    fn accepts_bitwise_on_bool() {
        for op in [BinOp::And, BinOp::Or, BinOp::Xor] {
            let mut b = FunctionBuilder::new("f", &[Type::Bool], Type::Bool);
            let v = b.binary(op, Type::Bool, Value::param(0), Value::param(0));
            b.ret(Some(v));
            verify_function(&b.finish()).unwrap_or_else(|e| panic!("{op:?}: {e}"));
        }
    }

    #[test]
    fn bool_xor_self_simplifies_to_bool_false() {
        use crate::passes::simplify_instructions;
        let mut b = FunctionBuilder::new("f", &[Type::Bool], Type::Bool);
        let v = b.binary(BinOp::Xor, Type::Bool, Value::param(0), Value::param(0));
        b.ret(Some(v));
        let mut f = b.finish();
        assert_eq!(simplify_instructions(&mut f), 1);
        // The replacement constant must be Bool-typed, or this fails.
        verify_function(&f).unwrap();
    }
}

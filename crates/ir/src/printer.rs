//! Textual rendering of modules and functions.
//!
//! The format round-trips through [`crate::parser`]. Instruction results
//! are printed with their arena index (`%v3`), parameters as `%argN`, and
//! blocks as `bbN:` labels in layout order.

use std::fmt::Write as _;

use crate::function::Function;
use crate::inst::{Callee, Inst};
use crate::module::Module;
use crate::types::Type;

/// Renders a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", module.name());
    for (_, func) in module.functions() {
        out.push('\n');
        out.push_str(&print_function(func, Some(module)));
    }
    out
}

/// Renders a single function. When `module` is provided, callees are
/// printed by name; otherwise by id.
pub fn print_function(func: &Function, module: Option<&Module>) -> String {
    let mut out = String::new();
    let params = func
        .params()
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(out, "fn @{}({})", func.name(), params);
    if func.return_type() != Type::Void {
        let _ = write!(out, " -> {}", func.return_type());
    }
    out.push_str(" {\n");
    for bb in func.block_ids() {
        out.push_str(&print_block(func, bb, module));
    }
    out.push_str("}\n");
    out
}

/// Renders one basic block (`bbN:` label plus its instructions) exactly
/// as it appears inside [`print_function`]. Section fingerprints hash a
/// subset of a function's blocks through this, so a block's fingerprint
/// text and its printed-module text can never drift apart.
pub fn print_block(
    func: &Function,
    bb: crate::function::BlockId,
    module: Option<&Module>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{bb}:");
    for &id in func.block(bb).insts() {
        let inst = func.inst(id);
        out.push_str("  ");
        if inst.has_result() {
            let _ = write!(out, "%v{} = ", id.index());
        }
        out.push_str(&print_inst(inst, module));
        out.push('\n');
    }
    out
}

/// Renders one instruction (without the result assignment).
pub fn print_inst(inst: &Inst, module: Option<&Module>) -> String {
    match inst {
        Inst::Binary { op, ty, lhs, rhs } => format!("{op} {ty} {lhs}, {rhs}"),
        Inst::Icmp { pred, lhs, rhs } => format!("icmp {pred} {lhs}, {rhs}"),
        Inst::Fcmp { pred, lhs, rhs } => format!("fcmp {pred} {lhs}, {rhs}"),
        Inst::Cast { op, to, arg } => format!("{op} {to} {arg}"),
        Inst::Select {
            ty,
            cond,
            then_value,
            else_value,
        } => format!("select {ty} {cond}, {then_value}, {else_value}"),
        Inst::Alloca { ty, count } => format!("alloca {ty}, {count}"),
        Inst::Load { ty, addr } => format!("load {ty}, {addr}"),
        Inst::Store { ty, value, addr } => format!("store {ty} {value}, {addr}"),
        Inst::Gep {
            elem_ty,
            base,
            index,
        } => format!("gep {elem_ty} {base}, {index}"),
        Inst::Call {
            callee,
            args,
            ret_ty,
        } => {
            let name = match callee {
                Callee::Func(id) => match module {
                    Some(m) => format!("@{}", m.function(*id).name()),
                    None => format!("@{id}"),
                },
                Callee::Intrinsic(i) => i.name().to_string(),
            };
            let args = args
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!("call {name}({args}) -> {ret_ty}")
        }
        Inst::Phi { ty, incomings } => {
            let inc = incomings
                .iter()
                .map(|(bb, v)| format!("{bb}: {v}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("phi {ty} [{inc}]")
        }
        Inst::Br { target } => format!("br {target}"),
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("condbr {cond}, {then_bb}, {else_bb}"),
        Inst::Ret { value } => match value {
            Some(v) => format!("ret {v}"),
            None => "ret".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, IcmpPred, Intrinsic};
    use crate::value::Value;

    #[test]
    fn prints_binary_and_ret() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let v = b.binary(BinOp::Add, Type::I64, Value::param(0), Value::i64(1));
        b.ret(Some(v));
        let text = print_function(&b.finish(), None);
        assert!(text.contains("fn @f(i64) -> i64 {"), "{text}");
        assert!(text.contains("%v0 = add i64 %arg0, 1"), "{text}");
        assert!(text.contains("ret %v0"), "{text}");
    }

    #[test]
    fn prints_calls_and_branches() {
        let mut b = FunctionBuilder::new("g", &[Type::F64], Type::Void);
        let entry = b.entry_block();
        let done = b.new_block();
        b.switch_to_block(entry);
        let s = b.call_intrinsic(Intrinsic::Sqrt, vec![Value::param(0)]);
        let c = b.icmp(IcmpPred::Eq, Value::i64(0), Value::i64(0));
        b.cond_br(c, done, done);
        b.switch_to_block(done);
        b.call_intrinsic(Intrinsic::PrintF64, vec![s]);
        b.ret(None);
        let text = print_function(&b.finish(), None);
        assert!(text.contains("call sqrt(%arg0) -> f64"), "{text}");
        assert!(text.contains("condbr %v1, bb1, bb1"), "{text}");
        assert!(text.contains("call print_f64(%v0) -> void"), "{text}");
    }

    #[test]
    fn prints_phi() {
        let mut b = FunctionBuilder::new("h", &[], Type::I64);
        let entry = b.entry_block();
        let next = b.new_block();
        b.switch_to_block(entry);
        b.br(next);
        b.switch_to_block(next);
        let p = b.phi(Type::I64, vec![(entry, Value::i64(7))]);
        b.ret(Some(p));
        let text = print_function(&b.finish(), None);
        assert!(text.contains("phi i64 [bb0: 7]"), "{text}");
    }
}

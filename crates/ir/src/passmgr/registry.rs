//! The registry of builtin function passes.
//!
//! Each wrapper adapts one of the free-function passes in
//! [`crate::passes`] to the [`Pass`] trait: it pulls cached analyses
//! from the [`AnalysisManager`], reports a precise [`Changed`] signal,
//! declares what it preserves, and feeds its headline statistic to the
//! manager's named counters.

use crate::dom::DomTree;
use crate::function::Function;
use crate::passes;
use crate::passmgr::{AnalysisManager, Changed, Pass, PreservedAnalyses};

/// Names of every registered pass, in the order `ipas passes list`
/// shows them (default-pipeline order, then opt-in passes).
pub fn pass_names() -> &'static [&'static str] {
    &[
        "mem2reg",
        "constfold",
        "instsimplify",
        "cse",
        "dce",
        "simplifycfg",
        "licm",
    ]
}

/// `(name, one-line description)` for every registered pass.
pub fn pass_descriptions() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "mem2reg",
            "promote single-slot allocas to SSA registers (phi placement at dominance frontiers)",
        ),
        (
            "constfold",
            "fold operations whose operands are all constants (division by zero excluded)",
        ),
        (
            "instsimplify",
            "algebraic identities: x+0, x*1, x-x, select c,x,x, reflexive icmp, ...",
        ),
        (
            "cse",
            "dominator-scoped common-subexpression elimination over pure instructions",
        ),
        (
            "dce",
            "mark-and-sweep dead-code elimination from side-effecting roots",
        ),
        (
            "simplifycfg",
            "branch threading, linear-chain merging, unreachable-block pruning",
        ),
        (
            "licm",
            "hoist pure, non-trapping loop-invariant instructions into preheaders (opt-in)",
        ),
    ]
}

/// Instantiates the registered pass called `name`, or `None` if no such
/// pass exists.
pub fn create_pass(name: &str) -> Option<Box<dyn Pass>> {
    match name {
        "mem2reg" => Some(Box::new(Mem2RegPass::default())),
        "constfold" => Some(Box::new(ConstFoldPass::default())),
        "instsimplify" => Some(Box::new(InstSimplifyPass::default())),
        "cse" => Some(Box::new(CsePass::default())),
        "dce" => Some(Box::new(DcePass::default())),
        "simplifycfg" => Some(Box::new(SimplifyCfgPass::default())),
        "licm" => Some(Box::new(LicmPass::default())),
        _ => None,
    }
}

/// mem2reg inserts phis and unlinks loads/stores/allocas in existing
/// blocks — the CFG (and so the dominator tree) is untouched.
#[derive(Default)]
struct Mem2RegPass {
    promoted: u64,
}

impl Pass for Mem2RegPass {
    fn name(&self) -> &'static str {
        "mem2reg"
    }

    fn run(&mut self, func: &mut Function, am: &mut AnalysisManager) -> Changed {
        let dt = am.get::<DomTree>(func);
        let n = passes::promote_memory_to_registers_with(func, &dt);
        self.promoted += n as u64;
        Changed::from_count(n)
    }

    fn preserved(&self) -> PreservedAnalyses {
        PreservedAnalyses::none().preserve::<DomTree>()
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("allocas-promoted", std::mem::take(&mut self.promoted));
    }
}

/// Constant folding rewrites operands and unlinks value-producing
/// instructions; terminators (and thus the CFG) stay.
#[derive(Default)]
struct ConstFoldPass {
    folded: u64,
}

impl Pass for ConstFoldPass {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&mut self, func: &mut Function, _am: &mut AnalysisManager) -> Changed {
        let n = passes::constant_fold(func);
        self.folded += n as u64;
        Changed::from_count(n)
    }

    fn preserved(&self) -> PreservedAnalyses {
        PreservedAnalyses::none().preserve::<DomTree>()
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("insts-folded", std::mem::take(&mut self.folded));
    }
}

/// Algebraic simplification: operand rewrites + unlinking, CFG intact.
#[derive(Default)]
struct InstSimplifyPass {
    simplified: u64,
}

impl Pass for InstSimplifyPass {
    fn name(&self) -> &'static str {
        "instsimplify"
    }

    fn run(&mut self, func: &mut Function, _am: &mut AnalysisManager) -> Changed {
        let n = passes::simplify_instructions(func);
        self.simplified += n as u64;
        Changed::from_count(n)
    }

    fn preserved(&self) -> PreservedAnalyses {
        PreservedAnalyses::none().preserve::<DomTree>()
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("insts-simplified", std::mem::take(&mut self.simplified));
    }
}

/// CSE merges pure instructions; blocks and edges are untouched.
#[derive(Default)]
struct CsePass {
    merged: u64,
}

impl Pass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&mut self, func: &mut Function, am: &mut AnalysisManager) -> Changed {
        let dt = am.get::<DomTree>(func);
        let n = passes::eliminate_common_subexpressions_with(func, &dt);
        self.merged += n as u64;
        Changed::from_count(n)
    }

    fn preserved(&self) -> PreservedAnalyses {
        PreservedAnalyses::none().preserve::<DomTree>()
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("insts-merged", std::mem::take(&mut self.merged));
    }
}

/// DCE unlinks non-terminator instructions only; CFG intact.
#[derive(Default)]
struct DcePass {
    removed: u64,
}

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, func: &mut Function, _am: &mut AnalysisManager) -> Changed {
        let n = passes::eliminate_dead_code(func);
        self.removed += n as u64;
        Changed::from_count(n)
    }

    fn preserved(&self) -> PreservedAnalyses {
        PreservedAnalyses::none().preserve::<DomTree>()
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("insts-removed", std::mem::take(&mut self.removed));
    }
}

/// CFG simplification restructures blocks and edges — nothing survives.
/// Its headline count (blocks removed) under-reports mutation (branch
/// threading removes no block), so the wrapper uses the precise change
/// bit from [`passes::simplify_cfg_with_change`].
#[derive(Default)]
struct SimplifyCfgPass {
    blocks_removed: u64,
}

impl Pass for SimplifyCfgPass {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }

    fn run(&mut self, func: &mut Function, _am: &mut AnalysisManager) -> Changed {
        let (removed, mutated) = passes::simplify_cfg_with_change(func);
        self.blocks_removed += removed as u64;
        if mutated {
            Changed::Yes
        } else {
            Changed::No
        }
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("blocks-removed", std::mem::take(&mut self.blocks_removed));
    }
}

/// LICM moves instructions between existing blocks; CFG intact.
#[derive(Default)]
struct LicmPass {
    hoisted: u64,
}

impl Pass for LicmPass {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&mut self, func: &mut Function, am: &mut AnalysisManager) -> Changed {
        let dt = am.get::<DomTree>(func);
        let n = passes::hoist_loop_invariants_with(func, &dt);
        self.hoisted += n as u64;
        Changed::from_count(n)
    }

    fn preserved(&self) -> PreservedAnalyses {
        PreservedAnalyses::none().preserve::<DomTree>()
    }

    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        sink("insts-hoisted", std::mem::take(&mut self.hoisted));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_pass_instantiates() {
        for &name in pass_names() {
            let p = create_pass(name).expect("registered pass instantiates");
            assert_eq!(p.name(), name);
        }
        assert!(create_pass("nosuchpass").is_none());
    }

    #[test]
    fn descriptions_cover_every_pass() {
        let described: Vec<&str> = pass_descriptions().iter().map(|(n, _)| *n).collect();
        assert_eq!(described, pass_names());
    }
}

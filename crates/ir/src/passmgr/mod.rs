//! The pass-manager layer: cached analyses, change-driven fixpoints,
//! textual pipeline specs, and per-pass observability.
//!
//! The layer has four pieces:
//!
//! * [`Pass`] / [`ModulePass`] — the unit of transformation. A pass
//!   reports whether it *mutated* the function ([`Changed`]) and which
//!   analyses its mutation [`PreservedAnalyses`].
//! * [`AnalysisManager`] — lazily computes and caches analyses (the
//!   dominator tree here; def-use and loop info from `ipas-analysis`)
//!   keyed by type, so five passes share one `DomTree` instead of each
//!   recomputing it.
//! * [`PipelineSpec`] — a textual, round-trippable pipeline description
//!   (`"mem2reg,fixpoint(constfold,instsimplify,cse,dce,simplifycfg)"`)
//!   usable as a store memo key.
//! * [`PassManager`] — executes a spec with a change-driven fixpoint
//!   (a pass reruns only if something mutated since its last run),
//!   optional interleaved verification, per-pass wall time and named
//!   stat counters, and an execution budget that powers
//!   [`bisect_pipeline`] — given a semantic oracle, it isolates the
//!   first pass application that diverges.
//!
//! The default pipeline's output is byte-identical to the historical
//! `optimize_function` free-function loop: every pass is idempotent, so
//! skipping a pass when nothing mutated since its last complete run
//! removes only no-op applications, never reorders mutating ones.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::rc::Rc;

use crate::dom::DomTree;
use crate::function::Function;
use crate::module::Module;

mod bisect;
mod manager;
mod pipeline;
mod registry;

pub use bisect::{bisect_pipeline, BisectReport};
pub use manager::{PassManager, PassManagerError, PassStat, PipelineStats, TraceEntry};
pub use pipeline::{PipelineItem, PipelineParseError, PipelineSpec, DEFAULT_PIPELINE};
pub use registry::{create_pass, pass_descriptions, pass_names};

/// Whether a pass application mutated the IR at all.
///
/// This is the precise signal driving the fixpoint: it must be `Yes`
/// whenever *anything* changed, even if the pass's headline statistic is
/// zero (e.g. CFG simplification threading a branch without removing a
/// block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Changed {
    /// The function is bit-for-bit what it was before the run.
    No,
    /// Something was rewritten; dependent passes may find new work.
    Yes,
}

impl Changed {
    /// `Yes` iff `n > 0`. For passes whose statistic counts every
    /// mutation (most of them).
    pub fn from_count(n: usize) -> Self {
        if n > 0 {
            Changed::Yes
        } else {
            Changed::No
        }
    }

    /// Returns `true` for [`Changed::Yes`].
    pub fn is_yes(self) -> bool {
        self == Changed::Yes
    }
}

/// A function analysis that the [`AnalysisManager`] can lazily compute
/// and cache.
///
/// Implemented by [`DomTree`] here and by `DefUse` / `LoopInfo` in
/// `ipas-analysis` (the trait lives in `ipas-ir` so the dependency
/// direction stays analysis → ir).
pub trait Analysis: Sized + 'static {
    /// Stable snake-case name (for diagnostics and stats).
    fn name() -> &'static str;

    /// Computes the analysis from scratch. May request *other* analyses
    /// through `am` (e.g. loop info builds on the dominator tree).
    fn compute(func: &Function, am: &mut AnalysisManager) -> Self;
}

impl Analysis for DomTree {
    fn name() -> &'static str {
        "domtree"
    }

    fn compute(func: &Function, _am: &mut AnalysisManager) -> Self {
        DomTree::compute(func)
    }
}

/// The set of analyses a pass's mutation leaves valid.
///
/// A pass that only rewrites operands or unlinks non-terminator
/// instructions keeps the dominator tree; a CFG-restructuring pass
/// preserves nothing. Returned by [`Pass::preserved`] and consumed by
/// [`AnalysisManager::retain`].
#[derive(Debug, Clone, Copy)]
pub struct PreservedAnalyses {
    all: bool,
    // Inline storage: `preserved()` is built on every mutating pass
    // application, so it must not heap-allocate.
    kept: [Option<TypeId>; Self::MAX_KEPT],
    len: usize,
}

impl PreservedAnalyses {
    /// The most analyses one pass can preserve by name (there are only
    /// three registered analyses; `all()` covers "everything").
    const MAX_KEPT: usize = 4;

    /// Every cached analysis stays valid (the pass did not mutate, or
    /// mutates nothing analyses look at).
    pub fn all() -> Self {
        PreservedAnalyses {
            all: true,
            kept: [None; Self::MAX_KEPT],
            len: 0,
        }
    }

    /// No cached analysis survives.
    pub fn none() -> Self {
        PreservedAnalyses {
            all: false,
            kept: [None; Self::MAX_KEPT],
            len: 0,
        }
    }

    /// Marks analysis `A` as preserved.
    ///
    /// # Panics
    ///
    /// When more than [`Self::MAX_KEPT`] analyses are named — use
    /// [`PreservedAnalyses::all`] instead at that point.
    pub fn preserve<A: Analysis>(mut self) -> Self {
        assert!(
            self.len < Self::MAX_KEPT,
            "too many preserved analyses; use PreservedAnalyses::all()"
        );
        self.kept[self.len] = Some(TypeId::of::<A>());
        self.len += 1;
        self
    }

    /// Returns `true` if analysis `A` survives.
    pub fn preserves<A: Analysis>(&self) -> bool {
        self.keeps(TypeId::of::<A>())
    }

    fn keeps(&self, id: TypeId) -> bool {
        self.all || self.kept[..self.len].contains(&Some(id))
    }
}

/// Lazily computes and caches analyses for one function.
///
/// Results are handed out as `Rc` so a pass can hold the dominator tree
/// while mutating the function (the contract being that a pass using a
/// cached analysis must not invalidate it mid-run — all seven builtin
/// passes read the tree before mutating in ways that preserve it).
#[derive(Default)]
pub struct AnalysisManager {
    cache: HashMap<TypeId, Rc<dyn Any>>,
}

impl AnalysisManager {
    /// An empty manager (nothing cached).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns analysis `A` for `func`, computing and caching it on the
    /// first request.
    pub fn get<A: Analysis>(&mut self, func: &Function) -> Rc<A> {
        if let Some(hit) = self.cached::<A>() {
            return hit;
        }
        let computed = Rc::new(A::compute(func, self));
        self.cache.insert(TypeId::of::<A>(), computed.clone());
        computed
    }

    /// Returns analysis `A` only if already cached.
    pub fn cached<A: Analysis>(&self) -> Option<Rc<A>> {
        self.cache
            .get(&TypeId::of::<A>())
            .map(|rc| rc.clone().downcast::<A>().expect("cache keyed by TypeId"))
    }

    /// Returns `true` if analysis `A` is currently cached.
    pub fn is_cached<A: Analysis>(&self) -> bool {
        self.cache.contains_key(&TypeId::of::<A>())
    }

    /// Drops every cached analysis.
    pub fn invalidate_all(&mut self) {
        self.cache.clear();
    }

    /// Drops every cached analysis *not* named by `preserved`.
    pub fn retain(&mut self, preserved: &PreservedAnalyses) {
        if preserved.all {
            return;
        }
        self.cache.retain(|id, _| preserved.keeps(*id));
    }
}

/// A function-level transformation usable by the [`PassManager`].
pub trait Pass {
    /// Stable name; also the spelling used in [`PipelineSpec`] text.
    fn name(&self) -> &'static str;

    /// Runs the pass. Must return [`Changed::Yes`] iff the function was
    /// mutated in any way.
    fn run(&mut self, func: &mut Function, am: &mut AnalysisManager) -> Changed;

    /// Analyses that survive this pass's mutations. Consulted only
    /// after a run that returned [`Changed::Yes`]; an unchanged run
    /// preserves everything by definition.
    fn preserved(&self) -> PreservedAnalyses {
        PreservedAnalyses::none()
    }

    /// Drains the named statistic counters accumulated by the most
    /// recent [`Pass::run`] into `sink` (e.g. `sink("allocas-promoted",
    /// 3)`). A pass that reports counters must report them on *every*
    /// run, even at zero: the fixpoint treats "any reported counter
    /// nonzero" as its progress signal (falling back to the change bit
    /// for passes that report nothing), which is exactly the exit
    /// condition of the historical optimization loop.
    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        let _ = sink;
    }
}

/// A module-level transformation (sees the whole [`Module`], e.g. the
/// IPAS duplication pass whose instruction selector needs cross-function
/// feature extraction). Module passes run after the function pipeline.
pub trait ModulePass {
    /// Stable name (appears in pipeline descriptions as `+name`).
    fn name(&self) -> &'static str;

    /// Runs the pass over the whole module.
    fn run(&mut self, module: &mut Module) -> Changed;

    /// Drains named statistic counters from the most recent run into
    /// `sink`.
    fn report_stats(&mut self, sink: &mut dyn FnMut(&'static str, u64)) {
        let _ = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    #[test]
    fn analysis_manager_caches_domtree() {
        let f = parse_function("fn @f() {\nbb0:\n  ret\n}").unwrap();
        let mut am = AnalysisManager::new();
        let before = DomTree::computations();
        let a = am.get::<DomTree>(&f);
        let b = am.get::<DomTree>(&f);
        assert_eq!(DomTree::computations() - before, 1, "second get is a hit");
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn retain_respects_preserved_sets() {
        let f = parse_function("fn @f() {\nbb0:\n  ret\n}").unwrap();
        let mut am = AnalysisManager::new();
        am.get::<DomTree>(&f);
        am.retain(&PreservedAnalyses::none().preserve::<DomTree>());
        assert!(am.is_cached::<DomTree>(), "preserved analysis survives");
        am.retain(&PreservedAnalyses::all());
        assert!(am.is_cached::<DomTree>(), "preserve-all survives");
        am.retain(&PreservedAnalyses::none());
        assert!(!am.is_cached::<DomTree>(), "unpreserved analysis dropped");
    }

    #[test]
    fn changed_from_count() {
        assert!(!Changed::from_count(0).is_yes());
        assert!(Changed::from_count(2).is_yes());
    }
}

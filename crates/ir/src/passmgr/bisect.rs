//! Pipeline bisection: isolating the first pass application that
//! breaks a semantic oracle.
//!
//! Pass scheduling is fully deterministic, so "the run after `n` pass
//! applications" is a well-defined, replayable state (see
//! [`PassManager::set_execution_budget`]). Given an oracle that accepts
//! or rejects a module, the bisector binary-searches the smallest
//! execution prefix whose result the oracle rejects and names the
//! application at the boundary — the compilation-steps-analysis recipe
//! for localizing silently wrong passes.

use crate::module::Module;
use crate::passmgr::{PassManager, PassManagerError, PipelineSpec, TraceEntry};

/// The isolated first-diverging pass application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectReport {
    /// 1-based index of the diverging application in the execution
    /// trace. 0 means the *unoptimized input* already fails the oracle
    /// (the pipeline is innocent).
    pub execution_index: u64,
    /// Name of the diverging pass (empty when `execution_index` is 0).
    pub pass: String,
    /// Function the pass ran on (empty when `execution_index` is 0;
    /// [`crate::passmgr::MODULE_SCOPE`] for module passes).
    pub function: String,
}

fn run_prefix(
    module: &Module,
    spec: &PipelineSpec,
    budget: Option<u64>,
) -> Result<(Module, u64, Vec<TraceEntry>), PassManagerError> {
    let mut pm = PassManager::from_spec(spec)?;
    pm.set_trace(true);
    pm.set_execution_budget(budget);
    let mut out = module.clone();
    pm.run_module(&mut out)?;
    Ok((out, pm.stats().executions, pm.trace().to_vec()))
}

/// Runs `spec` over `module` and, if the optimized result fails
/// `oracle`, isolates the first pass application after which the oracle
/// rejects. Returns `Ok(None)` when the optimized module passes the
/// oracle.
///
/// The oracle must be deterministic (it is consulted O(log n) times on
/// replayed prefixes; `true` means "accepted").
///
/// # Errors
///
/// Propagates [`PassManagerError`] from pipeline construction (unknown
/// pass names).
pub fn bisect_pipeline(
    module: &Module,
    spec: &PipelineSpec,
    oracle: &mut dyn FnMut(&Module) -> bool,
) -> Result<Option<BisectReport>, PassManagerError> {
    let (optimized, total, trace) = run_prefix(module, spec, None)?;
    if oracle(&optimized) {
        return Ok(None);
    }
    if !oracle(module) {
        return Ok(Some(BisectReport {
            execution_index: 0,
            pass: String::new(),
            function: String::new(),
        }));
    }
    // Invariant: prefix `lo` is accepted, prefix `hi` is rejected.
    let mut lo = 0u64;
    let mut hi = total;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (candidate, _, _) = run_prefix(module, spec, Some(mid))?;
        if oracle(&candidate) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let entry = &trace[(hi - 1) as usize];
    Ok(Some(BisectReport {
        execution_index: hi,
        pass: entry.pass.to_string(),
        function: entry.function.clone(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    const SAMPLE: &str = r#"
module "m"

fn @f(i64) -> i64 {
bb0:
  %v0 = alloca i64, 1
  store i64 7, %v0
  %v1 = load i64, %v0
  %v2 = add i64 %v1, 0
  %v3 = mul i64 %v2, 2
  ret %v3
}
"#;

    #[test]
    fn clean_pipeline_reports_nothing() {
        let module = parse_module(SAMPLE).unwrap();
        let spec = PipelineSpec::default_optimization();
        let report = bisect_pipeline(&module, &spec, &mut |_| true).unwrap();
        assert_eq!(report, None);
    }

    #[test]
    fn isolates_the_first_rejected_application() {
        let module = parse_module(SAMPLE).unwrap();
        let spec = PipelineSpec::default_optimization();
        // Synthetic oracle: reject any module in which the alloca is
        // gone — i.e. the first mem2reg application "diverges". The
        // bisector must name it.
        let mut oracle = |m: &Module| m.to_text().contains("alloca");
        let report = bisect_pipeline(&module, &spec, &mut oracle)
            .unwrap()
            .expect("oracle rejects the optimized module");
        assert_eq!(report.execution_index, 1);
        assert_eq!(report.pass, "mem2reg");
        assert_eq!(report.function, "f");
    }

    #[test]
    fn rejected_input_is_index_zero() {
        let module = parse_module(SAMPLE).unwrap();
        let spec = PipelineSpec::default_optimization();
        let report = bisect_pipeline(&module, &spec, &mut |_| false)
            .unwrap()
            .expect("everything rejected");
        assert_eq!(report.execution_index, 0);
        assert!(report.pass.is_empty());
    }
}

//! Textual pipeline specifications.
//!
//! Grammar (whitespace around tokens is ignored):
//!
//! ```text
//! pipeline := item (',' item)*          -- may be empty
//! item     := passname                  -- [a-z0-9_]+
//!           | 'fixpoint(' pipeline ')'
//! ```
//!
//! [`PipelineSpec::parse`] and the `Display` impl round-trip: parsing
//! canonical text yields an equal spec, and the canonical text is what
//! the store uses inside memo keys, so one pipeline has exactly one
//! fingerprint.

use std::fmt;

/// The default optimization pipeline — the spelling of the historical
/// `optimize_function`: promote memory once, then run the cleanup
/// passes to a change-driven fixpoint.
pub const DEFAULT_PIPELINE: &str = "mem2reg,fixpoint(constfold,instsimplify,cse,dce,simplifycfg)";

/// One element of a pipeline: a named pass or a fixpoint group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineItem {
    /// A single application of the named pass.
    Pass(String),
    /// Run the inner items repeatedly until none of them mutates.
    Fixpoint(Vec<PipelineItem>),
}

impl fmt::Display for PipelineItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineItem::Pass(name) => f.write_str(name),
            PipelineItem::Fixpoint(items) => {
                f.write_str("fixpoint(")?;
                write_items(f, items)?;
                f.write_str(")")
            }
        }
    }
}

fn write_items(f: &mut fmt::Formatter<'_>, items: &[PipelineItem]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

/// A parsed, printable pipeline description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSpec {
    items: Vec<PipelineItem>,
}

impl PipelineSpec {
    /// The empty pipeline (used when only module passes run, e.g. the
    /// protection pipeline).
    pub fn empty() -> Self {
        PipelineSpec { items: Vec::new() }
    }

    /// The default optimization pipeline ([`DEFAULT_PIPELINE`]).
    pub fn default_optimization() -> Self {
        // Built structurally (not parsed) because `optimize_module`
        // constructs one per call; a round-trip test pins this to
        // `DEFAULT_PIPELINE`.
        PipelineSpec {
            items: vec![
                PipelineItem::Pass("mem2reg".to_string()),
                PipelineItem::Fixpoint(vec![
                    PipelineItem::Pass("constfold".to_string()),
                    PipelineItem::Pass("instsimplify".to_string()),
                    PipelineItem::Pass("cse".to_string()),
                    PipelineItem::Pass("dce".to_string()),
                    PipelineItem::Pass("simplifycfg".to_string()),
                ]),
            ],
        }
    }

    /// Builds a spec from items directly (used by the fuzz oracle to
    /// assemble randomized orders).
    pub fn from_items(items: Vec<PipelineItem>) -> Self {
        PipelineSpec { items }
    }

    /// The top-level items.
    pub fn items(&self) -> &[PipelineItem] {
        &self.items
    }

    /// Parses a pipeline spec. Pass *names* are checked for shape only
    /// (lowercase identifiers); whether a name denotes a registered
    /// pass is decided by [`crate::passmgr::PassManager::from_spec`].
    ///
    /// # Errors
    ///
    /// Returns a positioned [`PipelineParseError`] on malformed text.
    pub fn parse(text: &str) -> Result<Self, PipelineParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        if p.at_end() {
            return Ok(PipelineSpec::empty());
        }
        let items = p.parse_items(0)?;
        p.skip_ws();
        if !p.at_end() {
            return Err(p.error("trailing input after pipeline"));
        }
        Ok(PipelineSpec { items })
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_items(f, &self.items)
    }
}

/// A positioned pipeline-spec syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PipelineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline spec error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for PipelineParseError {}

const MAX_NESTING: usize = 16;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn error(&self, message: &str) -> PipelineParseError {
        PipelineParseError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    /// Parses a comma-separated item list, stopping at `)` or
    /// end-of-input (the caller checks which one is legal).
    fn parse_items(&mut self, depth: usize) -> Result<Vec<PipelineItem>, PipelineParseError> {
        let mut items = vec![self.parse_item(depth)?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    items.push(self.parse_item(depth)?);
                }
                _ => return Ok(items),
            }
        }
    }

    fn parse_item(&mut self, depth: usize) -> Result<PipelineItem, PipelineParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'a'..=b'z' | b'0'..=b'9' | b'_')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a pass name or `fixpoint(`"));
        }
        let word = &self.text[start..self.pos];
        self.skip_ws();
        if word == "fixpoint" && self.peek() == Some(b'(') {
            if depth + 1 > MAX_NESTING {
                return Err(self.error("fixpoint groups nested too deeply"));
            }
            self.pos += 1;
            let inner = self.parse_items(depth + 1)?;
            self.skip_ws();
            if self.peek() != Some(b')') {
                return Err(self.error("expected `)` closing fixpoint group"));
            }
            self.pos += 1;
            return Ok(PipelineItem::Fixpoint(inner));
        }
        if word == "fixpoint" {
            return Err(self.error("`fixpoint` must be followed by `(`"));
        }
        Ok(PipelineItem::Pass(word.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let spec = PipelineSpec::parse(DEFAULT_PIPELINE).unwrap();
        assert_eq!(spec.to_string(), DEFAULT_PIPELINE);
        assert_eq!(PipelineSpec::parse(&spec.to_string()).unwrap(), spec);
        // The structurally-built default is the same spec.
        assert_eq!(PipelineSpec::default_optimization(), spec);
    }

    #[test]
    fn whitespace_is_canonicalized() {
        let spec = PipelineSpec::parse(" mem2reg ,\n fixpoint( dce , simplifycfg ) ").unwrap();
        assert_eq!(spec.to_string(), "mem2reg,fixpoint(dce,simplifycfg)");
    }

    #[test]
    fn nested_fixpoints_round_trip() {
        let text = "fixpoint(constfold,fixpoint(dce,cse),simplifycfg)";
        let spec = PipelineSpec::parse(text).unwrap();
        assert_eq!(spec.to_string(), text);
    }

    #[test]
    fn empty_pipeline_is_allowed() {
        let spec = PipelineSpec::parse("").unwrap();
        assert!(spec.items().is_empty());
        assert_eq!(spec.to_string(), "");
        assert_eq!(PipelineSpec::parse("  \n ").unwrap(), PipelineSpec::empty());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "mem2reg,",
            ",dce",
            "fixpoint",
            "fixpoint(",
            "fixpoint)",
            "fixpoint(dce",
            "fixpoint()",
            "dce)",
            "dce extra",
            "Mem2Reg",
        ] {
            assert!(PipelineSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = PipelineSpec::parse("dce,!").unwrap_err();
        assert_eq!(err.position, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}

//! The [`PassManager`]: executes a [`PipelineSpec`] with a
//! change-driven fixpoint, per-pass instrumentation, optional
//! interleaved verification, and an execution budget for bisection.
//!
//! # Fixpoint semantics
//!
//! A `fixpoint(...)` group sweeps its items in order until a sweep
//! makes no *progress* (no executed pass reports a nonzero headline
//! counter — exactly the exit condition of the historical
//! `optimize_function` loop, so the default pipeline's output is
//! byte-identical to it). Within the sweeps, an item is *skipped* when
//! nothing has mutated the function since that item's own last run:
//! every builtin pass is idempotent, so such a rerun is provably a
//! no-op and eliding it cannot change the result — it only removes the
//! wasted trailing all-zero round the old loop always paid for.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use crate::dom::DomTree;
use crate::function::Function;
use crate::module::{FuncId, Module};
use crate::passmgr::{create_pass, AnalysisManager, ModulePass, Pass, PipelineItem, PipelineSpec};
use crate::verify::{verify_function_with, verify_module, VerifyError};

/// Pseudo-function name used in trace entries for module-level passes.
pub const MODULE_SCOPE: &str = "<module>";

/// An error from building or running a pipeline.
#[derive(Debug)]
pub enum PassManagerError {
    /// The spec names a pass that is not registered.
    UnknownPass(String),
    /// `--verify-each` found broken IR right after a pass application.
    Verify {
        /// The pass that just ran.
        pass: String,
        /// The function being optimized when verification failed.
        function: String,
        /// The underlying verifier diagnostic.
        error: VerifyError,
    },
}

impl fmt::Display for PassManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassManagerError::UnknownPass(name) => {
                write!(f, "unknown pass `{name}` in pipeline spec")
            }
            PassManagerError::Verify {
                pass,
                function,
                error,
            } => write!(
                f,
                "IR broken after pass `{pass}` on function `{function}`: {error}"
            ),
        }
    }
}

impl std::error::Error for PassManagerError {}

/// Statistics for one pass across a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PassStat {
    /// Number of times the pass executed.
    pub runs: u64,
    /// Executions that mutated the IR.
    pub changed_runs: u64,
    /// Total wall time spent inside the pass, in nanoseconds. Zero
    /// unless timing is on ([`PassManager::set_timing`]).
    pub wall_nanos: u128,
    counters: Vec<(&'static str, u64)>,
}

impl PassStat {
    fn bump_counter(&mut self, name: &'static str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += v,
            None => self.counters.push((name, v)),
        }
    }

    /// Named counters (`("allocas-promoted", 3)`, ...) in first-seen
    /// order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// The value of one named counter (0 if never reported).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Aggregated observability for a pipeline run (or several runs — the
/// manager accumulates until dropped). Built on demand by
/// [`PassManager::stats`]; the hot path updates per-item [`PassStat`]s
/// by direct field access instead.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Total pass executions (function and module passes).
    pub executions: u64,
    /// Fixpoint-item runs elided because nothing mutated since the
    /// item's previous run.
    pub skipped: u64,
    order: Vec<&'static str>,
    per_pass: HashMap<&'static str, PassStat>,
}

impl PipelineStats {
    fn entry(&mut self, name: &'static str) -> &mut PassStat {
        if !self.per_pass.contains_key(name) {
            self.order.push(name);
            self.per_pass.insert(name, PassStat::default());
        }
        self.per_pass.get_mut(name).expect("just inserted")
    }

    /// Folds one item's accumulated stats into the aggregate (a pass
    /// appearing at several pipeline positions merges by name).
    fn merge(&mut self, name: &'static str, stat: &PassStat) {
        if stat.runs == 0 {
            return;
        }
        let agg = self.entry(name);
        agg.runs += stat.runs;
        agg.changed_runs += stat.changed_runs;
        agg.wall_nanos += stat.wall_nanos;
        for &(cname, v) in stat.counters() {
            agg.bump_counter(cname, v);
        }
    }

    /// Per-pass stats for `name`, if that pass ever ran.
    pub fn pass(&self, name: &str) -> Option<&PassStat> {
        self.per_pass.get(name)
    }

    /// Every pass that ran, in first-execution order.
    pub fn passes(&self) -> impl Iterator<Item = (&'static str, &PassStat)> {
        self.order.iter().map(|n| (*n, &self.per_pass[*n]))
    }

    /// Sum of one named counter across all passes (counter names are
    /// unique per pass in practice).
    pub fn counter_total(&self, counter: &str) -> u64 {
        self.per_pass.values().map(|s| s.counter(counter)).sum()
    }

    /// Renders the stats as a JSON document. `pipeline` is echoed into
    /// the report so a stats file is self-describing.
    pub fn to_json(&self, pipeline: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"pipeline\": \"{}\",", escape_json(pipeline));
        let _ = writeln!(out, "  \"executions\": {},", self.executions);
        let _ = writeln!(out, "  \"skipped\": {},", self.skipped);
        out.push_str("  \"passes\": [\n");
        let total = self.order.len();
        for (i, (name, stat)) in self.passes().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"runs\": {}, \"changed_runs\": {}, \"wall_us\": {}, \"counters\": {{",
                escape_json(name),
                stat.runs,
                stat.changed_runs,
                stat.wall_nanos / 1_000
            );
            for (j, (cname, v)) in stat.counters().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", escape_json(cname), v);
            }
            out.push_str("}}");
            out.push_str(if i + 1 == total { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// One pass application, in execution order. The bisector replays a
/// prefix of this trace to isolate the first diverging application.
/// Recorded only when tracing is on ([`PassManager::set_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Function the pass ran on ([`MODULE_SCOPE`] for module passes).
    pub function: String,
    /// Pass name.
    pub pass: &'static str,
    /// Whether the application mutated the IR.
    pub changed: bool,
}

enum Item {
    Single(Box<dyn Pass>, PassStat),
    Fixpoint(Vec<Item>),
}

fn instantiate(items: &[PipelineItem]) -> Result<Vec<Item>, PassManagerError> {
    items
        .iter()
        .map(|item| match item {
            PipelineItem::Pass(name) => create_pass(name)
                .map(|p| Item::Single(p, PassStat::default()))
                .ok_or_else(|| PassManagerError::UnknownPass(name.clone())),
            PipelineItem::Fixpoint(inner) => instantiate(inner).map(Item::Fixpoint),
        })
        .collect()
}

fn merge_items(items: &[Item], into: &mut PipelineStats) {
    for item in items {
        match item {
            Item::Single(pass, stat) => into.merge(pass.name(), stat),
            Item::Fixpoint(inner) => merge_items(inner, into),
        }
    }
}

/// Outcome of running one item (or sub-tree of items).
#[derive(Clone, Copy)]
enum Outcome {
    /// The execution budget was exhausted; stop everything, leaving the
    /// module in its exact mid-pipeline state.
    Stopped,
    Done {
        /// Anything mutated (drives analysis invalidation + skipping).
        mutated: bool,
        /// Any headline counter was nonzero (drives fixpoint exit, the
        /// historical loop's condition).
        progress: bool,
    },
}

/// Executes pipelines built from a [`PipelineSpec`] plus optional
/// appended module passes.
pub struct PassManager {
    spec: PipelineSpec,
    items: Vec<Item>,
    module_passes: Vec<(Box<dyn ModulePass>, PassStat)>,
    verify_each: bool,
    budget: Option<u64>,
    executions: u64,
    skipped: u64,
    timing: bool,
    trace_enabled: bool,
    trace: Vec<TraceEntry>,
}

impl PassManager {
    /// Builds a manager for `spec`.
    ///
    /// # Errors
    ///
    /// [`PassManagerError::UnknownPass`] if the spec names an
    /// unregistered pass.
    pub fn from_spec(spec: &PipelineSpec) -> Result<Self, PassManagerError> {
        Self::build(spec.clone())
    }

    fn build(spec: PipelineSpec) -> Result<Self, PassManagerError> {
        Ok(PassManager {
            items: instantiate(spec.items())?,
            spec,
            module_passes: Vec::new(),
            verify_each: false,
            budget: None,
            executions: 0,
            skipped: 0,
            timing: false,
            trace_enabled: false,
            trace: Vec::new(),
        })
    }

    /// The default optimization pipeline
    /// ([`crate::passmgr::DEFAULT_PIPELINE`]).
    pub fn standard() -> Self {
        Self::build(PipelineSpec::default_optimization())
            .expect("default pipeline names only registered passes")
    }

    /// A manager with no function pipeline (module passes only).
    pub fn empty() -> Self {
        Self::build(PipelineSpec::empty()).expect("empty pipeline is valid")
    }

    /// Appends a module-level pass; module passes run after the
    /// function pipeline, in insertion order.
    pub fn add_module_pass(&mut self, pass: Box<dyn ModulePass>) {
        self.module_passes.push((pass, PassStat::default()));
    }

    /// Verifies the IR after every pass application (borrowing the
    /// cached dominator tree, so this is not quadratic in pipeline
    /// length).
    pub fn set_verify_each(&mut self, on: bool) {
        self.verify_each = on;
    }

    /// Caps the number of pass executions; the run stops (successfully)
    /// once the cap is reached, leaving the module in its exact
    /// mid-pipeline state. `None` removes the cap. Scheduling is
    /// deterministic, so a budget of `n` reproduces precisely the first
    /// `n` applications of an uncapped run — the bisector's lever.
    pub fn set_execution_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// The spec this manager was built from.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Canonical text of the full pipeline including module passes
    /// (`"mem2reg,fixpoint(...)+duplicate"`). Stable across runs —
    /// used inside store memo keys.
    pub fn describe(&self) -> String {
        let mut text = self.spec.to_string();
        for (mp, _) in &self.module_passes {
            text.push('+');
            text.push_str(mp.name());
        }
        text
    }

    /// Accumulated stats (across every run since construction),
    /// aggregated by pass name in pipeline order.
    pub fn stats(&self) -> PipelineStats {
        let mut out = PipelineStats {
            executions: self.executions,
            skipped: self.skipped,
            ..PipelineStats::default()
        };
        merge_items(&self.items, &mut out);
        for (mp, stat) in &self.module_passes {
            out.merge(mp.name(), stat);
        }
        out
    }

    /// Measures per-pass wall time ([`PassStat::wall_nanos`]). Off by
    /// default so plain optimization runs pay no clock reads; the
    /// `--stats` CLI path turns it on.
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
    }

    /// Records a [`TraceEntry`] per pass application. Off by default —
    /// the bisector turns it on; plain optimization runs skip the
    /// per-execution allocation.
    pub fn set_trace(&mut self, on: bool) {
        self.trace_enabled = on;
    }

    /// Execution trace (across every run since tracing was enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Runs the function pipeline on one function (module passes, which
    /// need a whole [`Module`], do not run). Returns whether anything
    /// mutated.
    ///
    /// # Errors
    ///
    /// [`PassManagerError::Verify`] when `--verify-each` is on and a
    /// pass breaks the IR.
    pub fn run_function(&mut self, func: &mut Function) -> Result<bool, PassManagerError> {
        let mut items = std::mem::take(&mut self.items);
        let result = self.run_function_items(&mut items, func);
        self.items = items;
        match result? {
            Outcome::Stopped => Ok(true),
            Outcome::Done { mutated, .. } => Ok(mutated),
        }
    }

    /// Runs the function pipeline over every function (in id order),
    /// then the module passes. Returns whether anything mutated.
    ///
    /// # Errors
    ///
    /// [`PassManagerError::Verify`] when `--verify-each` is on and a
    /// pass breaks the IR.
    pub fn run_module(&mut self, module: &mut Module) -> Result<bool, PassManagerError> {
        let mut any = false;
        let mut items = std::mem::take(&mut self.items);
        let mut function_result = Ok(Outcome::Done {
            mutated: false,
            progress: false,
        });
        for idx in 0..module.num_functions() {
            let func = module.function_mut(FuncId::new(idx));
            function_result = self.run_function_items(&mut items, func);
            match &function_result {
                Ok(Outcome::Stopped) | Err(_) => break,
                Ok(Outcome::Done { mutated, .. }) => any |= mutated,
            }
        }
        self.items = items;
        match function_result? {
            Outcome::Stopped => return Ok(true),
            Outcome::Done { .. } => {}
        }

        let mut module_passes = std::mem::take(&mut self.module_passes);
        let result = self.run_module_passes(&mut module_passes, module);
        self.module_passes = module_passes;
        match result? {
            Outcome::Stopped => Ok(true),
            Outcome::Done { mutated, .. } => Ok(any | mutated),
        }
    }

    fn run_function_items(
        &mut self,
        items: &mut [Item],
        func: &mut Function,
    ) -> Result<Outcome, PassManagerError> {
        let mut am = AnalysisManager::new();
        self.run_items(items, func, &mut am)
    }

    fn run_items(
        &mut self,
        items: &mut [Item],
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<Outcome, PassManagerError> {
        let mut mutated = false;
        let mut progress = false;
        for item in items.iter_mut() {
            match self.run_item(item, func, am)? {
                Outcome::Stopped => return Ok(Outcome::Stopped),
                Outcome::Done {
                    mutated: m,
                    progress: p,
                } => {
                    mutated |= m;
                    progress |= p;
                }
            }
        }
        Ok(Outcome::Done { mutated, progress })
    }

    fn run_item(
        &mut self,
        item: &mut Item,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<Outcome, PassManagerError> {
        match item {
            Item::Single(pass, stat) => self.run_single(pass.as_mut(), stat, func, am),
            Item::Fixpoint(inner) => self.run_fixpoint(inner, func, am),
        }
    }

    /// The change-driven fixpoint. `last_run[i] == generation` means
    /// nothing has mutated since item `i`'s own previous run — rerunning
    /// an idempotent pass there is a no-op, so it is skipped.
    fn run_fixpoint(
        &mut self,
        items: &mut [Item],
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<Outcome, PassManagerError> {
        let mut last_run = vec![0u64; items.len()];
        let mut generation = 1u64;
        let mut mutated_total = false;
        let mut progress_total = false;
        loop {
            let mut progress_this_sweep = false;
            for (i, item) in items.iter_mut().enumerate() {
                if last_run[i] == generation {
                    self.skipped += 1;
                    continue;
                }
                match self.run_item(item, func, am)? {
                    Outcome::Stopped => return Ok(Outcome::Stopped),
                    Outcome::Done { mutated, progress } => {
                        if mutated {
                            generation += 1;
                            mutated_total = true;
                        }
                        last_run[i] = generation;
                        if progress {
                            progress_this_sweep = true;
                            progress_total = true;
                        }
                    }
                }
            }
            if !progress_this_sweep {
                return Ok(Outcome::Done {
                    mutated: mutated_total,
                    progress: progress_total,
                });
            }
        }
    }

    fn budget_reached(&self) -> bool {
        self.budget.is_some_and(|cap| self.executions >= cap)
    }

    fn run_single(
        &mut self,
        pass: &mut dyn Pass,
        stat: &mut PassStat,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<Outcome, PassManagerError> {
        if self.budget_reached() {
            return Ok(Outcome::Stopped);
        }
        let start = self.timing.then(Instant::now);
        let changed = pass.run(func, am);
        let wall = start.map_or(0, |s| s.elapsed().as_nanos());

        self.executions += 1;
        stat.runs += 1;
        stat.wall_nanos += wall;
        if changed.is_yes() {
            stat.changed_runs += 1;
        }
        let mut reported = false;
        let mut counter_progress = false;
        pass.report_stats(&mut |cname, v| {
            reported = true;
            counter_progress |= v > 0;
            stat.bump_counter(cname, v);
        });
        let progress = if reported {
            counter_progress
        } else {
            changed.is_yes()
        };

        if changed.is_yes() {
            am.retain(&pass.preserved());
        }
        if self.trace_enabled {
            self.trace.push(TraceEntry {
                function: func.name().to_string(),
                pass: pass.name(),
                changed: changed.is_yes(),
            });
        }

        if self.verify_each {
            let dt = am.get::<DomTree>(func);
            verify_function_with(func, &dt).map_err(|error| PassManagerError::Verify {
                pass: pass.name().to_string(),
                function: func.name().to_string(),
                error,
            })?;
        }
        Ok(Outcome::Done {
            mutated: changed.is_yes(),
            progress,
        })
    }

    fn run_module_passes(
        &mut self,
        module_passes: &mut [(Box<dyn ModulePass>, PassStat)],
        module: &mut Module,
    ) -> Result<Outcome, PassManagerError> {
        let mut mutated_total = false;
        for (pass, stat) in module_passes.iter_mut() {
            if self.budget_reached() {
                return Ok(Outcome::Stopped);
            }
            let start = self.timing.then(Instant::now);
            let changed = pass.run(module);
            let wall = start.map_or(0, |s| s.elapsed().as_nanos());

            self.executions += 1;
            stat.runs += 1;
            stat.wall_nanos += wall;
            if changed.is_yes() {
                stat.changed_runs += 1;
            }
            pass.report_stats(&mut |cname, v| stat.bump_counter(cname, v));
            mutated_total |= changed.is_yes();
            if self.trace_enabled {
                self.trace.push(TraceEntry {
                    function: MODULE_SCOPE.to_string(),
                    pass: pass.name(),
                    changed: changed.is_yes(),
                });
            }

            if self.verify_each {
                verify_module(module).map_err(|error| PassManagerError::Verify {
                    pass: pass.name().to_string(),
                    function: error.function().to_string(),
                    error,
                })?;
            }
        }
        Ok(Outcome::Done {
            mutated: mutated_total,
            progress: mutated_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::passes;
    use crate::passmgr::Changed;

    /// The historical free-function loop, verbatim — the reference the
    /// manager must match byte-for-byte.
    fn naive_optimize(func: &mut Function) -> u64 {
        let mut executions = 1u64;
        passes::promote_memory_to_registers(func);
        loop {
            let folded = passes::constant_fold(func);
            let simplified = passes::simplify_instructions(func);
            let merged = passes::eliminate_common_subexpressions(func);
            let removed = passes::eliminate_dead_code(func);
            let blocks = passes::simplify_cfg(func);
            executions += 5;
            if folded == 0 && simplified == 0 && merged == 0 && removed == 0 && blocks == 0 {
                break;
            }
        }
        executions
    }

    const SAMPLE: &str = r#"
module "m"

fn @f(i64) -> i64 {
bb0:
  %v0 = alloca i64, 1
  store i64 0, %v0
  %v1 = icmp slt %arg0, 10
  condbr %v1, bb1, bb2
bb1:
  %v2 = add i64 %arg0, 0
  store i64 %v2, %v0
  br bb2
bb2:
  %v3 = load i64, %v0
  %v4 = mul i64 %v3, 1
  ret %v4
}
"#;

    #[test]
    fn manager_matches_naive_loop_and_skips_the_noop_round() {
        let mut naive = parse_module(SAMPLE).unwrap();
        let mut managed = naive.clone();
        let mut naive_execs = 0u64;
        for idx in 0..naive.num_functions() {
            naive_execs += naive_optimize(naive.function_mut(FuncId::new(idx)));
        }
        let mut pm = PassManager::standard();
        pm.run_module(&mut managed).unwrap();
        assert_eq!(
            managed.to_text(),
            naive.to_text(),
            "default pipeline must be byte-identical to the historical loop"
        );
        assert!(
            pm.stats().executions < naive_execs,
            "change tracking must skip the trailing all-zero round \
             ({} managed vs {} naive executions)",
            pm.stats().executions,
            naive_execs
        );
        assert!(pm.stats().skipped > 0, "some fixpoint items were elided");
    }

    #[test]
    fn budget_replays_exact_prefixes() {
        let full = {
            let mut m = parse_module(SAMPLE).unwrap();
            let mut pm = PassManager::standard();
            pm.set_trace(true);
            pm.run_module(&mut m).unwrap();
            (m, pm.stats().executions, pm.trace().to_vec())
        };
        // Every prefix budget must reproduce the uncapped run's trace
        // prefix; the full budget must reproduce the final module.
        for n in 0..=full.1 {
            let mut m = parse_module(SAMPLE).unwrap();
            let mut pm = PassManager::standard();
            pm.set_trace(true);
            pm.set_execution_budget(Some(n));
            pm.run_module(&mut m).unwrap();
            assert_eq!(pm.stats().executions, n);
            assert_eq!(pm.trace(), &full.2[..n as usize]);
            if n == full.1 {
                assert_eq!(m.to_text(), full.0.to_text());
            }
        }
    }

    #[test]
    fn verify_each_reuses_the_cached_domtree() {
        let mut m = parse_module(SAMPLE).unwrap();
        let mut pm = PassManager::standard();
        pm.set_verify_each(true);
        let before = DomTree::computations();
        pm.run_module(&mut m).unwrap();
        let computes = DomTree::computations() - before;
        // Way fewer dominator-tree builds than pass applications +
        // verifications: the interleaved verifier borrows the cache.
        assert!(
            computes < pm.stats().executions * 2,
            "{computes} computes for {} executions",
            pm.stats().executions
        );
    }

    #[test]
    fn verify_each_reports_the_breaking_pass() {
        struct Vandal;
        impl Pass for Vandal {
            fn name(&self) -> &'static str {
                "vandal"
            }
            fn run(&mut self, func: &mut Function, _am: &mut AnalysisManager) -> Changed {
                // Unlink the entry block's terminator: broken IR.
                let entry = func.entry();
                let last = *func.block(entry).insts().last().unwrap();
                func.unlink_inst(entry, last);
                Changed::Yes
            }
        }
        let mut m = parse_module(SAMPLE).unwrap();
        let mut pm = PassManager::empty();
        pm.items
            .push(Item::Single(Box::new(Vandal), PassStat::default()));
        pm.set_verify_each(true);
        let err = pm.run_module(&mut m).unwrap_err();
        match err {
            PassManagerError::Verify { pass, function, .. } => {
                assert_eq!(pass, "vandal");
                assert_eq!(function, "f");
            }
            other => panic!("expected verify error, got {other}"),
        }
    }

    #[test]
    fn unknown_pass_is_rejected_at_build_time() {
        let spec = PipelineSpec::parse("mem2reg,nosuchpass").unwrap();
        match PassManager::from_spec(&spec) {
            Err(PassManagerError::UnknownPass(name)) => assert_eq!(name, "nosuchpass"),
            other => panic!("expected UnknownPass, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn stats_json_has_the_documented_shape() {
        let mut m = parse_module(SAMPLE).unwrap();
        let mut pm = PassManager::standard();
        pm.set_timing(true);
        pm.run_module(&mut m).unwrap();
        let json = pm.stats().to_json(&pm.describe());
        assert!(json.contains("\"pipeline\": \"mem2reg,fixpoint("));
        assert!(json.contains("\"allocas-promoted\": 1"));
        assert!(json.contains("\"executions\""));
        assert!(json.contains("\"skipped\""));
    }
}

//! A compact, typed SSA intermediate representation modeled after LLVM IR.
//!
//! This crate is the compiler substrate for the IPAS reproduction. The
//! original paper implements IPAS as LLVM 3.6 passes; everything IPAS needs
//! from LLVM — instruction opcodes and categories, basic blocks, functions,
//! def-use chains, and a pass pipeline — is provided here from scratch.
//!
//! # Architecture
//!
//! * [`Module`] — a collection of [`Function`]s addressed by [`FuncId`].
//! * [`Function`] — an arena of [`Inst`]s ([`InstId`]) grouped into
//!   [`Block`]s ([`BlockId`]); the block vector order is the layout order.
//! * [`Value`] — an SSA operand: an instruction result, a function
//!   parameter, or a constant.
//! * [`FunctionBuilder`] — an append-oriented builder used by the SciL
//!   frontend and by tests.
//! * [`printer`]/[`parser`] — a round-trippable textual format.
//! * [`verify`] — structural and type checking.
//! * [`dom`] — dominator tree and dominance frontiers.
//! * [`passes`] — mem2reg (SSA construction), constant folding, and dead
//!   code elimination.
//!
//! # Example
//!
//! Build, verify and print a function computing `a * a + b`:
//!
//! ```
//! use ipas_ir::{FunctionBuilder, Module, Type, Value, BinOp};
//!
//! let mut module = Module::new("example");
//! let mut b = FunctionBuilder::new("maddsq", &[Type::I64, Type::I64], Type::I64);
//! let entry = b.entry_block();
//! b.switch_to_block(entry);
//! let a = Value::param(0);
//! let sq = b.binary(BinOp::Mul, Type::I64, a, a);
//! let sum = b.binary(BinOp::Add, Type::I64, sq, Value::param(1));
//! b.ret(Some(sum));
//! let func = b.finish();
//! ipas_ir::verify::verify_function(&func).unwrap();
//! module.add_function(func);
//! assert!(module.to_text().contains("mul i64"));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod dom;
pub mod function;
pub mod inst;
pub mod module;
pub mod parser;
pub mod passes;
pub mod passmgr;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use function::{Block, BlockId, Function, InstId};
pub use inst::{BinOp, CastOp, FcmpPred, IcmpPred, Inst, Intrinsic};
pub use module::{FuncId, Module};
pub use types::Type;
pub use value::{Constant, Value};

//! SSA values and constants.

use std::fmt;

use crate::function::InstId;

/// A compile-time constant operand.
///
/// Floats are stored by their IEEE-754 bit pattern so that constants are
/// `Eq`/`Hash` (needed by value-numbering style passes); use
/// [`Constant::f64`] to construct one and [`Constant::as_f64`] to read it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Constant {
    /// A 64-bit signed integer constant.
    I64(i64),
    /// A 64-bit float constant, stored as raw bits.
    F64Bits(u64),
    /// A boolean constant.
    Bool(bool),
    /// The null pointer constant.
    Null,
}

impl Constant {
    /// Creates a float constant from an `f64`.
    pub fn f64(v: f64) -> Self {
        Constant::F64Bits(v.to_bits())
    }

    /// Returns the float value if this is a float constant.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Constant::F64Bits(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// Returns the integer value if this is an integer constant.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Constant::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the boolean value if this is a boolean constant.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Constant::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The [`crate::Type`] of this constant.
    pub fn ty(self) -> crate::Type {
        match self {
            Constant::I64(_) => crate::Type::I64,
            Constant::F64Bits(_) => crate::Type::F64,
            Constant::Bool(_) => crate::Type::Bool,
            Constant::Null => crate::Type::Ptr,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::I64(v) => write!(f, "{v}"),
            Constant::F64Bits(bits) => {
                let v = f64::from_bits(*bits);
                // Print with enough precision to round-trip exactly; the
                // parser re-reads via `f64::from_str`.
                if v.is_nan() {
                    // `{:?}` renders every NaN as `NaN`, erasing the sign
                    // and payload bits (x86's `0.0 / 0.0` is the *negative*
                    // quiet NaN `0xfff8…`). Spell non-canonical NaNs
                    // bit-exactly so the round trip preserves them.
                    if *bits == f64::NAN.to_bits() {
                        write!(f, "NaN")
                    } else {
                        write!(f, "NaN(0x{bits:016x})")
                    }
                } else if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v:?}")
                }
            }
            Constant::Bool(v) => write!(f, "{v}"),
            Constant::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Constant {
    fn from(v: i64) -> Self {
        Constant::I64(v)
    }
}

impl From<f64> for Constant {
    fn from(v: f64) -> Self {
        Constant::f64(v)
    }
}

impl From<bool> for Constant {
    fn from(v: bool) -> Self {
        Constant::Bool(v)
    }
}

/// An SSA operand: the result of an instruction, a function parameter, or
/// a constant.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// The result of the instruction with the given id.
    Inst(InstId),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// An immediate constant.
    Const(Constant),
}

impl Value {
    /// Convenience constructor for an instruction-result value.
    pub fn inst(id: InstId) -> Self {
        Value::Inst(id)
    }

    /// Convenience constructor for a parameter value.
    pub fn param(index: u32) -> Self {
        Value::Param(index)
    }

    /// Convenience constructor for an integer constant.
    pub fn i64(v: i64) -> Self {
        Value::Const(Constant::I64(v))
    }

    /// Convenience constructor for a float constant.
    pub fn f64(v: f64) -> Self {
        Value::Const(Constant::f64(v))
    }

    /// Convenience constructor for a boolean constant.
    pub fn bool(v: bool) -> Self {
        Value::Const(Constant::Bool(v))
    }

    /// The null pointer value.
    pub fn null() -> Self {
        Value::Const(Constant::Null)
    }

    /// Returns the instruction id if this value is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the constant if this value is a constant.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Value::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Returns `true` if this value is a constant.
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "%v{}", id.index()),
            Value::Param(n) => write!(f, "%arg{n}"),
            Value::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_accessors() {
        assert_eq!(Constant::I64(7).as_i64(), Some(7));
        assert_eq!(Constant::I64(7).as_f64(), None);
        assert_eq!(Constant::f64(1.5).as_f64(), Some(1.5));
        assert_eq!(Constant::Bool(true).as_bool(), Some(true));
        assert_eq!(Constant::Null.ty(), crate::Type::Ptr);
    }

    #[test]
    fn float_constants_hash_by_bits() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Constant::f64(0.1));
        assert!(set.contains(&Constant::f64(0.1)));
        assert!(!set.contains(&Constant::f64(0.2)));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::param(3).to_string(), "%arg3");
        assert_eq!(Value::i64(-4).to_string(), "-4");
        assert_eq!(Value::f64(2.0).to_string(), "2.0");
        assert_eq!(Value::bool(true).to_string(), "true");
        assert_eq!(Value::null().to_string(), "null");
    }

    #[test]
    fn value_conversions() {
        let v: Value = Constant::I64(1).into();
        assert!(v.is_const());
        assert_eq!(v.as_const(), Some(Constant::I64(1)));
        assert_eq!(v.as_inst(), None);
    }

    #[test]
    fn nan_constant_round_trips() {
        let c = Constant::f64(f64::NAN);
        assert!(c.as_f64().unwrap().is_nan());
    }
}

//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! The parser is line-oriented and resolves forward references (phi
//! back-edges, mutually recursive calls) with a pre-scan pass. Instruction
//! ids are renumbered densely in definition order, so parsing a printed
//! function whose arena contained unlinked slots yields an equivalent,
//! compacted function.

use std::collections::HashMap;
use std::fmt;

use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOp, Callee, CastOp, FcmpPred, IcmpPred, Inst, Intrinsic};
use crate::module::Module;
use crate::types::Type;
use crate::value::{Constant, Value};

/// Error produced when parsing IR text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole module from text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending line.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();

    let mut idx = 0;
    let mut name = "module".to_string();
    if let Some(&(_, first)) = lines.first() {
        if let Some(rest) = first.strip_prefix("module") {
            name = rest.trim().trim_matches('"').to_string();
            idx = 1;
        }
    }
    let mut module = Module::new(name);

    // Pass 1: register all function signatures so calls resolve by name.
    let mut headers = Vec::new();
    let mut i = idx;
    while i < lines.len() {
        let (ln, line) = lines[i];
        if line.starts_with("fn @") {
            let (fname, params, ret) = parse_header(ln, line)?;
            headers.push((ln, fname.clone(), params.clone(), ret));
            i += 1;
        } else {
            i += 1;
        }
    }
    let mut sig_ids = HashMap::new();
    for (ln, fname, params, ret) in &headers {
        if sig_ids.contains_key(fname) {
            // `Module::add_function` asserts on duplicates; report a
            // positioned error instead of panicking.
            return Err(ParseError::new(
                *ln,
                format!("duplicate function `@{fname}`"),
            ));
        }
        let id = module.add_function(Function::new(fname.clone(), params, *ret));
        sig_ids.insert(fname.clone(), id);
    }

    // Pass 2: parse bodies.
    let mut i = idx;
    while i < lines.len() {
        let (ln, line) = lines[i];
        if !line.starts_with("fn @") {
            return Err(ParseError::new(
                ln,
                format!("expected `fn @...`, got `{line}`"),
            ));
        }
        let (fname, params, ret) = parse_header(ln, line)?;
        let mut body = Vec::new();
        i += 1;
        let mut closed = false;
        while i < lines.len() {
            let (ln2, l2) = lines[i];
            i += 1;
            if l2 == "}" {
                closed = true;
                break;
            }
            body.push((ln2, l2));
        }
        if !closed {
            return Err(ParseError::new(ln, "unterminated function body"));
        }
        let func = parse_body(&fname, &params, ret, &body, &module)?;
        let id = sig_ids[&fname];
        *module.function_mut(id) = func;
    }
    Ok(module)
}

/// Parses a single function (no `module` line, calls to module functions
/// are unresolvable).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending line.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let module = parse_module(text)?;
    let (_, func) = module
        .functions()
        .next()
        .ok_or_else(|| ParseError::new(1, "no function found"))?;
    Ok(func.clone())
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_header(ln: usize, line: &str) -> Result<(String, Vec<Type>, Type), ParseError> {
    // fn @name(ty, ty) -> ty {
    let rest = line
        .strip_prefix("fn @")
        .ok_or_else(|| ParseError::new(ln, "expected `fn @`"))?;
    let open = rest
        .find('(')
        .ok_or_else(|| ParseError::new(ln, "expected `(` in function header"))?;
    let name = rest[..open].trim().to_string();
    if name.is_empty() {
        return Err(ParseError::new(ln, "empty function name"));
    }
    // Search for the close paren *after* the open paren: `fn @f)(` used
    // to pick the earlier `)` and panic on the reversed slice.
    let close = rest[open..]
        .find(')')
        .map(|c| open + c)
        .ok_or_else(|| ParseError::new(ln, "expected `)` in function header"))?;
    let params_str = &rest[open + 1..close];
    let mut params = Vec::new();
    for p in params_str.split(',') {
        let p = p.trim();
        if p.is_empty() {
            continue;
        }
        params.push(
            p.parse::<Type>()
                .map_err(|e| ParseError::new(ln, e.to_string()))?,
        );
    }
    let tail = rest[close + 1..].trim().trim_end_matches('{').trim();
    let ret = if let Some(r) = tail.strip_prefix("->") {
        r.trim()
            .parse::<Type>()
            .map_err(|e| ParseError::new(ln, e.to_string()))?
    } else {
        Type::Void
    };
    Ok((name, params, ret))
}

struct BodyCtx<'a> {
    ln: usize,
    defs: &'a HashMap<u32, InstId>,
    module: &'a Module,
}

fn parse_body(
    name: &str,
    params: &[Type],
    ret: Type,
    body: &[(usize, &str)],
    module: &Module,
) -> Result<Function, ParseError> {
    // Pre-scan: map textual %vN definitions to dense ids, count blocks.
    let mut defs: HashMap<u32, InstId> = HashMap::new();
    let mut num_blocks = 0usize;
    let mut next = 0usize;
    for &(ln, line) in body {
        if line.ends_with(':') {
            num_blocks += 1;
            continue;
        }
        if let Some(eq) = line.find('=') {
            let lhs = line[..eq].trim();
            let n = parse_vnum(ln, lhs)?;
            defs.insert(n, InstId::new(next));
        }
        next += 1;
    }
    if num_blocks == 0 {
        return Err(ParseError::new(
            body.first().map(|&(l, _)| l).unwrap_or(0),
            "function body has no blocks",
        ));
    }

    let mut func = Function::new(name, params, ret);
    for _ in 1..num_blocks {
        func.add_block();
    }

    let mut current: Option<BlockId> = None;
    for &(ln, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            let bb = parse_block_ref(ln, label)?;
            if bb.index() >= num_blocks {
                return Err(ParseError::new(
                    ln,
                    format!("block label {label} out of order"),
                ));
            }
            current = Some(bb);
            continue;
        }
        let bb =
            current.ok_or_else(|| ParseError::new(ln, "instruction before first block label"))?;
        let text = match line.find('=') {
            Some(eq) => line[eq + 1..].trim(),
            None => line,
        };
        let ctx = BodyCtx {
            ln,
            defs: &defs,
            module,
        };
        let inst = parse_inst(&ctx, text, num_blocks)?;
        func.append_inst(bb, inst);
    }
    Ok(func)
}

fn parse_vnum(ln: usize, tok: &str) -> Result<u32, ParseError> {
    tok.strip_prefix("%v")
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| ParseError::new(ln, format!("expected `%vN`, got `{tok}`")))
}

fn parse_block_ref(ln: usize, tok: &str) -> Result<BlockId, ParseError> {
    tok.strip_prefix("bb")
        .and_then(|s| s.parse::<usize>().ok())
        .map(BlockId::new)
        .ok_or_else(|| ParseError::new(ln, format!("expected `bbN`, got `{tok}`")))
}

fn parse_value(ctx: &BodyCtx<'_>, tok: &str) -> Result<Value, ParseError> {
    let tok = tok.trim();
    if let Some(rest) = tok.strip_prefix("%v") {
        let n: u32 = rest
            .parse()
            .map_err(|_| ParseError::new(ctx.ln, format!("bad value `{tok}`")))?;
        let id = ctx
            .defs
            .get(&n)
            .ok_or_else(|| ParseError::new(ctx.ln, format!("undefined value `{tok}`")))?;
        return Ok(Value::Inst(*id));
    }
    if let Some(rest) = tok.strip_prefix("%arg") {
        let n: u32 = rest
            .parse()
            .map_err(|_| ParseError::new(ctx.ln, format!("bad parameter `{tok}`")))?;
        return Ok(Value::Param(n));
    }
    match tok {
        "true" => return Ok(Value::bool(true)),
        "false" => return Ok(Value::bool(false)),
        "null" => return Ok(Value::null()),
        _ => {}
    }
    if tok.contains('.') || tok.contains("inf") || tok.contains("NaN") || tok.contains('e') {
        if let Ok(v) = tok.parse::<f64>() {
            return Ok(Value::Const(Constant::f64(v)));
        }
        if tok == "NaN" {
            return Ok(Value::Const(Constant::f64(f64::NAN)));
        }
        // Bit-exact NaN spelling from the printer: `NaN(0x<16 hex>)`
        // carries the sign and payload bits `{:?}` would erase.
        if let Some(hex) = tok.strip_prefix("NaN(0x").and_then(|r| r.strip_suffix(')')) {
            match u64::from_str_radix(hex, 16) {
                Ok(bits) if f64::from_bits(bits).is_nan() => {
                    return Ok(Value::Const(Constant::F64Bits(bits)));
                }
                Ok(_) => {
                    return Err(ParseError::new(
                        ctx.ln,
                        format!("`{tok}` spells a non-NaN bit pattern"),
                    ));
                }
                Err(_) => {
                    return Err(ParseError::new(ctx.ln, format!("bad NaN literal `{tok}`")));
                }
            }
        }
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(Value::i64(v));
    }
    Err(ParseError::new(
        ctx.ln,
        format!("unparseable value `{tok}`"),
    ))
}

fn split_commas(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

fn parse_inst(ctx: &BodyCtx<'_>, text: &str, num_blocks: usize) -> Result<Inst, ParseError> {
    let ln = ctx.ln;
    let (op, rest) = match text.find(' ') {
        Some(pos) => (&text[..pos], text[pos + 1..].trim()),
        None => (text, ""),
    };

    let check_bb = |bb: BlockId| -> Result<BlockId, ParseError> {
        if bb.index() >= num_blocks {
            Err(ParseError::new(ln, format!("branch to unknown block {bb}")))
        } else {
            Ok(bb)
        }
    };

    if let Some(binop) = BinOp::from_mnemonic(op) {
        // add i64 a, b
        let (ty_tok, ops) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError::new(ln, "expected type after binary opcode"))?;
        let ty: Type = ty_tok
            .parse()
            .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
        let parts = split_commas(ops);
        if parts.len() != 2 {
            return Err(ParseError::new(ln, "binary op takes two operands"));
        }
        return Ok(Inst::Binary {
            op: binop,
            ty,
            lhs: parse_value(ctx, parts[0])?,
            rhs: parse_value(ctx, parts[1])?,
        });
    }

    if let Some(castop) = CastOp::from_mnemonic(op) {
        // sitofp f64 a
        let (ty_tok, arg) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError::new(ln, "expected type after cast opcode"))?;
        let to: Type = ty_tok
            .parse()
            .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
        return Ok(Inst::Cast {
            op: castop,
            to,
            arg: parse_value(ctx, arg)?,
        });
    }

    match op {
        "icmp" | "fcmp" => {
            let (pred_tok, ops) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError::new(ln, "expected predicate"))?;
            let parts = split_commas(ops);
            if parts.len() != 2 {
                return Err(ParseError::new(ln, "comparison takes two operands"));
            }
            let lhs = parse_value(ctx, parts[0])?;
            let rhs = parse_value(ctx, parts[1])?;
            if op == "icmp" {
                let pred = IcmpPred::from_mnemonic(pred_tok).ok_or_else(|| {
                    ParseError::new(ln, format!("bad icmp predicate `{pred_tok}`"))
                })?;
                Ok(Inst::Icmp { pred, lhs, rhs })
            } else {
                let pred = FcmpPred::from_mnemonic(pred_tok).ok_or_else(|| {
                    ParseError::new(ln, format!("bad fcmp predicate `{pred_tok}`"))
                })?;
                Ok(Inst::Fcmp { pred, lhs, rhs })
            }
        }
        "select" => {
            let (ty_tok, ops) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError::new(ln, "expected type after select"))?;
            let ty: Type = ty_tok
                .parse()
                .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
            let parts = split_commas(ops);
            if parts.len() != 3 {
                return Err(ParseError::new(ln, "select takes three operands"));
            }
            Ok(Inst::Select {
                ty,
                cond: parse_value(ctx, parts[0])?,
                then_value: parse_value(ctx, parts[1])?,
                else_value: parse_value(ctx, parts[2])?,
            })
        }
        "alloca" => {
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return Err(ParseError::new(ln, "alloca takes `ty, count`"));
            }
            let ty: Type = parts[0]
                .parse()
                .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
            let count: u32 = parts[1]
                .parse()
                .map_err(|_| ParseError::new(ln, "bad alloca count"))?;
            Ok(Inst::Alloca { ty, count })
        }
        "load" => {
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return Err(ParseError::new(ln, "load takes `ty, addr`"));
            }
            let ty: Type = parts[0]
                .parse()
                .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
            Ok(Inst::Load {
                ty,
                addr: parse_value(ctx, parts[1])?,
            })
        }
        "store" => {
            // store ty value, addr
            let (ty_tok, ops) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError::new(ln, "expected type after store"))?;
            let ty: Type = ty_tok
                .parse()
                .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
            let parts = split_commas(ops);
            if parts.len() != 2 {
                return Err(ParseError::new(ln, "store takes `value, addr`"));
            }
            Ok(Inst::Store {
                ty,
                value: parse_value(ctx, parts[0])?,
                addr: parse_value(ctx, parts[1])?,
            })
        }
        "gep" => {
            let (ty_tok, ops) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError::new(ln, "expected type after gep"))?;
            let elem_ty: Type = ty_tok
                .parse()
                .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
            let parts = split_commas(ops);
            if parts.len() != 2 {
                return Err(ParseError::new(ln, "gep takes `base, index`"));
            }
            Ok(Inst::Gep {
                elem_ty,
                base: parse_value(ctx, parts[0])?,
                index: parse_value(ctx, parts[1])?,
            })
        }
        "call" => {
            // call name(args) -> ty   |   call @name(args) -> ty
            let open = rest
                .find('(')
                .ok_or_else(|| ParseError::new(ln, "expected `(` in call"))?;
            let close = rest
                .rfind(')')
                .filter(|c| *c > open)
                .ok_or_else(|| ParseError::new(ln, "expected `)` after `(` in call"))?;
            let name = rest[..open].trim();
            let args_str = &rest[open + 1..close];
            let tail = rest[close + 1..].trim();
            let ret_ty: Type = tail
                .strip_prefix("->")
                .ok_or_else(|| ParseError::new(ln, "expected `-> ty` after call"))?
                .trim()
                .parse()
                .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
            let mut args = Vec::new();
            for a in split_commas(args_str) {
                args.push(parse_value(ctx, a)?);
            }
            let callee = if let Some(fname) = name.strip_prefix('@') {
                let id = ctx
                    .module
                    .function_id(fname)
                    .ok_or_else(|| ParseError::new(ln, format!("unknown function `@{fname}`")))?;
                Callee::Func(id)
            } else {
                let intr = Intrinsic::from_name(name)
                    .ok_or_else(|| ParseError::new(ln, format!("unknown intrinsic `{name}`")))?;
                Callee::Intrinsic(intr)
            };
            Ok(Inst::Call {
                callee,
                args,
                ret_ty,
            })
        }
        "phi" => {
            // phi ty [bb0: v, bb1: v]
            let (ty_tok, ops) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError::new(ln, "expected type after phi"))?;
            let ty: Type = ty_tok
                .parse()
                .map_err(|e: crate::types::ParseTypeError| ParseError::new(ln, e.to_string()))?;
            let inner = ops
                .trim()
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| ParseError::new(ln, "expected `[...]` after phi type"))?;
            let mut incomings = Vec::new();
            for pair in split_commas(inner) {
                let (bb_tok, v_tok) = pair
                    .split_once(':')
                    .ok_or_else(|| ParseError::new(ln, "expected `bbN: value` in phi"))?;
                let bb = check_bb(parse_block_ref(ln, bb_tok.trim())?)?;
                incomings.push((bb, parse_value(ctx, v_tok)?));
            }
            Ok(Inst::Phi { ty, incomings })
        }
        "br" => Ok(Inst::Br {
            target: check_bb(parse_block_ref(ln, rest)?)?,
        }),
        "condbr" => {
            let parts = split_commas(rest);
            if parts.len() != 3 {
                return Err(ParseError::new(ln, "condbr takes `cond, bbT, bbF`"));
            }
            Ok(Inst::CondBr {
                cond: parse_value(ctx, parts[0])?,
                then_bb: check_bb(parse_block_ref(ln, parts[1])?)?,
                else_bb: check_bb(parse_block_ref(ln, parts[2])?)?,
            })
        }
        "ret" => {
            if rest.is_empty() {
                Ok(Inst::Ret { value: None })
            } else {
                Ok(Inst::Ret {
                    value: Some(parse_value(ctx, rest)?),
                })
            }
        }
        other => Err(ParseError::new(ln, format!("unknown opcode `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
module "sample"

fn @sumsq(i64) -> i64 {
bb0:
  br bb1
bb1:
  %v1 = phi i64 [bb0: 0, bb2: %v4]
  %v2 = phi i64 [bb0: 0, bb2: %v5]
  %v3 = icmp slt %v1, %arg0
  condbr %v3, bb2, bb3
bb2:
  %v6 = mul i64 %v1, %v1
  %v5 = add i64 %v2, %v6
  %v4 = add i64 %v1, 1
  br bb1
bb3:
  ret %v2
}
"#;

    #[test]
    fn parses_loop_with_forward_refs() {
        let m = parse_module(SAMPLE).unwrap();
        let (_, f) = m.functions().next().unwrap();
        assert_eq!(f.name(), "sumsq");
        assert_eq!(f.num_blocks(), 4);
        crate::verify::verify_function(f).unwrap();
    }

    #[test]
    fn print_parse_round_trip_is_stable() {
        let m1 = parse_module(SAMPLE).unwrap();
        let text1 = print_module(&m1);
        let m2 = parse_module(&text1).unwrap();
        let text2 = print_module(&m2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "module \"m\"\n\nfn @f() {\nbb0: ; entry\n  ret ; done\n}\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.num_functions(), 1);
    }

    #[test]
    fn parses_calls_between_functions() {
        let text = r#"
module "m"
fn @main() -> i64 {
bb0:
  %v0 = call @helper(3) -> i64
  ret %v0
}
fn @helper(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 1
  ret %v0
}
"#;
        let m = parse_module(text).unwrap();
        assert_eq!(m.num_functions(), 2);
        let (_, main) = m.functions().next().unwrap();
        match main.inst(crate::function::InstId::new(0)) {
            Inst::Call {
                callee: Callee::Func(id),
                ..
            } => {
                assert_eq!(m.function(*id).name(), "helper");
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        let text = "fn @f() {\nbb0:\n  frobnicate\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message().contains("unknown opcode"));
    }

    #[test]
    fn rejects_undefined_value() {
        let text = "fn @f() -> i64 {\nbb0:\n  ret %v9\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message().contains("undefined value"));
    }

    #[test]
    fn rejects_branch_to_unknown_block() {
        let text = "fn @f() {\nbb0:\n  br bb7\n}\n";
        assert!(parse_module(text).is_err());
    }

    #[test]
    fn rejects_reversed_parens_in_header() {
        // Minimized fuzz repro: `)` before `(` used to slice-panic.
        let err = parse_module("fn @f)( {\nbb0:\n  ret\n}\n").unwrap_err();
        assert!(err.message().contains(")"), "got: {}", err.message());
        assert!(parse_module("fn @)(\n").is_err());
    }

    #[test]
    fn rejects_reversed_parens_in_call() {
        // Minimized fuzz repro: first `)` preceding the `(` panicked.
        let text = "fn @f() {\nbb0:\n  %v0 = call output_i64)( -> void\n  ret\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.message().contains("call"), "got: {}", err.message());
    }

    #[test]
    fn rejects_duplicate_function_names() {
        // Minimized fuzz repro: `Module::add_function` asserts on
        // duplicates; the parser must reject them as a ParseError.
        let text = "fn @f() {\nbb0:\n  ret\n}\nfn @f() {\nbb0:\n  ret\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(
            err.message().contains("duplicate"),
            "got: {}",
            err.message()
        );
        assert_eq!(err.line(), 5);
    }

    #[test]
    fn rejects_empty_function_name() {
        assert!(parse_module("fn @() {\nbb0:\n  ret\n}\n").is_err());
    }

    #[test]
    fn nan_constants_round_trip_bit_exactly() {
        // Minimized fuzz repro: x86's `0.0 / 0.0` is the *negative*
        // quiet NaN `0xfff8…`, which printed as `NaN` and re-parsed as
        // the positive canonical one — a silent bit flip introduced by
        // a print→parse round trip.
        for bits in [
            0xfff8_0000_0000_0000_u64, // negative quiet NaN
            0x7ff8_0000_0000_0001,     // payload-carrying quiet NaN
            0x7ff0_0000_0000_0001,     // signaling NaN
        ] {
            let text = format!(
                "fn @f() -> f64 {{\nbb0:\n  %v0 = fadd f64 NaN(0x{bits:016x}), 0.5\n  ret %v0\n}}\n"
            );
            let f = parse_function(&text).unwrap();
            match f.inst(InstId::new(0)) {
                Inst::Binary { lhs, .. } => {
                    assert_eq!(*lhs, Value::Const(Constant::F64Bits(bits)), "0x{bits:016x}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // The canonical quiet NaN keeps its bare, readable spelling.
        assert_eq!(
            Value::Const(Constant::f64(f64::NAN)).to_string(),
            "NaN",
            "canonical NaN spelling"
        );
        // Smuggling a non-NaN bit pattern through the NaN spelling is a
        // parse error, as is malformed hex.
        for bad in ["NaN(0x3ff0000000000000)", "NaN(0xzz)", "NaN(0x)"] {
            let text = format!("fn @f() -> f64 {{\nbb0:\n  ret {bad}\n}}\n");
            assert!(parse_module(&text).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn parses_float_constants() {
        let text = "fn @f() -> f64 {\nbb0:\n  %v0 = fadd f64 1.5, -2.25\n  ret %v0\n}\n";
        let f = parse_function(text).unwrap();
        match f.inst(InstId::new(0)) {
            Inst::Binary { lhs, rhs, .. } => {
                assert_eq!(*lhs, Value::f64(1.5));
                assert_eq!(*rhs, Value::f64(-2.25));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Instructions of the IR.

use std::fmt;

use crate::function::BlockId;
use crate::module::FuncId;
use crate::types::Type;
use crate::value::Value;

/// Binary (two-operand) arithmetic and bitwise opcodes.
///
/// Integer opcodes operate on `i64` (and `And`/`Or`/`Xor` also on `i1`);
/// `F`-prefixed opcodes operate on `f64`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Signed integer division. Traps on division by zero or overflow.
    Sdiv,
    /// Signed integer remainder. Traps on division by zero or overflow.
    Srem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Logical shift right (shift amount masked to 63).
    Lshr,
    /// Arithmetic shift right (shift amount masked to 63).
    Ashr,
    /// Float addition.
    Fadd,
    /// Float subtraction.
    Fsub,
    /// Float multiplication.
    Fmul,
    /// Float division.
    Fdiv,
    /// Float remainder.
    Frem,
}

impl BinOp {
    /// All binary opcodes, in a stable order.
    pub const ALL: [BinOp; 16] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Sdiv,
        BinOp::Srem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Lshr,
        BinOp::Ashr,
        BinOp::Fadd,
        BinOp::Fsub,
        BinOp::Fmul,
        BinOp::Fdiv,
        BinOp::Frem,
    ];

    /// The textual mnemonic of the opcode.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Srem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::Fadd => "fadd",
            BinOp::Fsub => "fsub",
            BinOp::Fmul => "fmul",
            BinOp::Fdiv => "fdiv",
            BinOp::Frem => "frem",
        }
    }

    /// Parses a mnemonic back to an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|op| op.mnemonic() == s)
    }

    /// Returns `true` for opcodes that operate on floats.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::Fadd | BinOp::Fsub | BinOp::Fmul | BinOp::Fdiv | BinOp::Frem
        )
    }

    /// Returns `true` for addition or subtraction (feature 2 of Table 1).
    pub fn is_add_sub(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Fadd | BinOp::Fsub)
    }

    /// Returns `true` for multiplication or division (feature 3 of Table 1).
    pub fn is_mul_div(self) -> bool {
        matches!(self, BinOp::Mul | BinOp::Sdiv | BinOp::Fmul | BinOp::Fdiv)
    }

    /// Returns `true` for remainder opcodes (feature 4 of Table 1).
    pub fn is_rem(self) -> bool {
        matches!(self, BinOp::Srem | BinOp::Frem)
    }

    /// Returns `true` for bitwise/logical opcodes (feature 5 of Table 1).
    pub fn is_logical(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Lshr | BinOp::Ashr
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison predicates (signed, plus equality).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IcmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
}

impl IcmpPred {
    /// All predicates, in a stable order.
    pub const ALL: [IcmpPred; 6] = [
        IcmpPred::Eq,
        IcmpPred::Ne,
        IcmpPred::Slt,
        IcmpPred::Sle,
        IcmpPred::Sgt,
        IcmpPred::Sge,
    ];

    /// The textual mnemonic of the predicate.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
        }
    }

    /// Parses a mnemonic back to a predicate.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.mnemonic() == s)
    }

    /// Evaluates the predicate on two integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            IcmpPred::Eq => a == b,
            IcmpPred::Ne => a != b,
            IcmpPred::Slt => a < b,
            IcmpPred::Sle => a <= b,
            IcmpPred::Sgt => a > b,
            IcmpPred::Sge => a >= b,
        }
    }
}

impl fmt::Display for IcmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Float comparison predicates (ordered: any comparison with NaN is false,
/// except `One`/`Une` follow IEEE semantics via Rust operators).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FcmpPred {
    /// Ordered equal.
    Oeq,
    /// Unordered-or-not-equal.
    Une,
    /// Ordered less than.
    Olt,
    /// Ordered less or equal.
    Ole,
    /// Ordered greater than.
    Ogt,
    /// Ordered greater or equal.
    Oge,
}

impl FcmpPred {
    /// All predicates, in a stable order.
    pub const ALL: [FcmpPred; 6] = [
        FcmpPred::Oeq,
        FcmpPred::Une,
        FcmpPred::Olt,
        FcmpPred::Ole,
        FcmpPred::Ogt,
        FcmpPred::Oge,
    ];

    /// The textual mnemonic of the predicate.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FcmpPred::Oeq => "oeq",
            FcmpPred::Une => "une",
            FcmpPred::Olt => "olt",
            FcmpPred::Ole => "ole",
            FcmpPred::Ogt => "ogt",
            FcmpPred::Oge => "oge",
        }
    }

    /// Parses a mnemonic back to a predicate.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.mnemonic() == s)
    }

    /// Evaluates the predicate on two floats.
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FcmpPred::Oeq => a == b,
            FcmpPred::Une => a != b,
            FcmpPred::Olt => a < b,
            FcmpPred::Ole => a <= b,
            FcmpPred::Ogt => a > b,
            FcmpPred::Oge => a >= b,
        }
    }
}

impl fmt::Display for FcmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conversion opcodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Signed integer to float.
    Sitofp,
    /// Float to signed integer (saturating; NaN becomes 0).
    Fptosi,
    /// Boolean zero-extension to `i64`.
    Zext,
    /// `i64` truncation to boolean (takes bit 0).
    Trunc,
    /// Reinterpret `i64` bits as `f64` or vice versa.
    Bitcast,
    /// Pointer to `i64`.
    Ptrtoint,
    /// `i64` to pointer.
    Inttoptr,
}

impl CastOp {
    /// All cast opcodes, in a stable order.
    pub const ALL: [CastOp; 7] = [
        CastOp::Sitofp,
        CastOp::Fptosi,
        CastOp::Zext,
        CastOp::Trunc,
        CastOp::Bitcast,
        CastOp::Ptrtoint,
        CastOp::Inttoptr,
    ];

    /// The textual mnemonic of the opcode.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Sitofp => "sitofp",
            CastOp::Fptosi => "fptosi",
            CastOp::Zext => "zext",
            CastOp::Trunc => "trunc",
            CastOp::Bitcast => "bitcast",
            CastOp::Ptrtoint => "ptrtoint",
            CastOp::Inttoptr => "inttoptr",
        }
    }

    /// Parses a mnemonic back to an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for CastOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Built-in runtime functions provided by the interpreter.
///
/// These model the external library surface of the paper's workloads (libm,
/// malloc, MPI) plus the IPAS detector runtime (`__ipas_check*`), which is
/// what the duplication pass inserts at the end of each duplication path.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `f64 sqrt(f64)`.
    Sqrt,
    /// `f64 sin(f64)`.
    Sin,
    /// `f64 cos(f64)`.
    Cos,
    /// `f64 exp(f64)`.
    Exp,
    /// `f64 log(f64)` — natural log.
    Log,
    /// `f64 pow(f64, f64)`.
    Pow,
    /// `f64 fabs(f64)`.
    Fabs,
    /// `f64 floor(f64)`.
    Floor,
    /// `ptr malloc(i64 bytes)` — traps on negative or huge sizes.
    Malloc,
    /// `void free(ptr)`.
    Free,
    /// `void print_i64(i64)` — appends to the run's console log.
    PrintI64,
    /// `void print_f64(f64)` — appends to the run's console log.
    PrintF64,
    /// `void output_i64(i64)` — appends to the verified output stream.
    OutputI64,
    /// `void output_f64(f64)` — appends to the verified output stream.
    OutputF64,
    /// `i64 mpi_rank()`.
    MpiRank,
    /// `i64 mpi_size()`.
    MpiSize,
    /// `f64 mpi_allreduce_sum(f64)` — sum across ranks.
    MpiAllreduceSum,
    /// `i64 mpi_allreduce_sum_i(i64)` — sum across ranks.
    MpiAllreduceSumI,
    /// `f64 mpi_allreduce_max(f64)` — max across ranks.
    MpiAllreduceMax,
    /// `void mpi_barrier()`.
    MpiBarrier,
    /// `void mpi_allgather_f(ptr arr, i64 n)` — each rank owns the block
    /// `[r·n/P, (r+1)·n/P)`; afterwards every rank holds all blocks.
    MpiAllgatherF,
    /// `void mpi_allreduce_arr_f(ptr arr, i64 n)` — element-wise sum of
    /// the float array across ranks, result replicated.
    MpiAllreduceArrF,
    /// `void mpi_allreduce_arr_i(ptr arr, i64 n)` — element-wise sum of
    /// the integer array across ranks, result replicated.
    MpiAllreduceArrI,
    /// `void __ipas_check_i(i64 orig, i64 dup)` — raises fault detection on
    /// mismatch. Inserted by the duplication pass; never written by hand.
    IpasCheckI,
    /// `void __ipas_check_f(f64 orig, f64 dup)` — bitwise comparison.
    IpasCheckF,
    /// `void __ipas_check_p(ptr orig, ptr dup)`.
    IpasCheckP,
    /// `void __ipas_check_b(i1 orig, i1 dup)`.
    IpasCheckB,
}

impl Intrinsic {
    /// All intrinsics, in a stable order.
    pub const ALL: [Intrinsic; 27] = [
        Intrinsic::Sqrt,
        Intrinsic::Sin,
        Intrinsic::Cos,
        Intrinsic::Exp,
        Intrinsic::Log,
        Intrinsic::Pow,
        Intrinsic::Fabs,
        Intrinsic::Floor,
        Intrinsic::Malloc,
        Intrinsic::Free,
        Intrinsic::PrintI64,
        Intrinsic::PrintF64,
        Intrinsic::OutputI64,
        Intrinsic::OutputF64,
        Intrinsic::MpiRank,
        Intrinsic::MpiSize,
        Intrinsic::MpiAllreduceSum,
        Intrinsic::MpiAllreduceSumI,
        Intrinsic::MpiAllreduceMax,
        Intrinsic::MpiBarrier,
        Intrinsic::MpiAllgatherF,
        Intrinsic::MpiAllreduceArrF,
        Intrinsic::MpiAllreduceArrI,
        Intrinsic::IpasCheckI,
        Intrinsic::IpasCheckF,
        Intrinsic::IpasCheckP,
        Intrinsic::IpasCheckB,
    ];

    /// The external name of the intrinsic.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Pow => "pow",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Floor => "floor",
            Intrinsic::Malloc => "malloc",
            Intrinsic::Free => "free",
            Intrinsic::PrintI64 => "print_i64",
            Intrinsic::PrintF64 => "print_f64",
            Intrinsic::OutputI64 => "output_i64",
            Intrinsic::OutputF64 => "output_f64",
            Intrinsic::MpiRank => "mpi_rank",
            Intrinsic::MpiSize => "mpi_size",
            Intrinsic::MpiAllreduceSum => "mpi_allreduce_sum",
            Intrinsic::MpiAllreduceSumI => "mpi_allreduce_sum_i",
            Intrinsic::MpiAllreduceMax => "mpi_allreduce_max",
            Intrinsic::MpiBarrier => "mpi_barrier",
            Intrinsic::MpiAllgatherF => "mpi_allgather_f",
            Intrinsic::MpiAllreduceArrF => "mpi_allreduce_arr_f",
            Intrinsic::MpiAllreduceArrI => "mpi_allreduce_arr_i",
            Intrinsic::IpasCheckI => "__ipas_check_i",
            Intrinsic::IpasCheckF => "__ipas_check_f",
            Intrinsic::IpasCheckP => "__ipas_check_p",
            Intrinsic::IpasCheckB => "__ipas_check_b",
        }
    }

    /// Looks an intrinsic up by external name.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|i| i.name() == s)
    }

    /// Parameter types of the intrinsic.
    pub fn param_types(self) -> &'static [Type] {
        use Type::*;
        match self {
            Intrinsic::Sqrt
            | Intrinsic::Sin
            | Intrinsic::Cos
            | Intrinsic::Exp
            | Intrinsic::Log
            | Intrinsic::Fabs
            | Intrinsic::Floor
            | Intrinsic::PrintF64
            | Intrinsic::OutputF64
            | Intrinsic::MpiAllreduceSum
            | Intrinsic::MpiAllreduceMax => &[F64],
            Intrinsic::Pow => &[F64, F64],
            Intrinsic::Malloc
            | Intrinsic::PrintI64
            | Intrinsic::OutputI64
            | Intrinsic::MpiAllreduceSumI => &[I64],
            Intrinsic::Free => &[Ptr],
            Intrinsic::MpiAllgatherF
            | Intrinsic::MpiAllreduceArrF
            | Intrinsic::MpiAllreduceArrI => &[Ptr, I64],
            Intrinsic::MpiRank | Intrinsic::MpiSize | Intrinsic::MpiBarrier => &[],
            Intrinsic::IpasCheckI => &[I64, I64],
            Intrinsic::IpasCheckF => &[F64, F64],
            Intrinsic::IpasCheckP => &[Ptr, Ptr],
            Intrinsic::IpasCheckB => &[Bool, Bool],
        }
    }

    /// Return type of the intrinsic.
    pub fn return_type(self) -> Type {
        use Type::*;
        match self {
            Intrinsic::Sqrt
            | Intrinsic::Sin
            | Intrinsic::Cos
            | Intrinsic::Exp
            | Intrinsic::Log
            | Intrinsic::Pow
            | Intrinsic::Fabs
            | Intrinsic::Floor
            | Intrinsic::MpiAllreduceSum
            | Intrinsic::MpiAllreduceMax => F64,
            Intrinsic::Malloc => Ptr,
            Intrinsic::MpiRank | Intrinsic::MpiSize | Intrinsic::MpiAllreduceSumI => I64,
            Intrinsic::Free
            | Intrinsic::PrintI64
            | Intrinsic::PrintF64
            | Intrinsic::OutputI64
            | Intrinsic::OutputF64
            | Intrinsic::MpiBarrier
            | Intrinsic::MpiAllgatherF
            | Intrinsic::MpiAllreduceArrF
            | Intrinsic::MpiAllreduceArrI
            | Intrinsic::IpasCheckI
            | Intrinsic::IpasCheckF
            | Intrinsic::IpasCheckP
            | Intrinsic::IpasCheckB => Void,
        }
    }

    /// Returns `true` for the IPAS detector runtime calls.
    pub fn is_ipas_check(self) -> bool {
        matches!(
            self,
            Intrinsic::IpasCheckI
                | Intrinsic::IpasCheckF
                | Intrinsic::IpasCheckP
                | Intrinsic::IpasCheckB
        )
    }

    /// Returns `true` for pure math intrinsics (safe to duplicate).
    pub fn is_pure_math(self) -> bool {
        matches!(
            self,
            Intrinsic::Sqrt
                | Intrinsic::Sin
                | Intrinsic::Cos
                | Intrinsic::Exp
                | Intrinsic::Log
                | Intrinsic::Pow
                | Intrinsic::Fabs
                | Intrinsic::Floor
        )
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The callee of a [`Inst::Call`] instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the same module.
    Func(FuncId),
    /// A built-in runtime function.
    Intrinsic(Intrinsic),
}

/// An IR instruction.
///
/// Terminators ([`Inst::Br`], [`Inst::CondBr`], [`Inst::Ret`]) must appear
/// exactly once, as the last instruction of each block. [`Inst::Phi`] nodes
/// must appear at the top of their block.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// Two-operand arithmetic: `result = op ty lhs, rhs`.
    Binary {
        /// The opcode.
        op: BinOp,
        /// Operand/result type (`I64`, `Bool` for bitwise ops, or `F64`).
        ty: Type,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Integer comparison producing a `Bool`.
    Icmp {
        /// The predicate.
        pred: IcmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Float comparison producing a `Bool`.
    Fcmp {
        /// The predicate.
        pred: FcmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Type conversion.
    Cast {
        /// The conversion opcode.
        op: CastOp,
        /// Destination type.
        to: Type,
        /// The converted value.
        arg: Value,
    },
    /// Conditional select: `result = cond ? then_value : else_value`.
    Select {
        /// Result type.
        ty: Type,
        /// Boolean condition.
        cond: Value,
        /// Value when the condition is true.
        then_value: Value,
        /// Value when the condition is false.
        else_value: Value,
    },
    /// Stack allocation of `count` eight-byte slots; yields a pointer.
    Alloca {
        /// Type stored in each slot (informational; every slot is 8 bytes).
        ty: Type,
        /// Number of slots.
        count: u32,
    },
    /// Memory load: `result = load ty, addr`.
    Load {
        /// Loaded type.
        ty: Type,
        /// Address operand.
        addr: Value,
    },
    /// Memory store: `store ty value, addr`.
    Store {
        /// Stored type.
        ty: Type,
        /// The value to store.
        value: Value,
        /// Address operand.
        addr: Value,
    },
    /// Pointer arithmetic: `result = base + index * 8`.
    Gep {
        /// Element type (informational; elements are 8 bytes).
        elem_ty: Type,
        /// Base pointer.
        base: Value,
        /// Element index.
        index: Value,
    },
    /// Function or intrinsic call.
    Call {
        /// The callee.
        callee: Callee,
        /// Argument values.
        args: Vec<Value>,
        /// The declared return type.
        ret_ty: Type,
    },
    /// SSA phi node; one incoming value per predecessor block.
    Phi {
        /// Result type.
        ty: Type,
        /// `(predecessor, value)` pairs.
        incomings: Vec<(BlockId, Value)>,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch.
    CondBr {
        /// Boolean condition.
        cond: Value,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret {
        /// The returned value; `None` for `void` functions.
        value: Option<Value>,
    },
}

impl Inst {
    /// Returns `true` if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. }
        )
    }

    /// Returns `true` for phi nodes.
    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }

    /// The successor blocks named by this instruction (empty for
    /// non-terminators and returns).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Br { target } => vec![*target],
            Inst::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => Vec::new(),
        }
    }

    /// The type of the value produced by this instruction ([`Type::Void`]
    /// when it produces none).
    pub fn result_type(&self) -> Type {
        match self {
            Inst::Binary { ty, .. } => *ty,
            Inst::Icmp { .. } | Inst::Fcmp { .. } => Type::Bool,
            Inst::Cast { to, .. } => *to,
            Inst::Select { ty, .. } => *ty,
            Inst::Alloca { .. } | Inst::Gep { .. } => Type::Ptr,
            Inst::Load { ty, .. } => *ty,
            Inst::Call { ret_ty, .. } => *ret_ty,
            Inst::Phi { ty, .. } => *ty,
            Inst::Store { .. } | Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. } => {
                Type::Void
            }
        }
    }

    /// Returns `true` if this instruction produces an SSA value.
    pub fn has_result(&self) -> bool {
        self.result_type() != Type::Void
    }

    /// Collects the value operands of this instruction (not including
    /// block labels).
    pub fn operands(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_operand(|v| out.push(v));
        out
    }

    /// Calls `f` on each value operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            Inst::Binary { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Cast { arg, .. } => f(*arg),
            Inst::Select {
                cond,
                then_value,
                else_value,
                ..
            } => {
                f(*cond);
                f(*then_value);
                f(*else_value);
            }
            Inst::Alloca { .. } => {}
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { value, addr, .. } => {
                f(*value);
                f(*addr);
            }
            Inst::Gep { base, index, .. } => {
                f(*base);
                f(*index);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(*v);
                }
            }
            Inst::Br { .. } => {}
            Inst::CondBr { cond, .. } => f(*cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
        }
    }

    /// Rewrites each value operand through `f` in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Inst::Binary { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Cast { arg, .. } => *arg = f(*arg),
            Inst::Select {
                cond,
                then_value,
                else_value,
                ..
            } => {
                *cond = f(*cond);
                *then_value = f(*then_value);
                *else_value = f(*else_value);
            }
            Inst::Alloca { .. } => {}
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { value, addr, .. } => {
                *value = f(*value);
                *addr = f(*addr);
            }
            Inst::Gep { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    *v = f(*v);
                }
            }
            Inst::Br { .. } => {}
            Inst::CondBr { cond, .. } => *cond = f(*cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    *v = f(*v);
                }
            }
        }
    }

    /// A short, human-readable opcode name (used in diagnostics and
    /// feature dumps).
    pub fn opcode_name(&self) -> &'static str {
        match self {
            Inst::Binary { op, .. } => op.mnemonic(),
            Inst::Icmp { .. } => "icmp",
            Inst::Fcmp { .. } => "fcmp",
            Inst::Cast { op, .. } => op.mnemonic(),
            Inst::Select { .. } => "select",
            Inst::Alloca { .. } => "alloca",
            Inst::Load { .. } => "load",
            Inst::Store { .. } => "store",
            Inst::Gep { .. } => "gep",
            Inst::Call { .. } => "call",
            Inst::Phi { .. } => "phi",
            Inst::Br { .. } => "br",
            Inst::CondBr { .. } => "condbr",
            Inst::Ret { .. } => "ret",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_mnemonics_round_trip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn binop_categories_are_disjoint_for_arith() {
        assert!(BinOp::Add.is_add_sub() && !BinOp::Add.is_mul_div());
        assert!(BinOp::Fmul.is_mul_div() && !BinOp::Fmul.is_add_sub());
        assert!(BinOp::Srem.is_rem() && !BinOp::Srem.is_logical());
        assert!(BinOp::Xor.is_logical() && !BinOp::Xor.is_add_sub());
    }

    #[test]
    fn icmp_eval() {
        assert!(IcmpPred::Slt.eval(-1, 0));
        assert!(!IcmpPred::Sgt.eval(-1, 0));
        assert!(IcmpPred::Eq.eval(5, 5));
        assert!(IcmpPred::Ne.eval(5, 6));
        assert!(IcmpPred::Sle.eval(5, 5));
        assert!(IcmpPred::Sge.eval(5, 5));
    }

    #[test]
    fn fcmp_eval_nan_is_unordered() {
        assert!(!FcmpPred::Oeq.eval(f64::NAN, f64::NAN));
        assert!(FcmpPred::Une.eval(f64::NAN, 1.0));
        assert!(!FcmpPred::Olt.eval(f64::NAN, 1.0));
    }

    #[test]
    fn intrinsic_names_round_trip() {
        for intr in [
            Intrinsic::Sqrt,
            Intrinsic::Malloc,
            Intrinsic::MpiAllreduceSum,
            Intrinsic::IpasCheckF,
        ] {
            assert_eq!(Intrinsic::from_name(intr.name()), Some(intr));
        }
        assert_eq!(Intrinsic::from_name("nope"), None);
    }

    #[test]
    fn intrinsic_signatures() {
        assert_eq!(Intrinsic::Pow.param_types(), &[Type::F64, Type::F64]);
        assert_eq!(Intrinsic::Malloc.return_type(), Type::Ptr);
        assert_eq!(Intrinsic::IpasCheckI.return_type(), Type::Void);
        assert!(Intrinsic::IpasCheckP.is_ipas_check());
        assert!(Intrinsic::Sqrt.is_pure_math());
        assert!(!Intrinsic::Malloc.is_pure_math());
    }

    #[test]
    fn inst_result_types() {
        let add = Inst::Binary {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Value::i64(1),
            rhs: Value::i64(2),
        };
        assert_eq!(add.result_type(), Type::I64);
        assert!(add.has_result());
        let st = Inst::Store {
            ty: Type::I64,
            value: Value::i64(1),
            addr: Value::null(),
        };
        assert_eq!(st.result_type(), Type::Void);
        assert!(!st.has_result());
    }

    #[test]
    fn successors_and_terminators() {
        let b0 = BlockId::new(0);
        let b1 = BlockId::new(1);
        let br = Inst::Br { target: b1 };
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![b1]);
        let cbr = Inst::CondBr {
            cond: Value::bool(true),
            then_bb: b0,
            else_bb: b1,
        };
        assert_eq!(cbr.successors(), vec![b0, b1]);
        let ret = Inst::Ret { value: None };
        assert!(ret.is_terminator());
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn map_operands_rewrites_everything() {
        let mut call = Inst::Call {
            callee: Callee::Intrinsic(Intrinsic::Pow),
            args: vec![Value::f64(2.0), Value::f64(3.0)],
            ret_ty: Type::F64,
        };
        call.map_operands(|_| Value::f64(1.0));
        assert_eq!(call.operands(), vec![Value::f64(1.0), Value::f64(1.0)]);
    }
}

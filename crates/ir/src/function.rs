//! Functions, basic blocks, and instruction arenas.

use std::collections::HashMap;
use std::fmt;

use crate::inst::Inst;
use crate::types::Type;
use crate::value::Value;

/// Identifies a basic block within a [`Function`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    pub fn new(index: usize) -> Self {
        BlockId(index as u32)
    }

    /// The raw index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifies an instruction within a [`Function`]'s arena.
///
/// Instruction ids are stable across transformations: passes that delete an
/// instruction only unlink it from its block; the arena slot is retained so
/// that analysis results keyed by `InstId` remain valid.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(u32);

impl InstId {
    /// Creates an instruction id from a raw index.
    pub fn new(index: usize) -> Self {
        InstId(index as u32)
    }

    /// The raw index of this instruction.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%v{}", self.0)
    }
}

/// A basic block: an ordered list of instruction ids, ending in a
/// terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    insts: Vec<InstId>,
}

impl Block {
    /// The instructions of this block, in execution order.
    pub fn insts(&self) -> &[InstId] {
        &self.insts
    }

    /// The terminator instruction id, if the block is non-empty.
    pub fn terminator(&self) -> Option<InstId> {
        self.insts.last().copied()
    }

    /// Number of instructions in the block (feature 14 of Table 1).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A function: typed parameters, a return type, and a CFG of basic blocks
/// over an instruction arena.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    name: String,
    params: Vec<Type>,
    ret: Type,
    blocks: Vec<Block>,
    insts: Vec<Inst>,
}

impl Function {
    /// Creates an empty function with a single empty entry block.
    pub fn new(name: impl Into<String>, params: &[Type], ret: Type) -> Self {
        Function {
            name: name.into(),
            params: params.to_vec(),
            ret,
            blocks: vec![Block::default()],
            insts: Vec::new(),
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter types.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// The declared return type ([`Type::Void`] for none).
    pub fn return_type(&self) -> Type {
        self.ret
    }

    /// The entry block (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of basic blocks (feature 22 of Table 1).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Borrows a block.
    ///
    /// # Panics
    ///
    /// Panics if `bb` is out of range.
    pub fn block(&self, bb: BlockId) -> &Block {
        &self.blocks[bb.index()]
    }

    /// Borrows an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutably borrows an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Total number of arena slots (including unlinked instructions).
    pub fn num_inst_slots(&self) -> usize {
        self.insts.len()
    }

    /// Number of instructions currently linked into blocks
    /// (the "static instruction" count of Table 3).
    pub fn num_linked_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Appends a fresh empty block, returning its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId::new(self.blocks.len() - 1)
    }

    /// Appends `inst` to block `bb`, returning its arena id.
    ///
    /// # Panics
    ///
    /// Panics if `bb` is out of range.
    pub fn append_inst(&mut self, bb: BlockId, inst: Inst) -> InstId {
        let id = InstId::new(self.insts.len());
        self.insts.push(inst);
        self.blocks[bb.index()].insts.push(id);
        id
    }

    /// Inserts `inst` into block `bb` at position `pos`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `bb` or `pos` is out of range.
    pub fn insert_inst(&mut self, bb: BlockId, pos: usize, inst: Inst) -> InstId {
        let id = InstId::new(self.insts.len());
        self.insts.push(inst);
        self.blocks[bb.index()].insts.insert(pos, id);
        id
    }

    /// Unlinks the instruction `id` from block `bb` (its arena slot is
    /// retained). Returns `true` if the instruction was present.
    pub fn unlink_inst(&mut self, bb: BlockId, id: InstId) -> bool {
        let insts = &mut self.blocks[bb.index()].insts;
        if let Some(pos) = insts.iter().position(|&i| i == id) {
            insts.remove(pos);
            true
        } else {
            false
        }
    }

    /// Replaces the instruction list of block `bb` wholesale.
    ///
    /// Used by passes that rebuild a block (e.g. the duplication pass).
    pub fn set_block_insts(&mut self, bb: BlockId, insts: Vec<InstId>) {
        self.blocks[bb.index()].insts = insts;
    }

    /// The block that currently contains instruction `id`, if any.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.block_ids()
            .find(|&bb| self.blocks[bb.index()].insts.contains(&id))
    }

    /// Builds a map from every linked instruction to its containing block.
    pub fn inst_blocks(&self) -> HashMap<InstId, BlockId> {
        let mut map = HashMap::new();
        for bb in self.block_ids() {
            for &id in self.block(bb).insts() {
                map.insert(id, bb);
            }
        }
        map
    }

    /// Successor blocks of `bb` (from its terminator).
    pub fn successors(&self, bb: BlockId) -> Vec<BlockId> {
        match self.block(bb).terminator() {
            Some(t) => self.inst(t).successors(),
            None => Vec::new(),
        }
    }

    /// Predecessor lists for every block, indexed by block index.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for bb in self.block_ids() {
            for succ in self.successors(bb) {
                preds[succ.index()].push(bb);
            }
        }
        preds
    }

    /// Rewrites every operand in the function through `f`.
    pub fn map_all_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        for inst in &mut self.insts {
            inst.map_operands(&mut f);
        }
    }

    /// The type of a [`Value`] as seen inside this function.
    ///
    /// # Panics
    ///
    /// Panics if the value names an out-of-range parameter or instruction.
    pub fn value_type(&self, v: Value) -> Type {
        match v {
            Value::Inst(id) => self.inst(id).result_type(),
            Value::Param(n) => self.params[n as usize],
            Value::Const(c) => c.ty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Inst};

    fn sample() -> Function {
        let mut f = Function::new("f", &[Type::I64], Type::I64);
        let entry = f.entry();
        let add = f.append_inst(
            entry,
            Inst::Binary {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::param(0),
                rhs: Value::i64(1),
            },
        );
        f.append_inst(
            entry,
            Inst::Ret {
                value: Some(Value::inst(add)),
            },
        );
        f
    }

    #[test]
    fn append_and_query() {
        let f = sample();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_linked_insts(), 2);
        assert_eq!(f.block(f.entry()).len(), 2);
        assert_eq!(f.value_type(Value::param(0)), Type::I64);
        let term = f.block(f.entry()).terminator().unwrap();
        assert!(f.inst(term).is_terminator());
    }

    #[test]
    fn unlink_retains_arena_slot() {
        let mut f = sample();
        let first = f.block(f.entry()).insts()[0];
        assert!(f.unlink_inst(f.entry(), first));
        assert_eq!(f.num_linked_insts(), 1);
        assert_eq!(f.num_inst_slots(), 2);
        assert!(!f.unlink_inst(f.entry(), first));
    }

    #[test]
    fn successors_and_predecessors() {
        let mut f = Function::new("g", &[], Type::Void);
        let entry = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.append_inst(
            entry,
            Inst::CondBr {
                cond: Value::bool(true),
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.append_inst(b1, Inst::Br { target: b2 });
        f.append_inst(b2, Inst::Ret { value: None });
        assert_eq!(f.successors(entry), vec![b1, b2]);
        let preds = f.predecessors();
        assert_eq!(preds[b2.index()], vec![entry, b1]);
        assert_eq!(preds[entry.index()], Vec::<BlockId>::new());
    }

    #[test]
    fn block_of_finds_container() {
        let f = sample();
        let first = f.block(f.entry()).insts()[0];
        assert_eq!(f.block_of(first), Some(f.entry()));
        assert_eq!(f.block_of(InstId::new(99)), None);
    }

    #[test]
    fn insert_positions_correctly() {
        let mut f = sample();
        let entry = f.entry();
        let id = f.insert_inst(
            entry,
            0,
            Inst::Binary {
                op: BinOp::Mul,
                ty: Type::I64,
                lhs: Value::param(0),
                rhs: Value::i64(2),
            },
        );
        assert_eq!(f.block(entry).insts()[0], id);
        assert_eq!(f.block(entry).len(), 3);
    }
}

//! Dominator tree and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy iterative algorithm over a reverse
//! post-order of the CFG. Used by the verifier (SSA dominance checking),
//! mem2reg (phi placement), and the loop analysis in `ipas-analysis`.

use std::cell::Cell;

use crate::function::{BlockId, Function};

thread_local! {
    /// Number of [`DomTree::compute`] calls on this thread. Thread-local
    /// (not a process-wide atomic) so parallel test threads cannot skew
    /// each other's before/after deltas.
    static COMPUTATIONS: Cell<u64> = const { Cell::new(0) };
}

/// The dominator tree of a function's CFG.
///
/// Blocks unreachable from the entry have no immediate dominator and are
/// reported by [`DomTree::is_reachable`].
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block index; `None` for the entry and for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse post-order of reachable blocks.
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` if unreachable.
    rpo_pos: Vec<usize>,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn compute(func: &Function) -> Self {
        COMPUTATIONS.with(|c| c.set(c.get() + 1));
        let n = func.num_blocks();
        // DFS post-order.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
        visited[func.entry().index()] = true;
        while let Some(&mut (bb, ref mut next)) = stack.last_mut() {
            let succs = func.successors(bb);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(bb);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &bb) in rpo.iter().enumerate() {
            rpo_pos[bb.index()] = i;
        }

        let preds = func.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[func.entry().index()] = Some(func.entry());

        let intersect =
            |idom: &[Option<BlockId>], rpo_pos: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while rpo_pos[a.index()] > rpo_pos[b.index()] {
                        a = idom[a.index()].expect("processed block must have idom");
                    }
                    while rpo_pos[b.index()] > rpo_pos[a.index()] {
                        b = idom[b.index()].expect("processed block must have idom");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[bb.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb.index()] != Some(ni) {
                        idom[bb.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // The entry's self-idom is an algorithmic artifact; clear it.
        idom[func.entry().index()] = None;

        DomTree { idom, rpo, rpo_pos }
    }

    /// Number of times [`DomTree::compute`] has run on the calling
    /// thread. The pass manager's analysis caching is validated by
    /// taking deltas of this counter around an optimization run (see
    /// `bench_passes` and the workload pass-statistics tests).
    pub fn computations() -> u64 {
        COMPUTATIONS.with(Cell::get)
    }

    /// The immediate dominator of `bb` (`None` for the entry block and
    /// unreachable blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        self.idom[bb.index()]
    }

    /// Returns `true` if `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_pos[bb.index()] != usize::MAX
    }

    /// Reverse post-order of reachable blocks.
    pub fn reverse_post_order(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Returns `true` if block `a` dominates block `b`.
    ///
    /// Every block dominates itself. Unreachable blocks dominate nothing
    /// and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Computes the dominance frontier of every block.
    ///
    /// `frontier[b]` is the set of blocks where `b`'s dominance ends —
    /// the classic phi-placement set for mem2reg.
    pub fn dominance_frontiers(&self, func: &Function) -> Vec<Vec<BlockId>> {
        let n = func.num_blocks();
        let preds = func.predecessors();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for bb in func.block_ids() {
            if !self.is_reachable(bb) || preds[bb.index()].len() < 2 {
                continue;
            }
            // `stop` is None for the entry block: an entry with
            // predecessors (a self-loop) is in its own frontier, so the
            // runner walk must not be cut short.
            let stop = self.idom(bb);
            for &p in &preds[bb.index()] {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                loop {
                    if Some(runner) == stop {
                        break;
                    }
                    if !df[runner.index()].contains(&bb) {
                        df[runner.index()].push(bb);
                    }
                    match self.idom(runner) {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::types::Type;
    use crate::value::Value;

    /// Builds the classic diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> Function {
        let mut f = Function::new("d", &[], Type::Void);
        let b0 = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        f.append_inst(
            b0,
            Inst::CondBr {
                cond: Value::bool(true),
                then_bb: b1,
                else_bb: b2,
            },
        );
        f.append_inst(b1, Inst::Br { target: b3 });
        f.append_inst(b2, Inst::Br { target: b3 });
        f.append_inst(b3, Inst::Ret { value: None });
        f
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let ids: Vec<BlockId> = f.block_ids().collect();
        assert_eq!(dt.idom(ids[0]), None);
        assert_eq!(dt.idom(ids[1]), Some(ids[0]));
        assert_eq!(dt.idom(ids[2]), Some(ids[0]));
        assert_eq!(dt.idom(ids[3]), Some(ids[0]));
    }

    #[test]
    fn diamond_dominance_relation() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let ids: Vec<BlockId> = f.block_ids().collect();
        assert!(dt.dominates(ids[0], ids[3]));
        assert!(!dt.dominates(ids[1], ids[3]));
        assert!(dt.dominates(ids[3], ids[3]));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        let df = dt.dominance_frontiers(&f);
        let ids: Vec<BlockId> = f.block_ids().collect();
        assert_eq!(df[ids[1].index()], vec![ids[3]]);
        assert_eq!(df[ids[2].index()], vec![ids[3]]);
        assert!(df[ids[0].index()].is_empty());
        assert!(df[ids[3].index()].is_empty());
    }

    #[test]
    fn loop_frontier_contains_header() {
        // 0 -> 1 (header) -> 2 (body) -> 1, 1 -> 3 (exit)
        let mut f = Function::new("l", &[], Type::Void);
        let b0 = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        f.append_inst(b0, Inst::Br { target: b1 });
        f.append_inst(
            b1,
            Inst::CondBr {
                cond: Value::bool(true),
                then_bb: b2,
                else_bb: b3,
            },
        );
        f.append_inst(b2, Inst::Br { target: b1 });
        f.append_inst(b3, Inst::Ret { value: None });
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(b2), Some(b1));
        assert_eq!(dt.idom(b3), Some(b1));
        let df = dt.dominance_frontiers(&f);
        // The body's frontier is the loop header (back edge).
        assert_eq!(df[b2.index()], vec![b1]);
        // The header is in its own frontier.
        assert!(df[b1.index()].contains(&b1));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut f = Function::new("u", &[], Type::Void);
        let b0 = f.entry();
        let dead = f.add_block();
        f.append_inst(b0, Inst::Ret { value: None });
        f.append_inst(dead, Inst::Ret { value: None });
        let dt = DomTree::compute(&f);
        assert!(dt.is_reachable(b0));
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(b0, dead));
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.reverse_post_order()[0], f.entry());
        assert_eq!(dt.reverse_post_order().len(), 4);
    }
}

//! Scalar types of the IR.

use std::fmt;
use std::str::FromStr;

/// The scalar type of an SSA value.
///
/// The IR is deliberately small: the five workloads only require 64-bit
/// integers, 64-bit floats, booleans, and opaque pointers. `Void` is the
/// result type of instructions that produce no value (stores, branches,
/// void calls).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// No value (result of stores, branches, void calls).
    Void,
    /// A one-bit boolean (`i1` in the textual format).
    Bool,
    /// A 64-bit signed integer (`i64`).
    I64,
    /// A 64-bit IEEE-754 float (`f64`).
    F64,
    /// An opaque pointer (`ptr`).
    Ptr,
}

impl Type {
    /// Number of bytes occupied by a value of this type in a register.
    ///
    /// This is feature 12 of the IPAS feature table ("bytes in the
    /// instruction's result"). `Void` occupies zero bytes.
    pub fn byte_size(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Bool => 1,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }

    /// Number of meaningful bits in a register holding this type.
    ///
    /// Used by the fault injector to pick a random bit to flip.
    pub fn bit_width(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Bool => 1,
            Type::I64 | Type::F64 | Type::Ptr => 64,
        }
    }

    /// Returns `true` for every type other than [`Type::Void`].
    pub fn is_value(self) -> bool {
        self != Type::Void
    }

    /// Returns `true` if this is an integer-like type (`Bool` or `I64`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::Bool | Type::I64)
    }

    /// Returns `true` if this is the floating-point type.
    pub fn is_float(self) -> bool {
        self == Type::F64
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Void => "void",
            Type::Bool => "i1",
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`Type`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTypeError(pub(crate) String);

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown type `{}`", self.0)
    }
}

impl std::error::Error for ParseTypeError {}

impl FromStr for Type {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "void" => Ok(Type::Void),
            "i1" => Ok(Type::Bool),
            "i64" => Ok(Type::I64),
            "f64" => Ok(Type::F64),
            "ptr" => Ok(Type::Ptr),
            other => Err(ParseTypeError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(Type::Void.byte_size(), 0);
        assert_eq!(Type::Bool.byte_size(), 1);
        assert_eq!(Type::I64.byte_size(), 8);
        assert_eq!(Type::F64.byte_size(), 8);
        assert_eq!(Type::Ptr.byte_size(), 8);
    }

    #[test]
    fn bit_widths() {
        assert_eq!(Type::Bool.bit_width(), 1);
        assert_eq!(Type::I64.bit_width(), 64);
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for ty in [Type::Void, Type::Bool, Type::I64, Type::F64, Type::Ptr] {
            let text = ty.to_string();
            assert_eq!(text.parse::<Type>().unwrap(), ty);
        }
    }

    #[test]
    fn from_str_rejects_unknown() {
        assert!("i32".parse::<Type>().is_err());
        assert!("".parse::<Type>().is_err());
    }

    #[test]
    fn classification() {
        assert!(Type::I64.is_int());
        assert!(Type::Bool.is_int());
        assert!(!Type::F64.is_int());
        assert!(Type::F64.is_float());
        assert!(!Type::Void.is_value());
        assert!(Type::Ptr.is_value());
    }
}

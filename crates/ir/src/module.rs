//! Modules: collections of functions.

use std::collections::HashMap;
use std::fmt;

use crate::function::Function;

/// Identifies a function within a [`Module`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from a raw index.
    pub fn new(index: usize) -> Self {
        FuncId(index as u32)
    }

    /// The raw index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// A compilation unit: a named set of functions.
///
/// Function ids are assigned in insertion order and never invalidated.
#[derive(Clone, Debug, Default)]
pub struct Module {
    name: String,
    funcs: Vec<Function>,
    by_name: HashMap<String, FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a function, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        let id = FuncId::new(self.funcs.len());
        assert!(
            self.by_name.insert(func.name().to_string(), id).is_none(),
            "duplicate function name `{}`",
            func.name()
        );
        self.funcs.push(func);
        id
    }

    /// Looks a function up by name.
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Borrows a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutably borrows a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Number of functions in the module.
    pub fn num_functions(&self) -> usize {
        self.funcs.len()
    }

    /// Iterates over `(id, function)` pairs in insertion order.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Total linked static instructions across all functions (Table 3).
    pub fn num_static_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_linked_insts()).sum()
    }

    /// Renders the module in the textual IR format.
    pub fn to_text(&self) -> String {
        crate::printer::print_module(self)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new("m");
        let id = m.add_function(Function::new("foo", &[Type::I64], Type::Void));
        assert_eq!(m.function_id("foo"), Some(id));
        assert_eq!(m.function_id("bar"), None);
        assert_eq!(m.function(id).name(), "foo");
        assert_eq!(m.num_functions(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_panic() {
        let mut m = Module::new("m");
        m.add_function(Function::new("foo", &[], Type::Void));
        m.add_function(Function::new("foo", &[], Type::Void));
    }

    #[test]
    fn functions_iterate_in_order() {
        let mut m = Module::new("m");
        m.add_function(Function::new("a", &[], Type::Void));
        m.add_function(Function::new("b", &[], Type::Void));
        let names: Vec<_> = m.functions().map(|(_, f)| f.name().to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}

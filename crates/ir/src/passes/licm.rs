//! Loop-invariant code motion (opt-in).
//!
//! Hoists pure, non-trapping instructions whose operands are
//! loop-invariant out of natural loops into the loop's preheader.
//! Division and remainder are never hoisted (they trap and hoisting
//! would introduce the trap on iterations-zero paths); neither are
//! loads (memory may change inside the loop) nor calls.
//!
//! This pass is **not** part of [`crate::passes::optimize_function`]:
//! the recorded IPAS experiment data was produced by the default
//! pipeline, and hoisting changes dynamic instruction counts. Enable it
//! explicitly (`hoist_loop_invariants`) when using the IR library
//! standalone; rerun campaigns with `IPAS_FRESH=1` afterwards.

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOp, Inst};
use crate::value::Value;

/// A natural loop: its header and full body (header included).
#[derive(Debug, Clone)]
struct NaturalLoop {
    header: BlockId,
    body: HashSet<BlockId>,
}

fn find_loops(func: &Function, dt: &DomTree) -> Vec<NaturalLoop> {
    let preds = func.predecessors();
    let mut by_header: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
    for tail in func.block_ids() {
        if !dt.is_reachable(tail) {
            continue;
        }
        for header in func.successors(tail) {
            if !dt.dominates(header, tail) {
                continue;
            }
            let body = by_header.entry(header).or_default();
            body.insert(header);
            let mut stack = vec![tail];
            while let Some(bb) = stack.pop() {
                if body.insert(bb) {
                    for &p in &preds[bb.index()] {
                        stack.push(p);
                    }
                }
            }
        }
    }
    // Sorted by header so hoisting order (and thus the printed IR) is
    // deterministic — content-addressed artifact keys depend on it.
    let mut loops: Vec<NaturalLoop> = by_header
        .into_iter()
        .map(|(header, body)| NaturalLoop { header, body })
        .collect();
    loops.sort_by_key(|lp| lp.header.index());
    loops
}

/// The unique predecessor of the header from outside the loop, if any.
fn preheader(func: &Function, lp: &NaturalLoop) -> Option<BlockId> {
    let preds = func.predecessors();
    let outside: Vec<BlockId> = preds[lp.header.index()]
        .iter()
        .copied()
        .filter(|p| !lp.body.contains(p))
        .collect();
    match outside.as_slice() {
        [single] => {
            // Must branch only to the header (so hoisted code runs iff
            // the loop is entered).
            let succs = func.successors(*single);
            if succs.len() == 1 && succs[0] == lp.header {
                Some(*single)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Returns `true` for instructions safe to execute speculatively in the
/// preheader: pure and non-trapping.
fn hoistable(inst: &Inst) -> bool {
    match inst {
        Inst::Binary { op, .. } => !matches!(op, BinOp::Sdiv | BinOp::Srem),
        Inst::Icmp { .. }
        | Inst::Fcmp { .. }
        | Inst::Cast { .. }
        | Inst::Select { .. }
        | Inst::Gep { .. } => true,
        _ => false,
    }
}

/// Hoists loop-invariant instructions. Returns the number moved.
pub fn hoist_loop_invariants(func: &mut Function) -> usize {
    let dt = DomTree::compute(func);
    hoist_loop_invariants_with(func, &dt)
}

/// Hoists loop-invariant instructions reusing a caller-provided
/// dominator tree (which must be current for `func`). Identical result
/// to [`hoist_loop_invariants`].
pub fn hoist_loop_invariants_with(func: &mut Function, dt: &DomTree) -> usize {
    let loops = find_loops(func, dt);
    let inst_blocks = func.inst_blocks();
    let mut moved = 0;

    for lp in &loops {
        let Some(pre) = preheader(func, lp) else {
            continue;
        };
        // Values defined outside the loop are invariant; grow the set
        // with hoisted instructions until a fixpoint.
        let mut invariant: HashSet<InstId> = HashSet::new();
        let defined_in_loop = |id: InstId, invariant: &HashSet<InstId>| {
            !invariant.contains(&id)
                && inst_blocks
                    .get(&id)
                    .map(|bb| lp.body.contains(bb))
                    .unwrap_or(false)
        };
        let mut body: Vec<BlockId> = lp.body.iter().copied().collect();
        body.sort_by_key(|b| b.index());
        loop {
            let mut to_hoist: Vec<(BlockId, InstId)> = Vec::new();
            for &bb in &body {
                // In irreducible CFGs a natural-loop body block need not
                // be dominated by the header; hoisting from such a block
                // could break SSA dominance. Skip them.
                if !dt.dominates(lp.header, bb) {
                    continue;
                }
                for &id in func.block(bb).insts() {
                    if invariant.contains(&id) {
                        continue;
                    }
                    let inst = func.inst(id);
                    if !hoistable(inst) {
                        continue;
                    }
                    let mut all_invariant = true;
                    inst.for_each_operand(|v| {
                        if let Value::Inst(d) = v {
                            if defined_in_loop(d, &invariant) {
                                all_invariant = false;
                            }
                        }
                    });
                    if all_invariant {
                        to_hoist.push((bb, id));
                    }
                }
            }
            if to_hoist.is_empty() {
                break;
            }
            for (bb, id) in to_hoist {
                func.unlink_inst(bb, id);
                // Insert before the preheader's terminator.
                let pos = func.block(pre).len() - 1;
                let inst = func.inst(id).clone();
                // Relink the same arena slot by rebuilding the list.
                let mut insts = func.block(pre).insts().to_vec();
                insts.insert(pos, id);
                func.set_block_insts(pre, insts);
                let _ = inst;
                invariant.insert(id);
                moved += 1;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;
    use crate::verify::verify_function;

    const LOOP: &str = r#"
fn @f(i64, i64) -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v4]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb3
bb2:
  %v2 = mul i64 %arg1, 3
  %v3 = add i64 %v0, %v2
  %v4 = add i64 %v3, 1
  br bb1
bb3:
  ret %v0
}
"#;

    #[test]
    fn hoists_invariant_mul_to_preheader() {
        let mut f = parse_function(LOOP).unwrap();
        let moved = hoist_loop_invariants(&mut f);
        assert_eq!(moved, 1, "{}", crate::printer::print_function(&f, None));
        verify_function(&f).unwrap();
        // The mul now sits in bb0 before the br.
        let entry_ops: Vec<&str> = f
            .block(f.entry())
            .insts()
            .iter()
            .map(|&id| f.inst(id).opcode_name())
            .collect();
        assert_eq!(entry_ops, vec!["mul", "br"]);
    }

    #[test]
    fn behaviour_is_preserved() {
        use ipas_test_interp_shim::run_i64;
        let mut f = parse_function(LOOP).unwrap();
        let before = run_i64(&f, &[7, 5]);
        hoist_loop_invariants(&mut f);
        let after = run_i64(&f, &[7, 5]);
        assert_eq!(before, after);
    }

    // A minimal evaluator for the test above, avoiding a dev-dependency
    // cycle on the interpreter crate: executes straight-line i64 code
    // with phis/branches (enough for LOOP).
    mod ipas_test_interp_shim {
        use crate::function::Function;
        use crate::inst::{BinOp, Inst};
        use crate::value::Value;

        pub fn run_i64(f: &Function, args: &[i64]) -> i64 {
            let mut regs = vec![0i64; f.num_inst_slots()];
            let eval = |regs: &Vec<i64>, v: Value| -> i64 {
                match v {
                    Value::Inst(id) => regs[id.index()],
                    Value::Param(n) => args[n as usize],
                    Value::Const(c) => c.as_i64().or(c.as_bool().map(|b| b as i64)).expect("int"),
                }
            };
            let mut bb = f.entry();
            let mut prev = None;
            let mut fuel = 100_000;
            loop {
                fuel -= 1;
                assert!(fuel > 0, "runaway test loop");
                let insts = f.block(bb).insts().to_vec();
                let mut updates = Vec::new();
                for &id in &insts {
                    match f.inst(id) {
                        Inst::Phi { incomings, .. } => {
                            let p = prev.expect("phi not in entry");
                            let (_, v) = incomings.iter().find(|(b, _)| *b == p).expect("incoming");
                            updates.push((id, eval(&regs, *v)));
                        }
                        _ => break,
                    }
                }
                for (id, v) in updates {
                    regs[id.index()] = v;
                }
                for &id in &insts {
                    match f.inst(id) {
                        Inst::Phi { .. } => {}
                        Inst::Binary { op, lhs, rhs, .. } => {
                            let (a, b) = (eval(&regs, *lhs), eval(&regs, *rhs));
                            regs[id.index()] = match op {
                                BinOp::Add => a.wrapping_add(b),
                                BinOp::Mul => a.wrapping_mul(b),
                                other => panic!("shim does not model {other:?}"),
                            };
                        }
                        Inst::Icmp { pred, lhs, rhs } => {
                            regs[id.index()] =
                                pred.eval(eval(&regs, *lhs), eval(&regs, *rhs)) as i64;
                        }
                        Inst::Br { target } => {
                            prev = Some(bb);
                            bb = *target;
                        }
                        Inst::CondBr {
                            cond,
                            then_bb,
                            else_bb,
                        } => {
                            let c = eval(&regs, *cond) != 0;
                            prev = Some(bb);
                            bb = if c { *then_bb } else { *else_bb };
                        }
                        Inst::Ret { value } => {
                            return eval(&regs, value.expect("returns i64"));
                        }
                        other => panic!("shim does not model {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn does_not_hoist_division() {
        let mut f = parse_function(
            r#"
fn @f(i64, i64) -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v3]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb3
bb2:
  %v2 = sdiv i64 100, %arg1
  %v3 = add i64 %v0, %v2
  br bb1
bb3:
  ret %v0
}
"#,
        )
        .unwrap();
        // arg1 may be zero; if arg0 <= 0 the loop never runs and the
        // division must not execute. LICM must leave it in place.
        assert_eq!(hoist_loop_invariants(&mut f), 0);
    }

    #[test]
    fn does_not_hoist_variant_computation() {
        let mut f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v2]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb3
bb2:
  %v2 = add i64 %v0, 1
  br bb1
bb3:
  ret %v0
}
"#,
        )
        .unwrap();
        assert_eq!(hoist_loop_invariants(&mut f), 0);
    }

    #[test]
    fn hoists_chains_transitively() {
        let mut f = parse_function(
            r#"
fn @f(i64, i64) -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v5]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb3
bb2:
  %v2 = mul i64 %arg1, 3
  %v3 = add i64 %v2, 7
  %v4 = add i64 %v0, %v3
  %v5 = add i64 %v4, 1
  br bb1
bb3:
  ret %v0
}
"#,
        )
        .unwrap();
        // v2 and v3 are invariant (v3 depends on hoisted v2); v4/v5 are not.
        assert_eq!(hoist_loop_invariants(&mut f), 2);
        verify_function(&f).unwrap();
    }
}

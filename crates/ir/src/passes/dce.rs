//! Dead code elimination.
//!
//! Removes linked instructions whose results are unused and that have no
//! side effects. Calls are conservatively kept unless they target a pure
//! math intrinsic; stores, terminators, and IPAS detector calls are always
//! kept.

use std::collections::HashSet;

use crate::function::{Function, InstId};
use crate::inst::{Callee, Inst};
use crate::value::Value;

/// Returns `true` if the instruction can be removed when its result is
/// unused.
fn is_removable(inst: &Inst) -> bool {
    match inst {
        Inst::Binary { .. }
        | Inst::Icmp { .. }
        | Inst::Fcmp { .. }
        | Inst::Cast { .. }
        | Inst::Select { .. }
        | Inst::Gep { .. }
        | Inst::Load { .. }
        | Inst::Phi { .. }
        | Inst::Alloca { .. } => true,
        Inst::Call { callee, .. } => match callee {
            Callee::Intrinsic(i) => i.is_pure_math(),
            Callee::Func(_) => false,
        },
        Inst::Store { .. } | Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. } => false,
    }
}

/// Runs DCE on `func` using mark-and-sweep from side-effecting roots, so
/// mutually-referencing dead cycles (e.g. an unobserved loop counter's
/// phi/add pair) are removed in one pass. Returns the number of
/// instructions removed.
pub fn eliminate_dead_code(func: &mut Function) -> usize {
    // Roots: every instruction that must stay regardless of uses.
    let mut live: HashSet<InstId> = HashSet::new();
    let mut work: Vec<InstId> = Vec::new();
    for bb in func.block_ids() {
        for &id in func.block(bb).insts() {
            if !is_removable(func.inst(id)) && live.insert(id) {
                work.push(id);
            }
        }
    }
    // Mark: operands of live instructions are live.
    while let Some(id) = work.pop() {
        func.inst(id).for_each_operand(|v| {
            if let Value::Inst(def) = v {
                if live.insert(def) {
                    work.push(def);
                }
            }
        });
    }
    // Sweep.
    let mut removed = 0;
    for bb in func.block_ids().collect::<Vec<_>>() {
        let keep: Vec<InstId> = func
            .block(bb)
            .insts()
            .iter()
            .copied()
            .filter(|id| live.contains(id))
            .collect();
        removed += func.block(bb).len() - keep.len();
        func.set_block_insts(bb, keep);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Intrinsic};
    use crate::types::Type;
    use crate::verify::verify_function;

    #[test]
    fn removes_unused_chain() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let dead1 = b.binary(BinOp::Add, Type::I64, Value::param(0), Value::i64(1));
        let _dead2 = b.binary(BinOp::Mul, Type::I64, dead1, Value::i64(2));
        b.ret(Some(Value::param(0)));
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 2);
        assert_eq!(f.num_linked_insts(), 1);
        verify_function(&f).unwrap();
    }

    #[test]
    fn keeps_stores_and_impure_calls() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        let p = b.call_intrinsic(Intrinsic::Malloc, vec![Value::i64(8)]);
        b.store(Type::I64, Value::i64(1), p);
        b.call_intrinsic(Intrinsic::PrintI64, vec![Value::i64(1)]);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0);
    }

    #[test]
    fn removes_unused_pure_math_call() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        b.call_intrinsic(Intrinsic::Sqrt, vec![Value::f64(2.0)]);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 1);
    }

    #[test]
    fn keeps_ipas_checks() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        b.call_intrinsic(Intrinsic::IpasCheckI, vec![Value::i64(1), Value::i64(1)]);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(eliminate_dead_code(&mut f), 0);
    }

    #[test]
    fn removes_transitively_dead_phi_cycles() {
        // Two phis that only feed each other are dead together.
        let mut b = FunctionBuilder::new("f", &[], Type::I64);
        let entry = b.entry_block();
        let header = b.new_block();
        let exit = b.new_block();
        b.switch_to_block(entry);
        b.br(header);
        b.switch_to_block(header);
        let phi = b.phi(Type::I64, vec![(entry, Value::i64(0))]);
        let next = b.binary(BinOp::Add, Type::I64, phi, Value::i64(1));
        let cond = b.icmp(crate::inst::IcmpPred::Slt, next, Value::i64(10));
        b.cond_br(cond, header, exit);
        b.switch_to_block(exit);
        b.ret(Some(Value::i64(42)));
        let mut f = b.finish();
        // Patch the phi back-edge.
        let header_insts: Vec<_> = f.block(header).insts().to_vec();
        if let Inst::Phi { incomings, .. } = f.inst_mut(header_insts[0]) {
            incomings.push((header, next));
        }
        verify_function(&f).unwrap();
        // cond is used by the condbr, so only... actually phi/next feed cond.
        // Nothing is dead here; now make the loop counter unobserved by
        // replacing the branch condition with a constant.
        let term = f.block(header).terminator().unwrap();
        if let Inst::CondBr { cond, .. } = f.inst_mut(term) {
            *cond = Value::bool(false);
        }
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 3); // phi, add, icmp
        verify_function(&f).unwrap();
    }
}

//! Promotion of stack slots to SSA registers (the classic "mem2reg").
//!
//! An alloca is *promotable* when it allocates a single slot and every use
//! is either the address of a [`Inst::Load`] or the address of a
//! [`Inst::Store`] (never the stored value, a GEP base, or a call
//! argument — those escape). Promotable allocas are rewritten into pruned
//! SSA form with phi nodes placed at iterated dominance frontiers, and the
//! alloca, its loads, and its stores are unlinked.

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::Inst;
use crate::types::Type;
use crate::value::{Constant, Value};

/// Runs mem2reg on `func`. Returns the number of allocas promoted.
pub fn promote_memory_to_registers(func: &mut Function) -> usize {
    let candidates = find_promotable(func);
    if candidates.is_empty() {
        return 0;
    }
    let dt = DomTree::compute(func);
    promote_candidates(func, &dt, candidates)
}

/// Runs mem2reg reusing a caller-provided dominator tree (which must be
/// current for `func`). The pass manager uses this to share one cached
/// tree across passes; the result is identical to
/// [`promote_memory_to_registers`].
pub fn promote_memory_to_registers_with(func: &mut Function, dt: &DomTree) -> usize {
    let candidates = find_promotable(func);
    if candidates.is_empty() {
        return 0;
    }
    promote_candidates(func, dt, candidates)
}

fn promote_candidates(func: &mut Function, dt: &DomTree, candidates: Vec<(InstId, Type)>) -> usize {
    let df = dt.dominance_frontiers(func);
    let inst_blocks = func.inst_blocks();

    // Dominator-tree children (for the renaming walk).
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); func.num_blocks()];
    for bb in func.block_ids() {
        if let Some(parent) = dt.idom(bb) {
            children[parent.index()].push(bb);
        }
    }

    let count = candidates.len();
    let slot_of: HashMap<InstId, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, (id, _))| (*id, i))
        .collect();
    let slot_ty: Vec<Type> = candidates.iter().map(|(_, ty)| *ty).collect();

    // --- Phi placement at iterated dominance frontiers. -------------------
    // def_blocks[slot] = blocks containing a store to the slot.
    let mut def_blocks: Vec<HashSet<BlockId>> = vec![HashSet::new(); count];
    for bb in func.block_ids() {
        for &id in func.block(bb).insts() {
            if let Inst::Store {
                addr: Value::Inst(a),
                ..
            } = func.inst(id)
            {
                if let Some(&slot) = slot_of.get(a) {
                    def_blocks[slot].insert(bb);
                }
            }
        }
    }

    // phis[(block, slot)] = phi inst id.
    let mut phis: HashMap<(BlockId, usize), InstId> = HashMap::new();
    for slot in 0..count {
        // Sorted so phi InstIds (and thus printed value numbers) are
        // stable across runs — the store keys protected modules by the
        // printed IR text.
        let mut work: Vec<BlockId> = def_blocks[slot].iter().copied().collect();
        work.sort_by_key(|b| b.index());
        let mut placed: HashSet<BlockId> = HashSet::new();
        while let Some(bb) = work.pop() {
            for &frontier in &df[bb.index()] {
                if placed.insert(frontier) {
                    let phi = func.insert_inst(
                        frontier,
                        0,
                        Inst::Phi {
                            ty: slot_ty[slot],
                            incomings: Vec::new(),
                        },
                    );
                    phis.insert((frontier, slot), phi);
                    if !def_blocks[slot].contains(&frontier) {
                        work.push(frontier);
                    }
                }
            }
        }
    }

    // --- Renaming walk over the dominator tree. ---------------------------
    // Value replacing each promoted load.
    let mut replacements: HashMap<InstId, Value> = HashMap::new();
    // Instructions to unlink: (block, inst).
    let mut to_unlink: Vec<(BlockId, InstId)> = Vec::new();

    struct Frame {
        bb: BlockId,
        child_idx: usize,
        pushed: Vec<usize>, // slots whose stack we pushed in this frame
    }

    let zero_of = |ty: Type| -> Value {
        match ty {
            Type::I64 => Value::i64(0),
            Type::F64 => Value::f64(0.0),
            Type::Bool => Value::bool(false),
            Type::Ptr => Value::Const(Constant::Null),
            Type::Void => unreachable!("void alloca rejected by find_promotable"),
        }
    };

    let mut stacks: Vec<Vec<Value>> = (0..count).map(|_| Vec::new()).collect();
    let mut stack_frames = vec![Frame {
        bb: func.entry(),
        child_idx: 0,
        pushed: Vec::new(),
    }];
    let mut visited_entry: HashSet<BlockId> = HashSet::new();
    visited_entry.insert(func.entry());

    // First visit processing happens when the frame is pushed.
    let process_block = |func: &mut Function,
                         stacks: &mut Vec<Vec<Value>>,
                         replacements: &mut HashMap<InstId, Value>,
                         to_unlink: &mut Vec<(BlockId, InstId)>,
                         bb: BlockId|
     -> Vec<usize> {
        let mut pushed = Vec::new();
        let insts: Vec<InstId> = func.block(bb).insts().to_vec();
        for id in insts {
            // Phi nodes we inserted define new values for their slot.
            if let Some(&slot) = phis
                .iter()
                .find(|((pbb, _), pid)| *pbb == bb && **pid == id)
                .map(|((_, s), _)| s)
            {
                stacks[slot].push(Value::inst(id));
                pushed.push(slot);
                continue;
            }
            match func.inst(id).clone() {
                Inst::Load {
                    addr: Value::Inst(a),
                    ..
                } => {
                    if let Some(&slot) = slot_of.get(&a) {
                        let cur = stacks[slot]
                            .last()
                            .copied()
                            .unwrap_or_else(|| zero_of(slot_ty[slot]));
                        replacements.insert(id, cur);
                        to_unlink.push((bb, id));
                    }
                }
                Inst::Store {
                    addr: Value::Inst(a),
                    value,
                    ..
                } => {
                    if let Some(&slot) = slot_of.get(&a) {
                        stacks[slot].push(value);
                        pushed.push(slot);
                        to_unlink.push((bb, id));
                    }
                }
                Inst::Alloca { .. } if slot_of.contains_key(&id) => {
                    to_unlink.push((bb, id));
                }
                _ => {}
            }
        }
        // Fill phi incomings of successors.
        for succ in func.successors(bb) {
            for slot in 0..count {
                if let Some(&phi) = phis.get(&(succ, slot)) {
                    let cur = stacks[slot]
                        .last()
                        .copied()
                        .unwrap_or_else(|| zero_of(slot_ty[slot]));
                    if let Inst::Phi { incomings, .. } = func.inst_mut(phi) {
                        if !incomings.iter().any(|(p, _)| *p == bb) {
                            incomings.push((bb, cur));
                        }
                    }
                }
            }
        }
        pushed
    };

    // Seed: process the entry block.
    let pushed = process_block(
        func,
        &mut stacks,
        &mut replacements,
        &mut to_unlink,
        func.entry(),
    );
    stack_frames.last_mut().expect("entry frame").pushed = pushed;

    while let Some(frame) = stack_frames.last_mut() {
        let bb = frame.bb;
        let idx = frame.child_idx;
        if idx < children[bb.index()].len() {
            frame.child_idx += 1;
            let child = children[bb.index()][idx];
            let pushed = process_block(func, &mut stacks, &mut replacements, &mut to_unlink, child);
            stack_frames.push(Frame {
                bb: child,
                child_idx: 0,
                pushed,
            });
        } else {
            for slot in frame.pushed.drain(..) {
                stacks[slot].pop();
            }
            stack_frames.pop();
        }
    }

    // Blocks unreachable from the entry are not visited by the dominator
    // walk, but may still hold loads/stores of promoted slots (e.g. code
    // after an always-terminating `if`). Replace those loads with the
    // zero value and drop the stores so no dangling uses remain.
    for bb in func.block_ids() {
        if dt.is_reachable(bb) {
            continue;
        }
        let insts: Vec<InstId> = func.block(bb).insts().to_vec();
        for id in insts {
            match func.inst(id).clone() {
                Inst::Load {
                    addr: Value::Inst(a),
                    ..
                } => {
                    if let Some(&slot) = slot_of.get(&a) {
                        replacements.insert(id, zero_of(slot_ty[slot]));
                        to_unlink.push((bb, id));
                    }
                }
                Inst::Store {
                    addr: Value::Inst(a),
                    ..
                } if slot_of.contains_key(&a) => {
                    to_unlink.push((bb, id));
                }
                _ => {}
            }
        }
    }

    // Resolve replacement chains (a load may be replaced by another
    // promoted load's value).
    let resolve = |mut v: Value, replacements: &HashMap<InstId, Value>| -> Value {
        let mut hops = 0;
        while let Value::Inst(id) = v {
            match replacements.get(&id) {
                Some(&next) => {
                    v = next;
                    hops += 1;
                    assert!(hops < 1_000_000, "replacement cycle in mem2reg");
                }
                None => break,
            }
        }
        v
    };

    func.map_all_operands(|v| resolve(v, &replacements));
    for (bb, id) in to_unlink {
        func.unlink_inst(bb, id);
    }

    // `inst_blocks` was only needed to keep borrows simple; silence unused.
    let _ = inst_blocks;

    count
}

/// Finds promotable allocas: single-slot, address-only uses in load/store.
fn find_promotable(func: &Function) -> Vec<(InstId, Type)> {
    let mut allocas: HashMap<InstId, Type> = HashMap::new();
    for bb in func.block_ids() {
        for &id in func.block(bb).insts() {
            if let Inst::Alloca { ty, count } = func.inst(id) {
                if *count == 1 && *ty != Type::Void {
                    allocas.insert(id, *ty);
                }
            }
        }
    }
    if allocas.is_empty() {
        return Vec::new();
    }
    // Disqualify allocas with escaping uses.
    let mut escaped: HashSet<InstId> = HashSet::new();
    for bb in func.block_ids() {
        for &id in func.block(bb).insts() {
            let inst = func.inst(id);
            match inst {
                Inst::Load { addr, ty } => {
                    if let Value::Inst(a) = addr {
                        if let Some(slot_ty) = allocas.get(a) {
                            if slot_ty != ty {
                                escaped.insert(*a);
                            }
                        }
                    }
                }
                Inst::Store { addr, value, ty } => {
                    if let Value::Inst(a) = addr {
                        if let Some(slot_ty) = allocas.get(a) {
                            if slot_ty != ty {
                                escaped.insert(*a);
                            }
                        }
                    }
                    // Storing the *address itself* escapes it.
                    if let Value::Inst(v) = value {
                        if allocas.contains_key(v) {
                            escaped.insert(*v);
                        }
                    }
                }
                other => {
                    other.for_each_operand(|v| {
                        if let Value::Inst(a) = v {
                            if allocas.contains_key(&a) {
                                escaped.insert(a);
                            }
                        }
                    });
                }
            }
        }
    }
    let mut out: Vec<(InstId, Type)> = allocas
        .into_iter()
        .filter(|(id, _)| !escaped.contains(id))
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, IcmpPred};
    use crate::verify::verify_function;

    /// let mut x = 0; if c { x = 1 } else { x = 2 }; return x;
    fn diamond_local() -> Function {
        let mut b = FunctionBuilder::new("f", &[Type::Bool], Type::I64);
        let entry = b.entry_block();
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        b.switch_to_block(entry);
        let slot = b.alloca(Type::I64, 1);
        b.store(Type::I64, Value::i64(0), slot);
        b.cond_br(Value::param(0), then_bb, else_bb);
        b.switch_to_block(then_bb);
        b.store(Type::I64, Value::i64(1), slot);
        b.br(join);
        b.switch_to_block(else_bb);
        b.store(Type::I64, Value::i64(2), slot);
        b.br(join);
        b.switch_to_block(join);
        let v = b.load(Type::I64, slot);
        b.ret(Some(v));
        b.finish()
    }

    #[test]
    fn promotes_diamond_with_phi() {
        let mut f = diamond_local();
        let promoted = promote_memory_to_registers(&mut f);
        assert_eq!(promoted, 1);
        verify_function(&f).unwrap();
        // A phi must exist in the join block; no load/store/alloca remain.
        let mut has_phi = false;
        for bb in f.block_ids() {
            for &id in f.block(bb).insts() {
                match f.inst(id) {
                    Inst::Phi { .. } => has_phi = true,
                    Inst::Load { .. } | Inst::Store { .. } | Inst::Alloca { .. } => {
                        panic!("memory op survived mem2reg")
                    }
                    _ => {}
                }
            }
        }
        assert!(has_phi);
    }

    #[test]
    fn promotes_loop_counter() {
        // i = 0; while (i < n) i = i + 1; return i;
        let mut b = FunctionBuilder::new("count", &[Type::I64], Type::I64);
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.switch_to_block(entry);
        let slot = b.alloca(Type::I64, 1);
        b.store(Type::I64, Value::i64(0), slot);
        b.br(header);
        b.switch_to_block(header);
        let i = b.load(Type::I64, slot);
        let c = b.icmp(IcmpPred::Slt, i, Value::param(0));
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let i2 = b.load(Type::I64, slot);
        let inc = b.binary(BinOp::Add, Type::I64, i2, Value::i64(1));
        b.store(Type::I64, inc, slot);
        b.br(header);
        b.switch_to_block(exit);
        let out = b.load(Type::I64, slot);
        b.ret(Some(out));
        let mut f = b.finish();
        assert_eq!(promote_memory_to_registers(&mut f), 1);
        verify_function(&f).unwrap();
    }

    #[test]
    fn escaping_alloca_is_not_promoted() {
        let mut b = FunctionBuilder::new("esc", &[], Type::I64);
        let slot = b.alloca(Type::I64, 1);
        // GEP use escapes the alloca.
        let p = b.gep(Type::I64, slot, Value::i64(0));
        b.store(Type::I64, Value::i64(3), p);
        let v = b.load(Type::I64, slot);
        b.ret(Some(v));
        let mut f = b.finish();
        assert_eq!(promote_memory_to_registers(&mut f), 0);
        verify_function(&f).unwrap();
    }

    #[test]
    fn multi_slot_alloca_is_not_promoted() {
        let mut b = FunctionBuilder::new("arr", &[], Type::Void);
        let slot = b.alloca(Type::I64, 4);
        b.store(Type::I64, Value::i64(1), slot);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(promote_memory_to_registers(&mut f), 0);
    }

    #[test]
    fn load_before_store_yields_zero() {
        let mut b = FunctionBuilder::new("uninit", &[], Type::I64);
        let slot = b.alloca(Type::I64, 1);
        let v = b.load(Type::I64, slot);
        b.ret(Some(v));
        let mut f = b.finish();
        assert_eq!(promote_memory_to_registers(&mut f), 1);
        verify_function(&f).unwrap();
        // The return should now be the zero constant.
        let term = f.block(f.entry()).terminator().unwrap();
        assert_eq!(
            *f.inst(term),
            Inst::Ret {
                value: Some(Value::i64(0))
            }
        );
    }
}

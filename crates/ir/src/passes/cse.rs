//! Dominator-scoped common-subexpression elimination (a light GVN).
//!
//! Pure value-producing instructions (arithmetic, comparisons, casts,
//! selects, GEPs) with identical opcodes and operands compute identical
//! values; a later occurrence dominated by an earlier one is replaced by
//! it. Loads, stores, calls, phis, and allocas are never merged (loads
//! may observe different memory; calls may have effects; allocas are
//! distinct objects).
//!
//! NOTE: this pass — like every optimization here — must run *before*
//! the IPAS duplication pass: it would otherwise merge the shadow
//! computations with their originals and disable detection. That is
//! exactly why the paper performs protection "after all user-level
//! optimizations" (§3, step 4).

use std::collections::HashMap;

use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOp, CastOp, FcmpPred, IcmpPred, Inst};
use crate::types::Type;
use crate::value::Value;

/// The opcode-specific part of an expression key. An exact enum (not a
/// hash) so distinct operations can never collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Detail {
    Binary(BinOp, Type),
    Icmp(IcmpPred),
    Fcmp(FcmpPred),
    Cast(CastOp, Type),
    Select(Type),
    Gep(Type),
}

/// A hashable key identifying a pure computation.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ExprKey {
    detail: Detail,
    operands: Vec<Value>,
}

fn key_of(inst: &Inst) -> Option<ExprKey> {
    let detail = match inst {
        Inst::Binary { op, ty, .. } => Detail::Binary(*op, *ty),
        Inst::Icmp { pred, .. } => Detail::Icmp(*pred),
        Inst::Fcmp { pred, .. } => Detail::Fcmp(*pred),
        Inst::Cast { op, to, .. } => Detail::Cast(*op, *to),
        Inst::Select { ty, .. } => Detail::Select(*ty),
        Inst::Gep { elem_ty, .. } => Detail::Gep(*elem_ty),
        _ => return None,
    };
    Some(ExprKey {
        detail,
        operands: inst.operands(),
    })
}

/// Runs dominator-scoped CSE. Returns the number of instructions merged.
pub fn eliminate_common_subexpressions(func: &mut Function) -> usize {
    let dt = DomTree::compute(func);
    eliminate_common_subexpressions_with(func, &dt)
}

/// Runs dominator-scoped CSE reusing a caller-provided dominator tree
/// (which must be current for `func`). Identical result to
/// [`eliminate_common_subexpressions`].
pub fn eliminate_common_subexpressions_with(func: &mut Function, dt: &DomTree) -> usize {
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); func.num_blocks()];
    for bb in func.block_ids() {
        if let Some(parent) = dt.idom(bb) {
            children[parent.index()].push(bb);
        }
    }

    // Scoped walk: available expressions accumulate down the dominator
    // tree and are popped on the way back up.
    let mut available: HashMap<ExprKey, Vec<InstId>> = HashMap::new();
    let mut replacements: HashMap<InstId, Value> = HashMap::new();

    struct Frame {
        bb: BlockId,
        child_idx: usize,
        defined: Vec<ExprKey>,
    }
    let mut stack = Vec::new();

    let enter = |func: &Function,
                 available: &mut HashMap<ExprKey, Vec<InstId>>,
                 replacements: &mut HashMap<InstId, Value>,
                 bb: BlockId|
     -> Vec<ExprKey> {
        let mut defined = Vec::new();
        for &id in func.block(bb).insts() {
            // Resolve operands through already-planned replacements so
            // chains of equal expressions merge in one pass.
            let mut inst = func.inst(id).clone();
            inst.map_operands(|v| match v {
                Value::Inst(d) => replacements.get(&d).copied().unwrap_or(v),
                other => other,
            });
            let Some(key) = key_of(&inst) else { continue };
            if let Some(stack) = available.get(&key) {
                if let Some(&leader) = stack.last() {
                    replacements.insert(id, Value::inst(leader));
                    continue;
                }
            }
            available.entry(key.clone()).or_default().push(id);
            defined.push(key);
        }
        defined
    };

    let defined = enter(func, &mut available, &mut replacements, func.entry());
    stack.push(Frame {
        bb: func.entry(),
        child_idx: 0,
        defined,
    });
    while let Some(frame) = stack.last_mut() {
        let bb = frame.bb;
        let idx = frame.child_idx;
        if idx < children[bb.index()].len() {
            frame.child_idx += 1;
            let child = children[bb.index()][idx];
            let defined = enter(func, &mut available, &mut replacements, child);
            stack.push(Frame {
                bb: child,
                child_idx: 0,
                defined,
            });
        } else {
            for key in frame.defined.drain(..) {
                if let Some(v) = available.get_mut(&key) {
                    v.pop();
                }
            }
            stack.pop();
        }
    }

    if replacements.is_empty() {
        return 0;
    }
    let n = replacements.len();
    func.map_all_operands(|v| match v {
        Value::Inst(id) => replacements.get(&id).copied().unwrap_or(v),
        other => other,
    });
    for &id in replacements.keys() {
        if let Some(bb) = func.block_of(id) {
            func.unlink_inst(bb, id);
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;
    use crate::verify::verify_function;

    #[test]
    fn merges_identical_expressions_in_block() {
        let mut f = parse_function(
            r#"
fn @f(i64, i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, %arg1
  %v1 = add i64 %arg0, %arg1
  %v2 = mul i64 %v0, %v1
  ret %v2
}
"#,
        )
        .unwrap();
        assert_eq!(eliminate_common_subexpressions(&mut f), 1);
        verify_function(&f).unwrap();
        assert_eq!(f.num_linked_insts(), 3);
    }

    #[test]
    fn merges_across_dominating_blocks() {
        let mut f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  %v0 = mul i64 %arg0, 3
  br bb1
bb1:
  %v1 = mul i64 %arg0, 3
  ret %v1
}
"#,
        )
        .unwrap();
        assert_eq!(eliminate_common_subexpressions(&mut f), 1);
        verify_function(&f).unwrap();
    }

    #[test]
    fn does_not_merge_across_siblings() {
        // bb1 and bb2 are dominator-tree siblings: neither's expression
        // is available in the other.
        let mut f = parse_function(
            r#"
fn @f(i1, i64) -> i64 {
bb0:
  condbr %arg0, bb1, bb2
bb1:
  %v0 = add i64 %arg1, 5
  ret %v0
bb2:
  %v1 = add i64 %arg1, 5
  ret %v1
}
"#,
        )
        .unwrap();
        assert_eq!(eliminate_common_subexpressions(&mut f), 0);
    }

    #[test]
    fn does_not_merge_loads_calls_or_allocas() {
        let mut f = parse_function(
            r#"
fn @f(ptr) -> i64 {
bb0:
  %v0 = load i64, %arg0
  store i64 9, %arg0
  %v1 = load i64, %arg0
  %v2 = alloca i64, 1
  %v3 = alloca i64, 1
  %v4 = call mpi_rank() -> i64
  %v5 = call mpi_rank() -> i64
  %v6 = add i64 %v0, %v1
  ret %v6
}
"#,
        )
        .unwrap();
        assert_eq!(eliminate_common_subexpressions(&mut f), 0);
    }

    #[test]
    fn chains_merge_transitively() {
        let mut f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 1
  %v1 = add i64 %arg0, 1
  %v2 = mul i64 %v0, 2
  %v3 = mul i64 %v1, 2
  %v4 = add i64 %v2, %v3
  ret %v4
}
"#,
        )
        .unwrap();
        // v1 merges into v0; v3's operand resolves to v0, so v3 merges
        // into v2 in the same pass.
        assert_eq!(eliminate_common_subexpressions(&mut f), 2);
        verify_function(&f).unwrap();
    }

    #[test]
    fn distinguishes_different_predicates_and_types() {
        let mut f = parse_function(
            r#"
fn @f(i64) -> i1 {
bb0:
  %v0 = icmp slt %arg0, 5
  %v1 = icmp sle %arg0, 5
  %v2 = and i1 %v0, %v1
  ret %v2
}
"#,
        )
        .unwrap();
        assert_eq!(eliminate_common_subexpressions(&mut f), 0);
    }

    #[test]
    fn gep_merging_respects_elem_type_and_operands() {
        let mut f = parse_function(
            r#"
fn @f(ptr, i64) -> i64 {
bb0:
  %v0 = gep i64 %arg0, %arg1
  %v1 = gep i64 %arg0, %arg1
  %v2 = load i64, %v0
  %v3 = load i64, %v1
  %v4 = add i64 %v2, %v3
  ret %v4
}
"#,
        )
        .unwrap();
        assert_eq!(eliminate_common_subexpressions(&mut f), 1);
        verify_function(&f).unwrap();
    }
}

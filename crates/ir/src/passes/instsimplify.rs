//! Algebraic instruction simplification (a peephole "instcombine lite").
//!
//! Rewrites instructions whose result is provably equal to one of their
//! operands or to a constant, without needing both operands constant
//! (that is [`crate::passes::constfold`]'s job):
//!
//! * `x + 0`, `x - 0`, `x * 1`, `x / 1`, `x | 0`, `x & -1`, `x ^ 0`,
//!   `x << 0`, `x >> 0` → `x`
//! * `x * 0`, `x & 0` → `0`; `x ^ x`, `x - x` → `0` (integer only)
//! * `x % 1` → `0`
//! * float identities are restricted to cases exact under IEEE-754:
//!   `x * 1.0`, `x / 1.0` → `x` (note `x + 0.0` is NOT folded: it
//!   changes `-0.0`)
//! * `select c, x, x` → `x`; `icmp eq x, x` → `true` (integers)
//!
//! Simplified instructions are unlinked and their uses rewritten.

use std::collections::HashMap;

use crate::function::{Function, InstId};
use crate::inst::{BinOp, IcmpPred, Inst};
use crate::value::{Constant, Value};

/// Runs algebraic simplification to a fixpoint. Returns the number of
/// instructions eliminated.
pub fn simplify_instructions(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut replacements: HashMap<InstId, Value> = HashMap::new();
        for bb in func.block_ids() {
            for &id in func.block(bb).insts() {
                if let Some(v) = simplify(func.inst(id)) {
                    replacements.insert(id, v);
                }
            }
        }
        if replacements.is_empty() {
            break;
        }
        total += replacements.len();
        // One round can plan chained replacements — `%b = sub %a, 0`
        // simplifies to `%a` while `%a = srem %x, 1` simplifies to `0`
        // — and every planned instruction gets unlinked below, so each
        // chain must be resolved to its (acyclic, by SSA dominance)
        // final value before uses are rewritten.
        let resolve = |mut v: Value| {
            while let Value::Inst(id) = v {
                match replacements.get(&id) {
                    Some(&next) => v = next,
                    None => break,
                }
            }
            v
        };
        func.map_all_operands(|v| match v {
            Value::Inst(id) if replacements.contains_key(&id) => resolve(v),
            other => other,
        });
        for &id in replacements.keys() {
            let bb = func.block_of(id).expect("simplified inst is linked");
            func.unlink_inst(bb, id);
        }
    }
    total
}

/// Returns the value an instruction provably computes, if simpler.
pub fn simplify(inst: &Inst) -> Option<Value> {
    match inst {
        Inst::Binary { op, ty, lhs, rhs } => {
            if ty.is_float() {
                return simplify_float(*op, *lhs, *rhs);
            }
            simplify_int(*op, *ty, *lhs, *rhs)
        }
        Inst::Select {
            cond: _,
            then_value,
            else_value,
            ..
        } if then_value == else_value => Some(*then_value),
        Inst::Icmp { pred, lhs, rhs } if lhs == rhs && !lhs.is_const() => {
            // x ⋈ x is decided by reflexivity (integers only; the
            // verifier restricts icmp to int/ptr operands).
            let v = matches!(pred, IcmpPred::Eq | IcmpPred::Sle | IcmpPred::Sge);
            Some(Value::bool(v))
        }
        _ => None,
    }
}

fn as_i64(v: Value) -> Option<i64> {
    v.as_const().and_then(Constant::as_i64)
}

fn simplify_int(op: BinOp, ty: crate::types::Type, lhs: Value, rhs: Value) -> Option<Value> {
    use BinOp::*;
    let l = as_i64(lhs);
    let r = as_i64(rhs);
    // Self-cancelling forms must produce a zero of the operand type:
    // `xor i1 x, x` is `false`, not the i64 constant 0.
    let zero = if ty == crate::types::Type::Bool {
        Value::bool(false)
    } else {
        Value::i64(0)
    };
    match op {
        Add => match (l, r) {
            (Some(0), _) => Some(rhs),
            (_, Some(0)) => Some(lhs),
            _ => None,
        },
        Sub => {
            if r == Some(0) {
                Some(lhs)
            } else if lhs == rhs && !lhs.is_const() {
                Some(zero)
            } else {
                None
            }
        }
        Mul => match (l, r) {
            (Some(1), _) => Some(rhs),
            (_, Some(1)) => Some(lhs),
            (Some(0), _) | (_, Some(0)) => Some(Value::i64(0)),
            _ => None,
        },
        Sdiv => {
            // x / 1 = x. (0 / x is NOT folded: x may be 0 and trap.)
            if r == Some(1) {
                Some(lhs)
            } else {
                None
            }
        }
        Srem => {
            if r == Some(1) {
                Some(Value::i64(0))
            } else {
                None
            }
        }
        And => match (l, r) {
            (Some(0), _) | (_, Some(0)) => Some(Value::i64(0)),
            (Some(-1), _) => Some(rhs),
            (_, Some(-1)) => Some(lhs),
            _ if lhs == rhs && !lhs.is_const() => Some(lhs),
            _ => None,
        },
        Or => match (l, r) {
            (Some(0), _) => Some(rhs),
            (_, Some(0)) => Some(lhs),
            (Some(-1), _) | (_, Some(-1)) => Some(Value::i64(-1)),
            _ if lhs == rhs && !lhs.is_const() => Some(lhs),
            _ => None,
        },
        Xor => {
            if r == Some(0) {
                Some(lhs)
            } else if l == Some(0) {
                Some(rhs)
            } else if lhs == rhs && !lhs.is_const() {
                Some(zero)
            } else {
                None
            }
        }
        Shl | Lshr | Ashr => {
            if r == Some(0) {
                Some(lhs)
            } else {
                None
            }
        }
        Fadd | Fsub | Fmul | Fdiv | Frem => unreachable!("caller dispatched on type"),
    }
}

fn simplify_float(op: BinOp, lhs: Value, rhs: Value) -> Option<Value> {
    use BinOp::*;
    let r = rhs.as_const().and_then(Constant::as_f64);
    match op {
        // Only exact IEEE identities: multiplication/division by 1.0.
        // (x + 0.0 maps -0.0 to 0.0; x - 0.0 is exact but x may be NaN
        // with payload semantics we choose not to reason about.)
        Fmul | Fdiv if r == Some(1.0) => Some(lhs),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::verify::verify_function;

    fn returned_value(f: &Function) -> Value {
        let term = f.block(f.entry()).terminator().expect("has terminator");
        match f.inst(term) {
            Inst::Ret { value: Some(v) } => *v,
            other => panic!("expected ret, got {other:?}"),
        }
    }

    #[test]
    fn additive_and_multiplicative_identities() {
        for (op, konst, expect_param) in [
            (BinOp::Add, 0i64, true),
            (BinOp::Sub, 0, true),
            (BinOp::Mul, 1, true),
            (BinOp::Sdiv, 1, true),
            (BinOp::Mul, 0, false),
            (BinOp::Srem, 1, false),
        ] {
            let mut b = FunctionBuilder::new("f", &[Type::I64], Type::I64);
            let v = b.binary(op, Type::I64, Value::param(0), Value::i64(konst));
            b.ret(Some(v));
            let mut f = b.finish();
            let n = simplify_instructions(&mut f);
            assert_eq!(n, 1, "{op:?} by {konst}");
            verify_function(&f).unwrap();
            let got = returned_value(&f);
            if expect_param {
                assert_eq!(got, Value::param(0), "{op:?}");
            } else {
                assert_eq!(got, Value::i64(0), "{op:?}");
            }
        }
    }

    #[test]
    fn self_cancelling_forms() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let x = Value::param(0);
        let sub = b.binary(BinOp::Sub, Type::I64, x, x);
        let xor = b.binary(BinOp::Xor, Type::I64, x, x);
        let sum = b.binary(BinOp::Add, Type::I64, sub, xor);
        b.ret(Some(sum));
        let mut f = b.finish();
        simplify_instructions(&mut f);
        // sub and xor fold to 0, then 0 + 0 is left to constfold; the
        // chain collapses after one constant_fold call.
        crate::passes::constant_fold(&mut f);
        assert_eq!(returned_value(&f), Value::i64(0));
    }

    #[test]
    fn float_mul_by_one_folds_but_add_zero_does_not() {
        let mut b = FunctionBuilder::new("f", &[Type::F64], Type::F64);
        let m = b.binary(BinOp::Fmul, Type::F64, Value::param(0), Value::f64(1.0));
        let a = b.binary(BinOp::Fadd, Type::F64, m, Value::f64(0.0));
        b.ret(Some(a));
        let mut f = b.finish();
        let n = simplify_instructions(&mut f);
        assert_eq!(n, 1, "only the fmul folds; fadd 0.0 is not exact");
        verify_function(&f).unwrap();
    }

    #[test]
    fn division_by_variable_is_untouched() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64], Type::I64);
        let v = b.binary(BinOp::Sdiv, Type::I64, Value::i64(0), Value::param(1));
        b.ret(Some(v));
        let mut f = b.finish();
        // 0 / x must stay: x may be zero and the trap is observable.
        assert_eq!(simplify_instructions(&mut f), 0);
    }

    #[test]
    fn reflexive_comparisons() {
        let mut b = FunctionBuilder::new("f", &[Type::I64], Type::Bool);
        let c = b.icmp(IcmpPred::Sle, Value::param(0), Value::param(0));
        b.ret(Some(c));
        let mut f = b.finish();
        assert_eq!(simplify_instructions(&mut f), 1);
        assert_eq!(returned_value(&f), Value::bool(true));
    }

    #[test]
    fn select_with_equal_arms() {
        let mut b = FunctionBuilder::new("f", &[Type::Bool, Type::I64], Type::I64);
        let s = b.select(Type::I64, Value::param(0), Value::param(1), Value::param(1));
        b.ret(Some(s));
        let mut f = b.finish();
        assert_eq!(simplify_instructions(&mut f), 1);
        assert_eq!(returned_value(&f), Value::param(1));
    }

    #[test]
    fn chained_replacements_resolve_transitively() {
        // Fuzzer-minimized repro: `%a = srem %x, 1` simplifies to `0`
        // and `%b = sub %a, 0` simplifies to `%a` in the SAME round;
        // both get unlinked, so the use of `%b` must rewrite all the
        // way to `0`, not stop at the dangling `%a`.
        let mut b = FunctionBuilder::new("f", &[Type::I64], Type::I64);
        let a = b.binary(BinOp::Srem, Type::I64, Value::param(0), Value::i64(1));
        let s = b.binary(BinOp::Sub, Type::I64, a, Value::i64(0));
        b.ret(Some(s));
        let mut f = b.finish();
        assert_eq!(simplify_instructions(&mut f), 2);
        verify_function(&f).unwrap();
        assert_eq!(returned_value(&f), Value::i64(0));
    }

    #[test]
    fn shift_by_zero() {
        for op in [BinOp::Shl, BinOp::Lshr, BinOp::Ashr] {
            let mut b = FunctionBuilder::new("f", &[Type::I64], Type::I64);
            let v = b.binary(op, Type::I64, Value::param(0), Value::i64(0));
            b.ret(Some(v));
            let mut f = b.finish();
            assert_eq!(simplify_instructions(&mut f), 1, "{op:?}");
            assert_eq!(returned_value(&f), Value::param(0));
        }
    }
}

//! IR-to-IR transformation passes.
//!
//! The SciL frontend lowers locals to `alloca`/`load`/`store`; the standard
//! pipeline ([`optimize_function`], [`optimize_module`]) then runs
//! [`mem2reg`] to build pruned SSA, followed by [`constfold`] and [`dce`]
//! cleanups. The IPAS paper applies protection *after* user-level
//! optimizations (Section 3, step 4), which is why the duplication pass in
//! `ipas-core` consumes the output of this pipeline.
//!
//! Each pass is still available as a plain free function, but pipeline
//! execution lives in [`crate::passmgr`]: the [`PassManager`] caches
//! analyses across passes, reruns only passes whose inputs changed, and
//! exposes per-pass wall time and named statistics.

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod instsimplify;
pub mod licm;
pub mod mem2reg;
pub mod simplifycfg;

pub use constfold::constant_fold;
pub use cse::{eliminate_common_subexpressions, eliminate_common_subexpressions_with};
pub use dce::eliminate_dead_code;
pub use instsimplify::simplify_instructions;
pub use licm::{hoist_loop_invariants, hoist_loop_invariants_with};
pub use mem2reg::{promote_memory_to_registers, promote_memory_to_registers_with};
pub use simplifycfg::{simplify_cfg, simplify_cfg_with_change};

use crate::function::Function;
use crate::module::Module;
use crate::passmgr::PassManager;

/// Runs the standard optimization pipeline on one function:
/// mem2reg → fixpoint(constant folding, algebraic simplification, CSE,
/// DCE, CFG simplification) — i.e. [`crate::passmgr::DEFAULT_PIPELINE`]
/// through the [`PassManager`]. The output is byte-identical to the
/// historical hand-rolled loop; the manager's change tracking only
/// elides provably no-op reruns (see [`crate::passmgr`]).
///
/// Protection (the IPAS duplication pass) must run *after* this
/// pipeline: CSE in particular would merge shadow computations back
/// into their originals, which is exactly the interaction §3 step 4 of
/// the paper avoids by protecting post-optimization code.
pub fn optimize_function(func: &mut Function) {
    PassManager::standard()
        .run_function(func)
        .expect("default pipeline without verify-each cannot fail");
}

/// Runs the standard pipeline on every function of the module through
/// one [`PassManager`] (analysis caching and change tracking included).
pub fn optimize_module(module: &mut Module) {
    PassManager::standard()
        .run_module(module)
        .expect("default pipeline without verify-each cannot fail");
}

//! IR-to-IR transformation passes.
//!
//! The SciL frontend lowers locals to `alloca`/`load`/`store`; the standard
//! pipeline ([`optimize_function`], [`optimize_module`]) then runs
//! [`mem2reg`] to build pruned SSA, followed by [`constfold`] and [`dce`]
//! cleanups. The IPAS paper applies protection *after* user-level
//! optimizations (Section 3, step 4), which is why the duplication pass in
//! `ipas-core` consumes the output of this pipeline.

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod instsimplify;
pub mod licm;
pub mod mem2reg;
pub mod simplifycfg;

pub use constfold::constant_fold;
pub use cse::eliminate_common_subexpressions;
pub use dce::eliminate_dead_code;
pub use instsimplify::simplify_instructions;
pub use licm::hoist_loop_invariants;
pub use mem2reg::promote_memory_to_registers;
pub use simplifycfg::simplify_cfg;

use crate::function::Function;
use crate::module::Module;

/// Runs the standard optimization pipeline on one function:
/// mem2reg → (constant folding → algebraic simplification → CSE → DCE →
/// CFG simplification) to fixpoint.
///
/// Protection (the IPAS duplication pass) must run *after* this
/// pipeline: CSE in particular would merge shadow computations back
/// into their originals, which is exactly the interaction §3 step 4 of
/// the paper avoids by protecting post-optimization code.
pub fn optimize_function(func: &mut Function) {
    promote_memory_to_registers(func);
    loop {
        let folded = constant_fold(func);
        let simplified = simplify_instructions(func);
        let merged = eliminate_common_subexpressions(func);
        let removed = eliminate_dead_code(func);
        let blocks = simplify_cfg(func);
        if folded == 0 && simplified == 0 && merged == 0 && removed == 0 && blocks == 0 {
            break;
        }
    }
}

/// Runs [`optimize_function`] on every function of the module.
pub fn optimize_module(module: &mut Module) {
    let ids: Vec<_> = module.functions().map(|(id, _)| id).collect();
    for id in ids {
        optimize_function(module.function_mut(id));
    }
}

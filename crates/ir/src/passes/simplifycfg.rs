//! Control-flow graph simplification.
//!
//! Three classic cleanups, run to a fixpoint:
//!
//! 1. **Branch threading** — `condbr true/false, a, b` becomes `br`;
//! 2. **Block merging** — a block whose only successor has exactly one
//!    predecessor is merged with it (phi-free successors only);
//! 3. **Unreachable-block pruning** — blocks unreachable from the entry
//!    are removed entirely (the function is rebuilt with compact block
//!    ids; instruction ids are preserved).
//!
//! The frontend's lowering leaves chains of single-predecessor blocks
//! (merge blocks, loop preheaders); running this pass after mem2reg
//! yields IR much closer to what Clang+LLVM give the original IPAS.

use std::collections::HashMap;

use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::Inst;
use crate::value::Value;

/// Simplifies `func`'s CFG to a fixpoint. Returns the number of blocks
/// removed (by merging or unreachability).
pub fn simplify_cfg(func: &mut Function) -> usize {
    simplify_cfg_with_change(func).0
}

/// Like [`simplify_cfg`], but additionally reports whether the function
/// was mutated *at all*. The block count alone is a false-negative
/// change signal: branch threading can rewrite a `condbr` into a `br`
/// (and phi repair can drop incomings) without removing any block. The
/// pass manager's change-driven fixpoint needs the precise bit.
pub fn simplify_cfg_with_change(func: &mut Function) -> (usize, bool) {
    let before = func.num_blocks();
    let mut mutated = false;
    loop {
        let changed = thread_constant_branches(func)
            | repair_phis(func)
            | collapse_single_incoming_phis(func)
            | merge_linear_chains(func);
        prune_unreachable(func);
        mutated |= changed;
        if !changed {
            break;
        }
    }
    let removed = before - func.num_blocks();
    (removed, mutated || removed > 0)
}

/// Drops phi incomings whose source block is no longer a CFG
/// predecessor (branch threading removes edges without touching phis).
fn repair_phis(func: &mut Function) -> bool {
    let preds = func.predecessors();
    let mut changed = false;
    for bb in func.block_ids().collect::<Vec<_>>() {
        for &id in func.block(bb).insts().to_vec().iter() {
            let actual = &preds[bb.index()];
            if let Inst::Phi { incomings, .. } = func.inst_mut(id) {
                let n = incomings.len();
                incomings.retain(|(p, _)| actual.contains(p));
                changed |= incomings.len() != n;
            }
        }
    }
    changed
}

/// Replaces phis with exactly one incoming edge by that value (created
/// by branch threading and pruning).
fn collapse_single_incoming_phis(func: &mut Function) -> bool {
    let mut replacements: HashMap<InstId, Value> = HashMap::new();
    for bb in func.block_ids().collect::<Vec<_>>() {
        for &id in func.block(bb).insts().to_vec().iter() {
            if let Inst::Phi { incomings, .. } = func.inst(id) {
                if incomings.len() == 1 {
                    replacements.insert(id, incomings[0].1);
                }
            }
        }
    }
    if replacements.is_empty() {
        return false;
    }
    // Resolve chains of collapsing phis.
    let resolve = |mut v: Value| {
        let mut hops = 0;
        while let Value::Inst(id) = v {
            match replacements.get(&id) {
                Some(&next) => {
                    v = next;
                    hops += 1;
                    assert!(hops <= replacements.len(), "phi replacement cycle");
                }
                None => break,
            }
        }
        v
    };
    func.map_all_operands(resolve);
    for &id in replacements.keys() {
        if let Some(bb) = func.block_of(id) {
            func.unlink_inst(bb, id);
        }
    }
    true
}

/// Rewrites `condbr` on constant conditions into unconditional `br`.
fn thread_constant_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for bb in func.block_ids().collect::<Vec<_>>() {
        let Some(term) = func.block(bb).terminator() else {
            continue;
        };
        if let Inst::CondBr {
            cond: Value::Const(c),
            then_bb,
            else_bb,
        } = *func.inst(term)
        {
            let target = if c.as_bool().unwrap_or(false) {
                then_bb
            } else {
                else_bb
            };
            *func.inst_mut(term) = Inst::Br { target };
            changed = true;
        }
        // `condbr c, x, x` is an unconditional branch too.
        if let Inst::CondBr {
            then_bb, else_bb, ..
        } = *func.inst(term)
        {
            if then_bb == else_bb {
                *func.inst_mut(term) = Inst::Br { target: then_bb };
                changed = true;
            }
        }
    }
    changed
}

/// Merges `a -> b` when `a` ends in `br b`, `b`'s only predecessor is
/// `a`, `b` has no phis, and `b` is not the entry.
fn merge_linear_chains(func: &mut Function) -> bool {
    let preds = func.predecessors();
    let mut changed = false;
    for a in func.block_ids().collect::<Vec<_>>() {
        let Some(term) = func.block(a).terminator() else {
            continue;
        };
        let Inst::Br { target: b } = *func.inst(term) else {
            continue;
        };
        if b == func.entry() || b == a || preds[b.index()].len() != 1 {
            continue;
        }
        let has_phi = func
            .block(b)
            .insts()
            .iter()
            .any(|&id| func.inst(id).is_phi());
        if has_phi {
            continue;
        }
        // Splice b's instructions after a's body (dropping a's br).
        let mut merged: Vec<InstId> = func.block(a).insts().to_vec();
        merged.pop();
        merged.extend_from_slice(func.block(b).insts());
        func.set_block_insts(a, merged);
        func.set_block_insts(b, Vec::new());
        // b is now empty and unreachable; prune_unreachable removes it.
        // Phis in b's former successors must re-attribute the edge to a.
        for succ in func.successors(a) {
            for &id in func.block(succ).insts().to_vec().iter() {
                if let Inst::Phi { incomings, .. } = func.inst_mut(id) {
                    for (pred, _) in incomings.iter_mut() {
                        if *pred == b {
                            *pred = a;
                        }
                    }
                }
            }
        }
        changed = true;
        // Only one merge per iteration keeps predecessor info fresh.
        return changed;
    }
    changed
}

/// Rebuilds the function without unreachable blocks, compacting block
/// ids (instruction ids are untouched).
fn prune_unreachable(func: &mut Function) {
    let dt = DomTree::compute(func);
    let reachable: Vec<BlockId> = func.block_ids().filter(|&b| dt.is_reachable(b)).collect();
    if reachable.len() == func.num_blocks() {
        return;
    }
    let remap: HashMap<BlockId, BlockId> = reachable
        .iter()
        .enumerate()
        .map(|(i, &old)| (old, BlockId::new(i)))
        .collect();
    // Unlinked arena slots may still name removed blocks; they are never
    // executed, so any in-range target keeps the IR well-formed.
    let remap_or_entry = |bb: &BlockId| remap.get(bb).copied().unwrap_or_else(|| BlockId::new(0));

    // Copy every arena slot (including unlinked ones) so InstIds stay
    // stable, rewriting block references through the remap.
    let mut arena: Vec<Inst> = Vec::with_capacity(func.num_inst_slots());
    for i in 0..func.num_inst_slots() {
        arena.push(func.inst(InstId::new(i)).clone());
    }
    for inst in &mut arena {
        match inst {
            Inst::Br { target } => {
                *target = remap_or_entry(target);
            }
            Inst::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = remap_or_entry(then_bb);
                *else_bb = remap_or_entry(else_bb);
            }
            Inst::Phi { incomings, .. } => {
                // Drop incoming edges from removed predecessors.
                incomings.retain(|(p, _)| remap.contains_key(p));
                for (p, _) in incomings.iter_mut() {
                    *p = remap[p];
                }
            }
            _ => {}
        }
    }
    // Rebuild through the public surface: allocate arena ids 1:1 via a
    // scratch append/unlink, then install the per-block lists.
    let mut new_func = Function::new(func.name(), func.params(), func.return_type());
    for _ in 1..reachable.len() {
        new_func.add_block();
    }
    for inst in arena {
        let id = new_func.append_inst(new_func.entry(), inst);
        new_func.unlink_inst(new_func.entry(), id);
    }
    for (i, &old) in reachable.iter().enumerate() {
        new_func.set_block_insts(BlockId::new(i), func.block(old).insts().to_vec());
    }
    *func = new_func;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;
    use crate::verify::verify_function;

    #[test]
    fn threads_constant_branches_and_merges() {
        let mut f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  condbr true, bb1, bb2
bb1:
  %v0 = add i64 %arg0, 1
  br bb3
bb2:
  %v1 = add i64 %arg0, 2
  br bb3
bb3:
  %v2 = phi i64 [bb1: %v0, bb2: %v1]
  ret %v2
}
"#,
        )
        .unwrap();
        let removed = simplify_cfg(&mut f);
        assert!(removed >= 1, "bb2 must be pruned");
        verify_function(&f).unwrap();
        // The phi collapses to a single incoming (bb2 edge dropped).
        let has_dangling = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts().to_vec())
            .any(|id| match f.inst(id) {
                Inst::Phi { incomings, .. } => incomings.len() != 1,
                _ => false,
            });
        assert!(!has_dangling);
    }

    #[test]
    fn merges_straight_line_chain() {
        let mut f = parse_function(
            r#"
fn @f() -> i64 {
bb0:
  %v0 = add i64 1, 2
  br bb1
bb1:
  %v1 = mul i64 %v0, 3
  br bb2
bb2:
  ret %v1
}
"#,
        )
        .unwrap();
        let removed = simplify_cfg(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.num_blocks(), 1);
        verify_function(&f).unwrap();
    }

    #[test]
    fn keeps_loops_intact() {
        let mut f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v2]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb3
bb2:
  %v2 = add i64 %v0, 1
  br bb1
bb3:
  ret %v0
}
"#,
        )
        .unwrap();
        // bb0 -> bb1 cannot merge (bb1 has two preds); loop stays.
        simplify_cfg(&mut f);
        verify_function(&f).unwrap();
        assert!(f.num_blocks() >= 3);
    }

    #[test]
    fn same_target_condbr_becomes_br() {
        let mut f = parse_function(
            r#"
fn @f(i1) -> i64 {
bb0:
  condbr %arg0, bb1, bb1
bb1:
  ret 7
}
"#,
        )
        .unwrap();
        simplify_cfg(&mut f);
        verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    fn prunes_unreachable_diamond_arm() {
        let mut f = parse_function(
            r#"
fn @f() -> i64 {
bb0:
  condbr false, bb1, bb2
bb1:
  %v0 = add i64 1, 1
  br bb3
bb2:
  %v1 = add i64 2, 2
  br bb3
bb3:
  %v2 = phi i64 [bb1: %v0, bb2: %v1]
  ret %v2
}
"#,
        )
        .unwrap();
        simplify_cfg(&mut f);
        verify_function(&f).unwrap();
        // Everything folds into a straight line through bb2.
        assert_eq!(
            f.num_blocks(),
            1,
            "{}",
            crate::printer::print_function(&f, None)
        );
    }
}

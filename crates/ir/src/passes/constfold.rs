//! Constant folding.
//!
//! Folds binary operations, comparisons, casts, and selects whose operands
//! are all constants, replacing every use of the folded instruction with
//! the resulting constant. Division and remainder by a zero constant are
//! deliberately *not* folded (they trap at run time, and folding would
//! change observable behaviour).

use std::collections::HashMap;

use crate::function::{Function, InstId};
use crate::inst::{BinOp, CastOp, Inst};
use crate::value::{Constant, Value};

/// Folds constants in `func` to a fixpoint. Returns the number of
/// instructions folded (they are unlinked from their blocks).
pub fn constant_fold(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut folded: HashMap<InstId, Constant> = HashMap::new();
        for bb in func.block_ids() {
            for &id in func.block(bb).insts() {
                if let Some(c) = try_fold(func.inst(id)) {
                    folded.insert(id, c);
                }
            }
        }
        if folded.is_empty() {
            break;
        }
        total += folded.len();
        func.map_all_operands(|v| match v {
            Value::Inst(id) => match folded.get(&id) {
                Some(&c) => Value::Const(c),
                None => v,
            },
            other => other,
        });
        for (id, _) in folded {
            let bb = func.block_of(id).expect("folded inst must be linked");
            func.unlink_inst(bb, id);
        }
    }
    total
}

/// Attempts to evaluate one instruction with constant operands.
pub fn try_fold(inst: &Inst) -> Option<Constant> {
    match inst {
        Inst::Binary { op, lhs, rhs, .. } => {
            let l = lhs.as_const()?;
            let r = rhs.as_const()?;
            fold_binary(*op, l, r)
        }
        Inst::Icmp { pred, lhs, rhs } => {
            let l = lhs.as_const()?.as_i64()?;
            let r = rhs.as_const()?.as_i64()?;
            Some(Constant::Bool(pred.eval(l, r)))
        }
        Inst::Fcmp { pred, lhs, rhs } => {
            let l = lhs.as_const()?.as_f64()?;
            let r = rhs.as_const()?.as_f64()?;
            Some(Constant::Bool(pred.eval(l, r)))
        }
        Inst::Cast { op, arg, .. } => {
            let c = arg.as_const()?;
            fold_cast(*op, c)
        }
        Inst::Select {
            cond,
            then_value,
            else_value,
            ..
        } => {
            let c = cond.as_const()?.as_bool()?;
            let chosen = if c { then_value } else { else_value };
            chosen.as_const()
        }
        _ => None,
    }
}

fn fold_binary(op: BinOp, l: Constant, r: Constant) -> Option<Constant> {
    use BinOp::*;
    if op.is_float() {
        let a = l.as_f64()?;
        let b = r.as_f64()?;
        let v = match op {
            Fadd => a + b,
            Fsub => a - b,
            Fmul => a * b,
            Fdiv => a / b,
            Frem => a % b,
            _ => unreachable!("is_float covers all float opcodes"),
        };
        return Some(Constant::f64(v));
    }
    // Bitwise ops on booleans.
    if let (Some(a), Some(b)) = (l.as_bool(), r.as_bool()) {
        let v = match op {
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            _ => return None,
        };
        return Some(Constant::Bool(v));
    }
    let a = l.as_i64()?;
    let b = r.as_i64()?;
    let v = match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        // Division traps on zero / overflow; leave it to run time.
        Sdiv => {
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            a / b
        }
        Srem => {
            if b == 0 || (a == i64::MIN && b == -1) {
                return None;
            }
            a % b
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a.wrapping_shl((b & 63) as u32),
        Lshr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
        Ashr => a.wrapping_shr((b & 63) as u32),
        Fadd | Fsub | Fmul | Fdiv | Frem => unreachable!("handled above"),
    };
    Some(Constant::I64(v))
}

fn fold_cast(op: CastOp, c: Constant) -> Option<Constant> {
    match op {
        CastOp::Sitofp => Some(Constant::f64(c.as_i64()? as f64)),
        CastOp::Fptosi => Some(Constant::I64(saturating_f64_to_i64(c.as_f64()?))),
        CastOp::Zext => Some(Constant::I64(c.as_bool()? as i64)),
        CastOp::Trunc => Some(Constant::Bool(c.as_i64()? & 1 == 1)),
        CastOp::Bitcast => match c {
            Constant::I64(v) => Some(Constant::F64Bits(v as u64)),
            Constant::F64Bits(bits) => Some(Constant::I64(bits as i64)),
            _ => None,
        },
        // Pointer casts are not foldable (no constant pointers but null).
        CastOp::Ptrtoint | CastOp::Inttoptr => None,
    }
}

/// Saturating float→int conversion matching the interpreter (`as` in Rust):
/// NaN becomes 0, out-of-range values clamp.
pub fn saturating_f64_to_i64(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::IcmpPred;
    use crate::types::Type;
    use crate::verify::verify_function;

    #[test]
    fn folds_arithmetic_chain() {
        let mut b = FunctionBuilder::new("f", &[], Type::I64);
        let x = b.binary(BinOp::Add, Type::I64, Value::i64(2), Value::i64(3));
        let y = b.binary(BinOp::Mul, Type::I64, x, Value::i64(4));
        b.ret(Some(y));
        let mut f = b.finish();
        let n = constant_fold(&mut f);
        assert_eq!(n, 2);
        verify_function(&f).unwrap();
        let term = f.block(f.entry()).terminator().unwrap();
        assert_eq!(
            *f.inst(term),
            Inst::Ret {
                value: Some(Value::i64(20))
            }
        );
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut b = FunctionBuilder::new("f", &[], Type::I64);
        let x = b.binary(BinOp::Sdiv, Type::I64, Value::i64(1), Value::i64(0));
        b.ret(Some(x));
        let mut f = b.finish();
        assert_eq!(constant_fold(&mut f), 0);
    }

    #[test]
    fn does_not_fold_min_div_minus_one() {
        let mut b = FunctionBuilder::new("f", &[], Type::I64);
        let x = b.binary(BinOp::Sdiv, Type::I64, Value::i64(i64::MIN), Value::i64(-1));
        b.ret(Some(x));
        let mut f = b.finish();
        assert_eq!(constant_fold(&mut f), 0);
    }

    #[test]
    fn folds_comparison_and_select() {
        let mut b = FunctionBuilder::new("f", &[], Type::I64);
        let c = b.icmp(IcmpPred::Slt, Value::i64(1), Value::i64(2));
        let s = b.select(Type::I64, c, Value::i64(10), Value::i64(20));
        b.ret(Some(s));
        let mut f = b.finish();
        assert_eq!(constant_fold(&mut f), 2);
        let term = f.block(f.entry()).terminator().unwrap();
        assert_eq!(
            *f.inst(term),
            Inst::Ret {
                value: Some(Value::i64(10))
            }
        );
    }

    #[test]
    fn folds_float_ops_and_casts() {
        assert_eq!(
            fold_binary(BinOp::Fmul, Constant::f64(3.0), Constant::f64(0.5)),
            Some(Constant::f64(1.5))
        );
        assert_eq!(
            fold_cast(CastOp::Sitofp, Constant::I64(7)),
            Some(Constant::f64(7.0))
        );
        assert_eq!(
            fold_cast(CastOp::Fptosi, Constant::f64(f64::NAN)),
            Some(Constant::I64(0))
        );
        assert_eq!(
            fold_cast(CastOp::Fptosi, Constant::f64(1e300)),
            Some(Constant::I64(i64::MAX))
        );
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(
            fold_binary(BinOp::Add, Constant::I64(i64::MAX), Constant::I64(1)),
            Some(Constant::I64(i64::MIN))
        );
        assert_eq!(
            fold_binary(BinOp::Shl, Constant::I64(1), Constant::I64(64)),
            Some(Constant::I64(1)) // shift masked to 0
        );
    }

    #[test]
    fn bool_bitwise_folds() {
        assert_eq!(
            fold_binary(BinOp::Xor, Constant::Bool(true), Constant::Bool(true)),
            Some(Constant::Bool(false))
        );
    }
}

//! Delta-debugging minimizer.
//!
//! Given an input that trips an oracle, the minimizer greedily shrinks
//! it while *re-verifying and re-running the oracle on every
//! candidate*: a reduction is kept only when the smaller input is still
//! a valid program (for IR, it must pass the verifier) that reproduces
//! a divergence on the same oracle. The result is a repro small enough
//! to read, check in, and keep as a regression test.
//!
//! Three granularities for IR modules — block stubbing (replace a whole
//! non-entry block with a bare `ret`), conditional-branch collapsing
//! (`cond_br` → `br`), and chunked instruction deletion (classic ddmin
//! with halving chunk sizes, deleted results replaced by typed default
//! constants) — plus line- and span-level ddmin for textual inputs.

use ipas_ir::verify::verify_module;
use ipas_ir::{Function, Inst, InstId, Module, Type, Value};

use crate::oracle::{check_module_with, OracleKind};
use ipas_interp::FaultModel;

/// Counters describing one minimization run.
#[derive(Copy, Clone, Debug, Default)]
pub struct MinimizeStats {
    /// Reduction candidates generated and checked.
    pub candidates: usize,
    /// Candidates that kept the divergence and were accepted.
    pub accepted: usize,
}

/// Safety valve: greedy minimization stops after this many candidate
/// evaluations even if a fixpoint was not reached.
const MAX_CANDIDATES: usize = 4000;

fn default_value(ty: Type) -> Option<Value> {
    match ty {
        Type::I64 => Some(Value::i64(0)),
        Type::F64 => Some(Value::f64(0.0)),
        Type::Bool => Some(Value::bool(false)),
        Type::Ptr => Some(Value::null()),
        Type::Void => None,
    }
}

fn replace_uses(func: &mut Function, from: InstId, to: Value) {
    func.map_all_operands(|v| if v == Value::Inst(from) { to } else { v });
}

/// Removes `pred`'s incoming from every phi of block `bb`.
fn strip_phi_incomings(func: &mut Function, bb: ipas_ir::BlockId, pred: ipas_ir::BlockId) {
    let ids: Vec<InstId> = func.block(bb).insts().to_vec();
    for id in ids {
        if let Inst::Phi { incomings, .. } = func.inst_mut(id) {
            incomings.retain(|(b, _)| *b != pred);
        }
    }
}

/// Candidate: replace one non-entry block's body with a bare `ret`.
fn stub_block(module: &Module, fid: ipas_ir::FuncId, bb: ipas_ir::BlockId) -> Module {
    let mut cand = module.clone();
    let func = cand.function_mut(fid);
    let succs: Vec<_> = func
        .block(bb)
        .terminator()
        .map(|t| func.inst(t).successors())
        .unwrap_or_default();
    let ret = Inst::Ret {
        value: default_value(func.return_type()),
    };
    let ret_id = func.append_inst(bb, ret);
    func.set_block_insts(bb, vec![ret_id]);
    for s in succs {
        strip_phi_incomings(func, s, bb);
    }
    cand
}

/// Candidate: collapse a `cond_br` to an unconditional `br`.
fn collapse_condbr(
    module: &Module,
    fid: ipas_ir::FuncId,
    bb: ipas_ir::BlockId,
    keep_then: bool,
) -> Option<Module> {
    let mut cand = module.clone();
    let func = cand.function_mut(fid);
    let term = func.block(bb).terminator()?;
    let (then_bb, else_bb) = match func.inst(term) {
        Inst::CondBr {
            then_bb, else_bb, ..
        } => (*then_bb, *else_bb),
        _ => return None,
    };
    let (kept, dropped) = if keep_then {
        (then_bb, else_bb)
    } else {
        (else_bb, then_bb)
    };
    *func.inst_mut(term) = Inst::Br { target: kept };
    if kept != dropped {
        strip_phi_incomings(func, dropped, bb);
    }
    Some(cand)
}

/// Candidate: delete a chunk of instructions, replacing each deleted
/// result with its type's default constant.
fn drop_insts(module: &Module, fid: ipas_ir::FuncId, chunk: &[InstId]) -> Module {
    let mut cand = module.clone();
    let func = cand.function_mut(fid);
    let blocks = func.inst_blocks();
    for &id in chunk {
        let Some(&bb) = blocks.get(&id) else { continue };
        let ty = func.inst(id).result_type();
        func.unlink_inst(bb, id);
        if let Some(v) = default_value(ty) {
            replace_uses(func, id, v);
        }
    }
    cand
}

struct Minimizer {
    oracle: OracleKind,
    model: FaultModel,
    stats: MinimizeStats,
}

impl Minimizer {
    /// Accepts `cand` iff it is still a valid module that diverges on
    /// the same oracle.
    fn accept(&mut self, cand: &Module) -> bool {
        self.stats.candidates += 1;
        let ok = verify_module(cand).is_ok()
            && check_module_with(self.oracle, cand, self.model).is_some();
        if ok {
            self.stats.accepted += 1;
        }
        ok
    }

    fn exhausted(&self) -> bool {
        self.stats.candidates >= MAX_CANDIDATES
    }

    /// One full sweep of all reductions; returns the (possibly smaller)
    /// module and whether anything was accepted.
    fn sweep(&mut self, module: Module) -> (Module, bool) {
        let mut current = module;
        let mut changed = false;

        // 1. Block stubbing, coarsest first.
        let fids: Vec<_> = current.functions().map(|(id, _)| id).collect();
        for fid in fids.clone() {
            let blocks: Vec<_> = current
                .function(fid)
                .block_ids()
                .filter(|&bb| bb != current.function(fid).entry())
                .collect();
            for bb in blocks {
                if self.exhausted() {
                    return (current, changed);
                }
                let cand = stub_block(&current, fid, bb);
                if cand.to_text() != current.to_text() && self.accept(&cand) {
                    current = cand;
                    changed = true;
                }
            }
        }

        // 2. Conditional-branch collapsing.
        for fid in fids.clone() {
            let blocks: Vec<_> = current.function(fid).block_ids().collect();
            for bb in blocks {
                for keep_then in [true, false] {
                    if self.exhausted() {
                        return (current, changed);
                    }
                    let Some(cand) = collapse_condbr(&current, fid, bb, keep_then) else {
                        continue;
                    };
                    if cand.to_text() != current.to_text() && self.accept(&cand) {
                        current = cand;
                        changed = true;
                        break;
                    }
                }
            }
        }

        // 3. Chunked instruction deletion (ddmin): halve the chunk size
        //    until single instructions are tried.
        for fid in fids {
            loop {
                let droppable: Vec<InstId> = {
                    let func = current.function(fid);
                    func.block_ids()
                        .flat_map(|bb| func.block(bb).insts().to_vec())
                        .filter(|&id| !current.function(fid).inst(id).is_terminator())
                        .collect()
                };
                if droppable.is_empty() {
                    break;
                }
                let mut chunk = droppable.len().div_ceil(2);
                let mut any = false;
                while chunk >= 1 {
                    for window in droppable.chunks(chunk) {
                        if self.exhausted() {
                            return (current, changed);
                        }
                        let cand = drop_insts(&current, fid, window);
                        if self.accept(&cand) {
                            current = cand;
                            changed = true;
                            any = true;
                            break;
                        }
                    }
                    if any {
                        break; // re-collect the droppable list
                    }
                    if chunk == 1 {
                        break;
                    }
                    chunk /= 2;
                }
                if !any {
                    break;
                }
            }
        }

        (current, changed)
    }
}

/// Shrinks a divergent module to a smaller module that still diverges
/// on `oracle`. The input must already diverge; if it does not, it is
/// returned unchanged.
pub fn minimize_module(module: &Module, oracle: OracleKind) -> (Module, MinimizeStats) {
    minimize_module_with(module, oracle, FaultModel::SingleBit)
}

/// [`minimize_module`] under an explicit fault model, so a divergence
/// found under (say) a burst model keeps reproducing while it shrinks.
pub fn minimize_module_with(
    module: &Module,
    oracle: OracleKind,
    model: FaultModel,
) -> (Module, MinimizeStats) {
    let mut m = Minimizer {
        oracle,
        model,
        stats: MinimizeStats::default(),
    };
    if check_module_with(oracle, module, model).is_none() {
        return (module.clone(), m.stats);
    }
    let mut current = module.clone();
    loop {
        let (next, changed) = m.sweep(current);
        current = next;
        if !changed || m.exhausted() {
            break;
        }
    }
    (current, m.stats)
}

/// Shrinks a failing text input (SciL source or raw IR) with ddmin over
/// lines, then over character spans. `still_fails` decides whether a
/// candidate keeps the property of interest (for the no-panic oracle:
/// "still panics").
pub fn minimize_text(src: &str, still_fails: &dyn Fn(&str) -> bool) -> (String, MinimizeStats) {
    let mut stats = MinimizeStats::default();
    if !still_fails(src) {
        return (src.to_string(), stats);
    }
    let mut current = src.to_string();

    // Pass 1: drop line chunks.
    loop {
        let lines: Vec<&str> = current.lines().collect();
        if lines.len() < 2 {
            break;
        }
        let mut chunk = lines.len().div_ceil(2);
        let mut accepted: Option<String> = None;
        'outer: while chunk >= 1 {
            let lines: Vec<&str> = current.lines().collect();
            let mut start = 0;
            while start < lines.len() {
                let end = (start + chunk).min(lines.len());
                let cand: String = lines[..start]
                    .iter()
                    .chain(lines[end..].iter())
                    .copied()
                    .collect::<Vec<_>>()
                    .join("\n");
                stats.candidates += 1;
                if stats.candidates >= MAX_CANDIDATES {
                    return (current, stats);
                }
                if still_fails(&cand) {
                    stats.accepted += 1;
                    accepted = Some(cand);
                    break 'outer;
                }
                start = end;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        match accepted {
            Some(next) => current = next,
            None => break,
        }
    }

    // Pass 2: drop character spans within the surviving lines.
    let mut span = current.chars().count().div_ceil(2);
    while span >= 1 {
        let chars: Vec<char> = current.chars().collect();
        let mut start = 0;
        let mut any = false;
        while start < chars.len() {
            let end = (start + span).min(chars.len());
            let cand: String = chars[..start].iter().chain(chars[end..].iter()).collect();
            stats.candidates += 1;
            if stats.candidates >= MAX_CANDIDATES {
                return (current, stats);
            }
            if still_fails(&cand) {
                stats.accepted += 1;
                current = cand;
                any = true;
                break;
            }
            start = end;
        }
        if !any {
            if span == 1 {
                break;
            }
            span /= 2;
        } else {
            span = current.chars().count().div_ceil(2).max(1);
        }
    }

    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_minimizer_finds_the_failing_atom() {
        // "Fails" when it contains the byte sequence "BAD".
        let src = "line one\nline BAD two\nline three\nline four\n";
        let (min, stats) = minimize_text(src, &|s| s.contains("BAD"));
        assert_eq!(min, "BAD");
        assert!(stats.accepted > 0);
    }

    #[test]
    fn text_minimizer_returns_non_failing_input_unchanged() {
        let (min, stats) = minimize_text("hello", &|_| false);
        assert_eq!(min, "hello");
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn module_minimizer_is_identity_on_clean_modules() {
        let module = ipas_lang::compile("fn main() -> int { output_i(1); return 0; }").unwrap();
        let (min, stats) = minimize_module(&module, OracleKind::EngineDiff);
        assert_eq!(min.to_text(), module.to_text());
        assert_eq!(stats.accepted, 0);
    }
}

//! Seeded structured generator for verified IR modules.
//!
//! Programs are grown through [`FunctionBuilder`] so every output
//! passes `verify_module` by construction: the generator tracks the
//! type of every value it has in scope and only combines values the
//! verifier's typing rules allow. Control flow is structured —
//! straight-line runs, diamonds with join phis, and bounded self-loops
//! — so every generated program terminates within a small instruction
//! budget (traps excepted: division by zero, wild indices, and
//! overflowing `gep`s are generated *on purpose*, because trap paths
//! are exactly where the two engines historically disagreed).

use ipas_ir::inst::{BinOp, CastOp, FcmpPred, IcmpPred, Intrinsic};
use ipas_ir::{FuncId, FunctionBuilder, Inst, InstId, Module, Type, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Interesting integer constants: identities, small numbers, and the
/// extremes that historically broke wrapping address arithmetic.
const INT_POOL: [i64; 12] = [
    0,
    1,
    -1,
    2,
    3,
    7,
    -8,
    100,
    1023,
    1 << 40,
    i64::MAX,
    i64::MIN,
];

/// Interesting float constants, including signed zero and values whose
/// bit patterns expose non-bitwise comparisons.
const FLOAT_POOL: [f64; 10] = [
    0.0,
    -0.0,
    1.0,
    -1.5,
    0.5,
    std::f64::consts::PI,
    1e10,
    -1e-10,
    1e300,
    2.0,
];

const INT_OPS: [BinOp; 9] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Lshr,
    BinOp::Ashr,
];

const FLOAT_OPS: [BinOp; 5] = [
    BinOp::Fadd,
    BinOp::Fsub,
    BinOp::Fmul,
    BinOp::Fdiv,
    BinOp::Frem,
];

const ICMPS: [IcmpPred; 6] = [
    IcmpPred::Eq,
    IcmpPred::Ne,
    IcmpPred::Slt,
    IcmpPred::Sle,
    IcmpPred::Sgt,
    IcmpPred::Sge,
];

const FCMPS: [FcmpPred; 6] = [
    FcmpPred::Oeq,
    FcmpPred::Une,
    FcmpPred::Olt,
    FcmpPred::Ole,
    FcmpPred::Ogt,
    FcmpPred::Oge,
];

const MATH1: [Intrinsic; 7] = [
    Intrinsic::Sqrt,
    Intrinsic::Sin,
    Intrinsic::Cos,
    Intrinsic::Exp,
    Intrinsic::Log,
    Intrinsic::Fabs,
    Intrinsic::Floor,
];

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// A `(phi, incoming-slot)` pair to patch with a back-edge value once
/// the loop body has produced it (the builder requires incomings up
/// front, before the latch value exists).
struct PhiPatch {
    phi: InstId,
    slot: usize,
    value: InstId,
}

struct FnGen<'r> {
    b: FunctionBuilder,
    rng: &'r mut StdRng,
    /// Values in scope of the *current* block, with their types. Only
    /// values defined in blocks dominating the current one are kept —
    /// the segment emitters snapshot and restore around branches.
    avail: Vec<(Type, Value)>,
    /// Helper functions callable from this one (no recursion).
    callables: Vec<(FuncId, Vec<Type>, Type)>,
    patches: Vec<PhiPatch>,
    /// Output calls emitted so far (kept small so streams stay short).
    outputs: usize,
}

impl<'r> FnGen<'r> {
    fn new(
        rng: &'r mut StdRng,
        name: &str,
        params: &[Type],
        ret: Type,
        callables: Vec<(FuncId, Vec<Type>, Type)>,
    ) -> Self {
        let b = FunctionBuilder::new(name, params, ret);
        let mut avail: Vec<(Type, Value)> = params
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, Value::param(i as u32)))
            .collect();
        avail.push((Type::I64, Value::i64(0)));
        avail.push((Type::F64, Value::f64(1.0)));
        FnGen {
            b,
            rng,
            avail,
            callables,
            patches: Vec::new(),
            outputs: 0,
        }
    }

    fn vals_of(&self, ty: Type) -> Vec<Value> {
        self.avail
            .iter()
            .filter(|(t, _)| *t == ty)
            .map(|(_, v)| v)
            .copied()
            .collect()
    }

    fn int_val(&mut self) -> Value {
        let vs = self.vals_of(Type::I64);
        if vs.is_empty() || self.rng.gen_bool(0.3) {
            Value::i64(pick(self.rng, &INT_POOL))
        } else {
            pick(self.rng, &vs)
        }
    }

    fn float_val(&mut self) -> Value {
        let vs = self.vals_of(Type::F64);
        if vs.is_empty() || self.rng.gen_bool(0.3) {
            Value::f64(pick(self.rng, &FLOAT_POOL))
        } else {
            pick(self.rng, &vs)
        }
    }

    fn bool_val(&mut self) -> Value {
        let vs = self.vals_of(Type::Bool);
        if vs.is_empty() || self.rng.gen_bool(0.25) {
            Value::bool(self.rng.gen_bool(0.5))
        } else {
            pick(self.rng, &vs)
        }
    }

    fn push(&mut self, ty: Type, v: Value) {
        self.avail.push((ty, v));
    }

    /// One straight-line instruction.
    fn emit_op(&mut self) {
        match self.rng.gen_range(0..10u32) {
            0..=2 => {
                // Integer arithmetic / bitwise.
                let (lhs, rhs) = (self.int_val(), self.int_val());
                let op = pick(self.rng, &INT_OPS);
                let v = self.b.binary(op, Type::I64, lhs, rhs);
                self.push(Type::I64, v);
            }
            3 => {
                // Division: mostly safe constant divisors, sometimes a
                // live value so DivByZero/DivOverflow paths execute.
                let lhs = self.int_val();
                let rhs = if self.rng.gen_bool(0.8) {
                    Value::i64(pick(self.rng, &[1, 2, 3, 7, -1, 16]))
                } else {
                    self.int_val()
                };
                let op = if self.rng.gen_bool(0.5) {
                    BinOp::Sdiv
                } else {
                    BinOp::Srem
                };
                let v = self.b.binary(op, Type::I64, lhs, rhs);
                self.push(Type::I64, v);
            }
            4..=5 => {
                let (lhs, rhs) = (self.float_val(), self.float_val());
                let op = pick(self.rng, &FLOAT_OPS);
                let v = self.b.binary(op, Type::F64, lhs, rhs);
                self.push(Type::F64, v);
            }
            6 => {
                // Comparison producing a bool.
                let v = if self.rng.gen_bool(0.5) {
                    let (a, b) = (self.int_val(), self.int_val());
                    self.b.icmp(pick(self.rng, &ICMPS), a, b)
                } else {
                    let (a, b) = (self.float_val(), self.float_val());
                    self.b.fcmp(pick(self.rng, &FCMPS), a, b)
                };
                self.push(Type::Bool, v);
            }
            7 => {
                // A valid cast.
                let v = match self.rng.gen_range(0..6u32) {
                    0 => {
                        let a = self.int_val();
                        (Type::F64, self.b.cast(CastOp::Sitofp, Type::F64, a))
                    }
                    1 => {
                        let a = self.float_val();
                        (Type::I64, self.b.cast(CastOp::Fptosi, Type::I64, a))
                    }
                    2 => {
                        let a = self.bool_val();
                        (Type::I64, self.b.cast(CastOp::Zext, Type::I64, a))
                    }
                    3 => {
                        let a = self.int_val();
                        (Type::Bool, self.b.cast(CastOp::Trunc, Type::Bool, a))
                    }
                    4 => {
                        let a = self.int_val();
                        (Type::F64, self.b.cast(CastOp::Bitcast, Type::F64, a))
                    }
                    _ => {
                        let a = self.float_val();
                        (Type::I64, self.b.cast(CastOp::Bitcast, Type::I64, a))
                    }
                };
                self.push(v.0, v.1);
            }
            8 => {
                // Select over a random type.
                let cond = self.bool_val();
                let (ty, t, e) = match self.rng.gen_range(0..2u32) {
                    0 => (Type::I64, self.int_val(), self.int_val()),
                    _ => (Type::F64, self.float_val(), self.float_val()),
                };
                let v = self.b.select(ty, cond, t, e);
                self.push(ty, v);
            }
            _ => {
                // Math intrinsic.
                if self.rng.gen_bool(0.8) {
                    let a = self.float_val();
                    let v = self.b.call_intrinsic(pick(self.rng, &MATH1), vec![a]);
                    self.push(Type::F64, v);
                } else {
                    let (a, b) = (self.float_val(), self.float_val());
                    let v = self.b.call_intrinsic(Intrinsic::Pow, vec![a, b]);
                    self.push(Type::F64, v);
                }
            }
        }
    }

    fn emit_output(&mut self) {
        if self.outputs >= 8 {
            return;
        }
        self.outputs += 1;
        if self.rng.gen_bool(0.5) {
            let v = self.int_val();
            self.b.call_intrinsic(Intrinsic::OutputI64, vec![v]);
        } else {
            let v = self.float_val();
            self.b.call_intrinsic(Intrinsic::OutputF64, vec![v]);
        }
    }

    /// A short run of straight-line instructions.
    fn seg_straight(&mut self) {
        for _ in 0..self.rng.gen_range(2..7usize) {
            self.emit_op();
        }
        if self.rng.gen_bool(0.5) {
            self.emit_output();
        }
    }

    /// Alloca + in-bounds constant accesses + one random-index access
    /// (which may trap: both engines must trap identically).
    fn seg_memory(&mut self) {
        let count = self.rng.gen_range(1..8u32);
        let elem = if self.rng.gen_bool(0.5) {
            Type::I64
        } else {
            Type::F64
        };
        let base = self.b.alloca(elem, count);
        self.push(Type::Ptr, base);
        // A couple of in-bounds constant stores and loads.
        for _ in 0..self.rng.gen_range(1..4usize) {
            let idx = Value::i64(self.rng.gen_range(0..count as i64));
            let addr = self.b.gep(elem, base, idx);
            if self.rng.gen_bool(0.6) {
                let v = if elem == Type::I64 {
                    self.int_val()
                } else {
                    self.float_val()
                };
                self.b.store(elem, v, addr);
            } else {
                let v = self.b.load(elem, addr);
                self.push(elem, v);
            }
        }
        // One dynamic index: usually live data, sometimes deliberately
        // wild (out of range or overflowing — the poison-address path).
        let idx = if self.rng.gen_bool(0.7) {
            let i = self.int_val();
            // Clamp into range with a mask when count is a power of two,
            // otherwise leave it wild.
            if count.is_power_of_two() {
                self.b
                    .binary(BinOp::And, Type::I64, i, Value::i64(count as i64 - 1))
            } else {
                i
            }
        } else {
            Value::i64(pick(self.rng, &[-1, 8, 1 << 32, i64::MAX, i64::MIN]))
        };
        let addr = self.b.gep(elem, base, idx);
        let v = self.b.load(elem, addr);
        self.push(elem, v);
    }

    /// An if/else diamond with join phis.
    fn seg_diamond(&mut self) {
        let cond = self.bool_val();
        let then_bb = self.b.new_block();
        let else_bb = self.b.new_block();
        let join = self.b.new_block();
        self.b.cond_br(cond, then_bb, else_bb);

        let snapshot = self.avail.clone();

        self.b.switch_to_block(then_bb);
        for _ in 0..self.rng.gen_range(1..4usize) {
            self.emit_op();
        }
        let (ti, tf) = (self.int_val(), self.float_val());
        self.b.br(join);

        self.avail = snapshot.clone();
        self.b.switch_to_block(else_bb);
        for _ in 0..self.rng.gen_range(1..4usize) {
            self.emit_op();
        }
        let (ei, ef) = (self.int_val(), self.float_val());
        self.b.br(join);

        // Values defined inside the branches do not dominate the join.
        self.avail = snapshot;
        self.b.switch_to_block(join);
        let pi = self.b.phi(Type::I64, vec![(then_bb, ti), (else_bb, ei)]);
        let pf = self.b.phi(Type::F64, vec![(then_bb, tf), (else_bb, ef)]);
        self.push(Type::I64, pi);
        self.push(Type::F64, pf);
    }

    /// A bounded counted self-loop with an accumulator phi.
    fn seg_loop(&mut self) {
        let trips = self.rng.gen_range(2..9i64);
        let pre = self.b.current_block();
        let header = self.b.new_block();
        let exit = self.b.new_block();
        self.b.br(header);

        let snapshot = self.avail.clone();
        self.b.switch_to_block(header);
        // Incomings must be ordered like the CFG predecessors (pre was
        // created before header). Back-edge values don't exist yet, so
        // they are placeholders patched after `finish`.
        let iphi = self.b.phi(
            Type::I64,
            vec![(pre, Value::i64(0)), (header, Value::i64(0))],
        );
        let acc_init = Value::f64(0.0);
        let acc = self
            .b
            .phi(Type::F64, vec![(pre, acc_init), (header, Value::f64(0.0))]);
        self.avail = snapshot;
        self.push(Type::I64, iphi);
        self.push(Type::F64, acc);

        for _ in 0..self.rng.gen_range(1..4usize) {
            self.emit_op();
        }
        let step = self.float_val();
        let acc_next = self.b.binary(BinOp::Fadd, Type::F64, acc, step);
        let i_next = self.b.binary(BinOp::Add, Type::I64, iphi, Value::i64(1));
        let cont = self.b.icmp(IcmpPred::Slt, i_next, Value::i64(trips));
        self.b.cond_br(cont, header, exit);

        self.patches.push(PhiPatch {
            phi: iphi.as_inst().expect("phi is an inst"),
            slot: 1,
            value: i_next.as_inst().expect("add is an inst"),
        });
        self.patches.push(PhiPatch {
            phi: acc.as_inst().expect("phi is an inst"),
            slot: 1,
            value: acc_next.as_inst().expect("fadd is an inst"),
        });

        // Everything defined in the header dominates the exit block.
        self.b.switch_to_block(exit);
        self.push(Type::F64, acc_next);
        self.push(Type::I64, i_next);
    }

    /// A call to a previously generated helper.
    fn seg_call(&mut self) {
        if self.callables.is_empty() {
            self.seg_straight();
            return;
        }
        let (fid, params, ret) = {
            let idx = self.rng.gen_range(0..self.callables.len());
            self.callables[idx].clone()
        };
        let args: Vec<Value> = params
            .iter()
            .map(|&t| {
                if t == Type::I64 {
                    self.int_val()
                } else {
                    self.float_val()
                }
            })
            .collect();
        let v = self.b.call(fid, args, ret);
        if ret != Type::Void {
            self.push(ret, v);
        }
    }

    /// Emits the whole body and returns the finished function.
    fn generate(mut self, segments: usize, is_main: bool) -> ipas_ir::Function {
        for _ in 0..segments {
            match self.rng.gen_range(0..8u32) {
                0..=2 => self.seg_straight(),
                3 => self.seg_memory(),
                4..=5 => self.seg_diamond(),
                6 => self.seg_loop(),
                _ => self.seg_call(),
            }
        }
        if is_main {
            // Ensure the program observably outputs something.
            self.outputs = 0;
            self.emit_output();
            self.emit_output();
        }
        let ret_ty = {
            let f = self.b.func();
            f.return_type()
        };
        let rv = match ret_ty {
            Type::I64 => Some(self.int_val()),
            Type::F64 => Some(self.float_val()),
            Type::Bool => Some(self.bool_val()),
            Type::Ptr => Some(Value::null()),
            Type::Void => None,
        };
        self.b.ret(rv);
        let mut func = self.b.finish();
        for p in &self.patches {
            if let Inst::Phi { incomings, .. } = func.inst_mut(p.phi) {
                incomings[p.slot].1 = Value::inst(p.value);
            }
        }
        func
    }
}

/// Generates one verified module: up to two leaf helpers plus `main`.
///
/// The output always passes `ipas_ir::verify::verify_module` (the
/// campaign asserts this — a failure is a generator bug, not a finding)
/// and terminates within a small instruction budget unless it traps.
pub fn gen_module(rng: &mut StdRng) -> Module {
    let mut module = Module::new("fuzz");
    let mut callables: Vec<(FuncId, Vec<Type>, Type)> = Vec::new();

    let n_helpers = rng.gen_range(0..3usize);
    for h in 0..n_helpers {
        let params: Vec<Type> = (0..rng.gen_range(0..3usize))
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Type::I64
                } else {
                    Type::F64
                }
            })
            .collect();
        let ret = if rng.gen_bool(0.5) {
            Type::I64
        } else {
            Type::F64
        };
        let name = format!("helper{h}");
        let segments = rng.gen_range(1..3usize);
        let func = FnGen::new(rng, &name, &params, ret, Vec::new()).generate(segments, false);
        let fid = module.add_function(func);
        callables.push((fid, params, ret));
    }

    let segments = rng.gen_range(2..5usize);
    let main = FnGen::new(rng, "main", &[], Type::I64, callables).generate(segments, true);
    module.add_function(main);
    module
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_ir::verify::verify_module;
    use rand::SeedableRng;

    #[test]
    fn generated_modules_verify() {
        for seed in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = gen_module(&mut rng);
            verify_module(&m).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: generator broke the verifier: {e:?}\n{}",
                    m.to_text()
                )
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_module(&mut StdRng::seed_from_u64(42));
        let b = gen_module(&mut StdRng::seed_from_u64(42));
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn generated_modules_terminate_or_trap() {
        use ipas_interp::{Machine, RunConfig, RunStatus};
        let mut hangs = 0usize;
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = gen_module(&mut rng);
            let cfg = RunConfig {
                max_insts: 1_000_000,
                ..RunConfig::default()
            };
            let out = Machine::new(&m).run(&cfg).expect("well-formed run");
            if out.status == RunStatus::Hang {
                hangs += 1;
            }
        }
        assert_eq!(hangs, 0, "structured loops must terminate");
    }
}

//! Differential fuzzing for the SciL → IR → interpreter stack.
//!
//! IPAS's whole value proposition is catching *silent* corruption, so
//! the reproduction itself must not silently diverge: the compiled
//! engine, the pass pipeline, and the duplication transform each claim
//! semantic equivalence that hand-written differential tests only spot
//! check. This crate makes the checking systematic:
//!
//! * **generators** ([`scil_gen`], [`ir_gen`]) — seeded, deterministic,
//!   *structured* program generation. SciL programs are built from a
//!   typed statement/expression grammar and always terminate; IR
//!   modules are built through [`ipas_ir::FunctionBuilder`] and always
//!   pass the verifier, while still reaching trapping paths (division,
//!   wild indices, overflowing `gep`s) on purpose;
//! * **mutators** ([`mutate`]) — byte- and line-level corruption
//!   (including non-ASCII injection) of well-formed inputs, feeding the
//!   no-panic oracle;
//! * **oracles** ([`oracle`]) — six differential checks, each
//!   returning a typed [`oracle::Divergence`] instead of asserting:
//!   reference vs compiled engine (full `RunOutput` equality),
//!   printer→parser round-trip, pass-pipeline semantic preservation
//!   (the default pipeline plus seeded random pass orders through the
//!   pass manager, divergences bisected to the first offending pass
//!   application), duplication-transform identity under zero faults,
//!   no-panic (malformed input must surface as a typed error or
//!   trap, never a host panic), and incremental splice equivalence (a
//!   delta campaign against a stored baseline must be byte-identical
//!   to a from-scratch campaign on the mutated program while
//!   re-injecting only the changed sections' plans);
//! * **minimizer** ([`minimize`]) — delta debugging over blocks and
//!   instructions (and lines/bytes for textual inputs), re-verifying
//!   every candidate so the minimized repro is still a valid program
//!   that reproduces the same oracle's divergence;
//! * **campaign driver** ([`campaign`]) — the seeded loop behind
//!   `ipas fuzz`, persisting findings as [`ipas_store::FuzzRepro`]
//!   artifacts in the content-addressed store.

#![warn(missing_docs)]

pub mod campaign;
pub mod ir_gen;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod scil_gen;

pub use campaign::{run_fuzz, FuzzConfig, FuzzFinding, FuzzReport};
pub use ipas_interp::FaultModel;
pub use minimize::{minimize_module, minimize_module_with, minimize_text, MinimizeStats};
pub use oracle::{Divergence, OracleKind};

//! The five differential oracles.
//!
//! Each oracle takes a well-formed input and returns `Some(Divergence)`
//! when the property it guards is violated, `None` when the input is
//! clean. Float-carrying state is always compared **bitwise** — NaN
//! payloads and signed zeros count, exactly as in the checked-in
//! differential tests — because a fuzzer that compares with `==` would
//! dismiss the one class of mismatch it exists to find.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ipas_core::policy::ProtectionPolicy;
use ipas_interp::{
    CompiledMachine, CompiledProgram, Injection, Machine, RtVal, RunConfig, RunOutput, RunStatus,
};
use ipas_ir::verify::verify_module;
use ipas_ir::{parser::parse_module, Module};

/// Which differential property an oracle checks.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OracleKind {
    /// Reference interpreter vs pre-decoded compiled engine: every
    /// observable field of [`RunOutput`] must match bit-for-bit, on
    /// clean runs and under injected faults.
    EngineDiff,
    /// Printed IR must re-parse to a module that prints identically.
    Roundtrip,
    /// mem2reg + LICM must preserve semantics (outputs, console,
    /// status) on every function of the module.
    Passes,
    /// Full duplication with zero faults must be invisible: same
    /// outputs, same status, and never a spurious `Detected`.
    Duplication,
    /// Malformed input must produce a typed error or trap — the
    /// frontends and engines must not panic the host.
    NoPanic,
}

impl OracleKind {
    /// All oracles, in campaign order.
    pub const ALL: [OracleKind; 5] = [
        OracleKind::EngineDiff,
        OracleKind::Roundtrip,
        OracleKind::Passes,
        OracleKind::Duplication,
        OracleKind::NoPanic,
    ];

    /// Stable CLI/artifact name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::EngineDiff => "engine-diff",
            OracleKind::Roundtrip => "roundtrip",
            OracleKind::Passes => "passes",
            OracleKind::Duplication => "duplication",
            OracleKind::NoPanic => "no-panic",
        }
    }

    /// Parses a CLI/artifact name.
    pub fn from_name(name: &str) -> Option<OracleKind> {
        OracleKind::ALL.into_iter().find(|o| o.name() == name)
    }
}

/// A violated oracle: which property broke and a human-readable
/// description of the mismatch.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The violated property.
    pub oracle: OracleKind,
    /// What differed (already formatted for humans; floats as bits).
    pub message: String,
}

impl Divergence {
    fn new(oracle: OracleKind, message: impl Into<String>) -> Self {
        Divergence {
            oracle,
            message: message.into(),
        }
    }
}

/// Bounded config used for all oracle runs: generated programs retire
/// well under this budget unless they genuinely hang.
fn oracle_config() -> RunConfig {
    RunConfig {
        max_insts: 2_000_000,
        ..RunConfig::default()
    }
}

/// Renders a status with float payloads as bit patterns.
fn fmt_status(s: &RunStatus) -> String {
    match s {
        RunStatus::Completed(Some(RtVal::F64(v))) => {
            format!("Completed(F64 bits {:#018x})", v.to_bits())
        }
        other => format!("{other:?}"),
    }
}

/// A canonical, bit-exact rendering of every observable field of a
/// [`RunOutput`]. Two runs are identical iff their fingerprints match.
fn fingerprint(out: &RunOutput) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "status {}", fmt_status(&out.status));
    let _ = writeln!(s, "dynamic-insts {}", out.dynamic_insts);
    let _ = writeln!(s, "eligible-results {}", out.eligible_results);
    let _ = writeln!(s, "output-ints {:?}", out.outputs.as_ints());
    let bits: Vec<String> = out
        .outputs
        .as_floats()
        .iter()
        .map(|f| format!("{:#018x}", f.to_bits()))
        .collect();
    let _ = writeln!(s, "output-floats {bits:?}");
    let _ = writeln!(s, "console {:?}", out.console);
    let _ = writeln!(s, "injected-site {:?}", out.injected_site);
    let _ = writeln!(s, "injected-at {:?}", out.injected_at_inst);
    s
}

/// The *semantic* slice of a fingerprint: what a correct transform must
/// preserve (outputs, console, status) — not instruction counts, which
/// transforms legitimately change.
fn semantic_fingerprint(out: &RunOutput) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "status {}", fmt_status(&out.status));
    let _ = writeln!(s, "output-ints {:?}", out.outputs.as_ints());
    let bits: Vec<String> = out
        .outputs
        .as_floats()
        .iter()
        .map(|f| format!("{:#018x}", f.to_bits()))
        .collect();
    let _ = writeln!(s, "output-floats {bits:?}");
    let _ = writeln!(s, "console {:?}", out.console);
    s
}

fn diff_message(label: &str, a: &str, b: &str) -> String {
    format!("{label}:\n--- reference ---\n{a}--- candidate ---\n{b}")
}

/// Oracle 1: reference vs compiled engine, clean and under injection.
pub fn check_engine_diff(module: &Module) -> Option<Divergence> {
    let cfg = oracle_config();
    let reference = match Machine::new(module).run(&cfg) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::EngineDiff,
                format!("reference engine refused the module: {e:?}"),
            ))
        }
    };
    let program = CompiledProgram::compile(module);
    let mut compiled = CompiledMachine::new(&program);
    let fast = match compiled.run(&cfg) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::EngineDiff,
                format!("compiled engine refused the module: {e:?}"),
            ))
        }
    };
    let (fa, fb) = (fingerprint(&reference), fingerprint(&fast));
    if fa != fb {
        return Some(Divergence::new(
            OracleKind::EngineDiff,
            diff_message("clean run diverged", &fa, &fb),
        ));
    }

    // A few deterministic injected runs across the eligible-result
    // space: both engines must corrupt the same dynamic result the
    // same way and then agree on everything downstream.
    if reference.eligible_results == 0 || reference.status == RunStatus::Hang {
        return None;
    }
    let budget = RunConfig::budget_from_nominal(reference.dynamic_insts);
    for k in 0..3u64 {
        let target = (reference.eligible_results * (2 * k + 1)) / 6;
        let bit = [0u32, 31, 63][k as usize % 3];
        let inj_cfg = RunConfig {
            max_insts: budget,
            injection: Some(Injection::at_global_index(target, bit)),
            ..RunConfig::default()
        };
        let r = Machine::new(module).run(&inj_cfg);
        let f = compiled.run(&inj_cfg);
        match (r, f) {
            (Ok(r), Ok(f)) => {
                let (fa, fb) = (fingerprint(&r), fingerprint(&f));
                if fa != fb {
                    return Some(Divergence::new(
                        OracleKind::EngineDiff,
                        diff_message(
                            &format!("injected run (target {target}, bit {bit}) diverged"),
                            &fa,
                            &fb,
                        ),
                    ));
                }
            }
            (r, f) => {
                return Some(Divergence::new(
                    OracleKind::EngineDiff,
                    format!(
                        "injected run (target {target}, bit {bit}): reference {:?} vs compiled {:?}",
                        r.err(),
                        f.err()
                    ),
                ));
            }
        }
    }
    None
}

/// Oracle 2: printed IR re-parses to a semantically identical module,
/// and one round-trip canonicalizes the text (the parser renumbers
/// values densely, so a *second* round-trip must be a fixpoint).
pub fn check_roundtrip(module: &Module) -> Option<Divergence> {
    let printed = module.to_text();
    let reparsed = match parse_module(&printed) {
        Ok(m) => m,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Roundtrip,
                format!(
                    "printer emitted unparseable IR: line {}: {}\n{printed}",
                    e.line(),
                    e.message()
                ),
            ))
        }
    };
    let canonical = reparsed.to_text();
    let again = match parse_module(&canonical) {
        Ok(m) => m,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Roundtrip,
                format!(
                    "canonicalized IR failed to re-parse: line {}: {}\n{canonical}",
                    e.line(),
                    e.message()
                ),
            ))
        }
    };
    if again.to_text() != canonical {
        return Some(Divergence::new(
            OracleKind::Roundtrip,
            diff_message(
                "canonical print→parse→print not a fixpoint",
                &canonical,
                &again.to_text(),
            ),
        ));
    }
    // Renumbering must be the ONLY thing a round-trip changes: the
    // reparsed module has to behave identically.
    if let (Ok(before), Ok(after)) = (baseline(module), baseline(&reparsed)) {
        if before.status != RunStatus::Hang {
            let (fa, fb) = (semantic_fingerprint(&before), semantic_fingerprint(&after));
            if fa != fb {
                return Some(Divergence::new(
                    OracleKind::Roundtrip,
                    diff_message("round-trip changed semantics", &fa, &fb),
                ));
            }
        }
    }
    None
}

/// Runs both engines and returns the reference output (they already
/// passed or will separately fail [`check_engine_diff`]; here we only
/// need one trustworthy baseline).
fn baseline(module: &Module) -> Result<RunOutput, String> {
    Machine::new(module)
        .run(&oracle_config())
        .map_err(|e| format!("{e:?}"))
}

/// Oracle 3: the optimization pipeline preserves semantics.
pub fn check_passes(module: &Module) -> Option<Divergence> {
    let before = match baseline(module) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Passes,
                format!("baseline run failed: {e}"),
            ))
        }
    };
    // A hang baseline gives no semantics to preserve within budget.
    if before.status == RunStatus::Hang {
        return None;
    }
    let mut optimized = module.clone();
    let ids: Vec<_> = optimized.functions().map(|(id, _)| id).collect();
    for id in ids {
        let f = optimized.function_mut(id);
        ipas_ir::passes::mem2reg::promote_memory_to_registers(f);
        ipas_ir::passes::licm::hoist_loop_invariants(f);
    }
    if let Err(e) = verify_module(&optimized) {
        return Some(Divergence::new(
            OracleKind::Passes,
            format!(
                "pass pipeline broke the verifier: {e:?}\n{}",
                optimized.to_text()
            ),
        ));
    }
    let after = match baseline(&optimized) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Passes,
                format!("optimized module failed to run: {e}"),
            ))
        }
    };
    let (fa, fb) = (semantic_fingerprint(&before), semantic_fingerprint(&after));
    if fa != fb {
        return Some(Divergence::new(
            OracleKind::Passes,
            diff_message("mem2reg+LICM changed semantics", &fa, &fb),
        ));
    }
    None
}

/// Oracle 4: full duplication under zero faults is invisible.
pub fn check_duplication(module: &Module) -> Option<Divergence> {
    let before = match baseline(module) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Duplication,
                format!("baseline run failed: {e}"),
            ))
        }
    };
    if before.status == RunStatus::Hang {
        return None;
    }
    let (protected, _stats) = ProtectionPolicy::FullDuplication.apply(module);
    if let Err(e) = verify_module(&protected) {
        return Some(Divergence::new(
            OracleKind::Duplication,
            format!(
                "duplication broke the verifier: {e:?}\n{}",
                protected.to_text()
            ),
        ));
    }
    // The protected module executes more instructions; give it room.
    let cfg = RunConfig {
        max_insts: RunConfig::budget_from_nominal(before.dynamic_insts),
        ..RunConfig::default()
    };
    let after = match Machine::new(&protected).run(&cfg) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Duplication,
                format!("protected module failed to run: {e:?}"),
            ))
        }
    };
    if after.status == RunStatus::Detected {
        return Some(Divergence::new(
            OracleKind::Duplication,
            "spurious detection: duplication fired with zero injected faults".to_string(),
        ));
    }
    let (fa, fb) = (semantic_fingerprint(&before), semantic_fingerprint(&after));
    if fa != fb {
        return Some(Divergence::new(
            OracleKind::Duplication,
            diff_message("duplication changed fault-free semantics", &fa, &fb),
        ));
    }
    None
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Oracle 5 for SciL text: the full frontend + both engines must never
/// panic, whatever the input looks like.
pub fn check_no_panic_scil(src: &str) -> Option<Divergence> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(module) = ipas_lang::compile(src) {
            let cfg = oracle_config();
            let _ = Machine::new(&module).run(&cfg);
            let program = CompiledProgram::compile(&module);
            let _ = CompiledMachine::new(&program).run(&cfg);
        }
    }));
    result.err().map(|p| {
        Divergence::new(
            OracleKind::NoPanic,
            format!("SciL pipeline panicked: {}", panic_message(&*p)),
        )
    })
}

/// Oracle 5 for IR text: the parser (and, when it accepts, the
/// verifier and engines) must never panic.
pub fn check_no_panic_ir(text: &str) -> Option<Divergence> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(module) = parse_module(text) {
            if verify_module(&module).is_ok() {
                let cfg = oracle_config();
                let _ = Machine::new(&module).run(&cfg);
                let program = CompiledProgram::compile(&module);
                let _ = CompiledMachine::new(&program).run(&cfg);
            }
        }
    }));
    result.err().map(|p| {
        Divergence::new(
            OracleKind::NoPanic,
            format!("IR pipeline panicked: {}", panic_message(&*p)),
        )
    })
}

/// Runs one module-level oracle (everything except no-panic, which
/// operates on text).
pub fn check_module(oracle: OracleKind, module: &Module) -> Option<Divergence> {
    match oracle {
        OracleKind::EngineDiff => check_engine_diff(module),
        OracleKind::Roundtrip => check_roundtrip(module),
        OracleKind::Passes => check_passes(module),
        OracleKind::Duplication => check_duplication(module),
        OracleKind::NoPanic => check_no_panic_ir(&module.to_text()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_names_round_trip() {
        for o in OracleKind::ALL {
            assert_eq!(OracleKind::from_name(o.name()), Some(o));
        }
        assert_eq!(OracleKind::from_name("nope"), None);
    }

    #[test]
    fn clean_module_passes_every_oracle() {
        let module =
            ipas_lang::compile("fn main() -> int { output_i(41 + 1); return 0; }").unwrap();
        for o in OracleKind::ALL {
            assert!(
                check_module(o, &module).is_none(),
                "oracle {} flagged a trivially clean module",
                o.name()
            );
        }
    }

    #[test]
    fn no_panic_accepts_garbage_quietly() {
        for junk in ["", "fn", "fn main( -> int {", "λλλ", "fn @f)(", "42"] {
            assert!(check_no_panic_scil(junk).is_none(), "scil: {junk:?}");
            assert!(check_no_panic_ir(junk).is_none(), "ir: {junk:?}");
        }
    }
}

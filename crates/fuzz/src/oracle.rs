//! The six differential oracles.
//!
//! Each oracle takes a well-formed input and returns `Some(Divergence)`
//! when the property it guards is violated, `None` when the input is
//! clean. Float-carrying state is always compared **bitwise** — NaN
//! payloads and signed zeros count, exactly as in the checked-in
//! differential tests — because a fuzzer that compares with `==` would
//! dismiss the one class of mismatch it exists to find.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ipas_core::policy::ProtectionPolicy;
use ipas_interp::{
    CompiledMachine, CompiledProgram, FaultModel, Injection, Machine, RtVal, RunConfig, RunOutput,
    RunStatus, SiteClass,
};
use ipas_ir::passmgr::{bisect_pipeline, PassManager, PipelineSpec};
use ipas_ir::verify::verify_module;
use ipas_ir::{parser::parse_module, Module};

/// Which differential property an oracle checks.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OracleKind {
    /// Reference interpreter vs pre-decoded compiled engine: every
    /// observable field of [`RunOutput`] must match bit-for-bit, on
    /// clean runs and under injected faults.
    EngineDiff,
    /// Printed IR must re-parse to a module that prints identically.
    Roundtrip,
    /// The default optimization pipeline and randomized pipeline
    /// orders (run through the pass manager) must preserve semantics
    /// (outputs, console, status); a divergence is bisected to the
    /// first diverging pass application.
    Passes,
    /// Full duplication with zero faults must be invisible: same
    /// outputs, same status, and never a spurious `Detected`.
    Duplication,
    /// Malformed input must produce a typed error or trap — the
    /// frontends and engines must not panic the host.
    NoPanic,
    /// An incremental campaign spliced from a stored baseline must be
    /// byte-identical to a from-scratch campaign on the mutated
    /// program, and must re-inject only the changed sections' plans.
    /// Operates on a (base, mutated) module *pair*, so the campaign
    /// driver dispatches it separately from the single-module oracles.
    Incremental,
}

impl OracleKind {
    /// All oracles, in campaign order.
    pub const ALL: [OracleKind; 6] = [
        OracleKind::EngineDiff,
        OracleKind::Roundtrip,
        OracleKind::Passes,
        OracleKind::Duplication,
        OracleKind::NoPanic,
        OracleKind::Incremental,
    ];

    /// Stable CLI/artifact name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::EngineDiff => "engine-diff",
            OracleKind::Roundtrip => "roundtrip",
            OracleKind::Passes => "passes",
            OracleKind::Duplication => "duplication",
            OracleKind::NoPanic => "no-panic",
            OracleKind::Incremental => "incremental",
        }
    }

    /// Parses a CLI/artifact name.
    pub fn from_name(name: &str) -> Option<OracleKind> {
        OracleKind::ALL.into_iter().find(|o| o.name() == name)
    }
}

/// A violated oracle: which property broke and a human-readable
/// description of the mismatch.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The violated property.
    pub oracle: OracleKind,
    /// What differed (already formatted for humans; floats as bits).
    pub message: String,
}

impl Divergence {
    fn new(oracle: OracleKind, message: impl Into<String>) -> Self {
        Divergence {
            oracle,
            message: message.into(),
        }
    }
}

/// Bounded config used for all oracle runs: generated programs retire
/// well under this budget unless they genuinely hang.
fn oracle_config() -> RunConfig {
    RunConfig {
        max_insts: 2_000_000,
        ..RunConfig::default()
    }
}

/// Renders a status with float payloads as bit patterns.
fn fmt_status(s: &RunStatus) -> String {
    match s {
        RunStatus::Completed(Some(RtVal::F64(v))) => {
            format!("Completed(F64 bits {:#018x})", v.to_bits())
        }
        other => format!("{other:?}"),
    }
}

/// A canonical, bit-exact rendering of every observable field of a
/// [`RunOutput`]. Two runs are identical iff their fingerprints match.
fn fingerprint(out: &RunOutput) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "status {}", fmt_status(&out.status));
    let _ = writeln!(s, "dynamic-insts {}", out.dynamic_insts);
    let _ = writeln!(s, "eligible-results {}", out.eligible_results);
    let _ = writeln!(
        s,
        "loads {} stores {} cond-branches {}",
        out.loads, out.stores, out.cond_branches
    );
    let _ = writeln!(s, "output-ints {:?}", out.outputs.as_ints());
    let bits: Vec<String> = out
        .outputs
        .as_floats()
        .iter()
        .map(|f| format!("{:#018x}", f.to_bits()))
        .collect();
    let _ = writeln!(s, "output-floats {bits:?}");
    let _ = writeln!(s, "console {:?}", out.console);
    let _ = writeln!(s, "injected-site {:?}", out.injected_site);
    let _ = writeln!(s, "injected-at {:?}", out.injected_at_inst);
    s
}

/// The *semantic* slice of a fingerprint: what a correct transform must
/// preserve (outputs, console, status) — not instruction counts, which
/// transforms legitimately change.
fn semantic_fingerprint(out: &RunOutput) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "status {}", fmt_status(&out.status));
    let _ = writeln!(s, "output-ints {:?}", out.outputs.as_ints());
    let bits: Vec<String> = out
        .outputs
        .as_floats()
        .iter()
        .map(|f| format!("{:#018x}", f.to_bits()))
        .collect();
    let _ = writeln!(s, "output-floats {bits:?}");
    let _ = writeln!(s, "console {:?}", out.console);
    s
}

fn diff_message(label: &str, a: &str, b: &str) -> String {
    format!("{label}:\n--- reference ---\n{a}--- candidate ---\n{b}")
}

/// Oracle 1: reference vs compiled engine, clean and under injection,
/// using the default single-bit fault model.
pub fn check_engine_diff(module: &Module) -> Option<Divergence> {
    check_engine_diff_model(module, FaultModel::SingleBit)
}

/// [`check_engine_diff`] under a specific fault model: the injected
/// runs corrupt whatever site class the model targets (value results,
/// loads, stores, or branch decisions), and both engines must still
/// agree bit-for-bit. Models whose site class the module never
/// exercises fall back to single-bit value flips so every case still
/// checks *something* under injection.
pub fn check_engine_diff_model(module: &Module, model: FaultModel) -> Option<Divergence> {
    let cfg = oracle_config();
    let reference = match Machine::new(module).run(&cfg) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::EngineDiff,
                format!("reference engine refused the module: {e:?}"),
            ))
        }
    };
    let program = CompiledProgram::compile(module);
    let mut compiled = CompiledMachine::new(&program);
    let fast = match compiled.run(&cfg) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::EngineDiff,
                format!("compiled engine refused the module: {e:?}"),
            ))
        }
    };
    let (fa, fb) = (fingerprint(&reference), fingerprint(&fast));
    if fa != fb {
        return Some(Divergence::new(
            OracleKind::EngineDiff,
            diff_message("clean run diverged", &fa, &fb),
        ));
    }

    // A few deterministic injected runs across the model's sample
    // space: both engines must corrupt the same dynamic event the same
    // way and then agree on everything downstream.
    if reference.eligible_results == 0 || reference.status == RunStatus::Hang {
        return None;
    }
    let space = match model.site_class() {
        SiteClass::Value => reference.eligible_results,
        SiteClass::Load => reference.loads,
        SiteClass::Store => reference.stores,
        SiteClass::Branch => reference.cond_branches,
    };
    let model = if space == 0 {
        FaultModel::SingleBit
    } else {
        model
    };
    let space = if space == 0 {
        reference.eligible_results
    } else {
        space
    };
    let domain = model.bit_domain();
    let budget = RunConfig::budget_from_nominal(reference.dynamic_insts);
    for k in 0..3u64 {
        let target = (space * (2 * k + 1)) / 6;
        let bit = [0u32, domain / 2, domain - 1][k as usize % 3];
        let inj_cfg = RunConfig {
            max_insts: budget,
            injection: Some(Injection::for_model(model, target, bit)),
            ..RunConfig::default()
        };
        let r = Machine::new(module).run(&inj_cfg);
        let f = compiled.run(&inj_cfg);
        match (r, f) {
            (Ok(r), Ok(f)) => {
                let (fa, fb) = (fingerprint(&r), fingerprint(&f));
                if fa != fb {
                    return Some(Divergence::new(
                        OracleKind::EngineDiff,
                        diff_message(
                            &format!(
                                "injected run (model {model}, target {target}, bit {bit}) diverged"
                            ),
                            &fa,
                            &fb,
                        ),
                    ));
                }
            }
            (r, f) => {
                return Some(Divergence::new(
                    OracleKind::EngineDiff,
                    format!(
                        "injected run (model {model}, target {target}, bit {bit}): \
                         reference {:?} vs compiled {:?}",
                        r.err(),
                        f.err()
                    ),
                ));
            }
        }
    }
    None
}

/// Oracle 2: printed IR re-parses to a semantically identical module,
/// and one round-trip canonicalizes the text (the parser renumbers
/// values densely, so a *second* round-trip must be a fixpoint).
pub fn check_roundtrip(module: &Module) -> Option<Divergence> {
    let printed = module.to_text();
    let reparsed = match parse_module(&printed) {
        Ok(m) => m,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Roundtrip,
                format!(
                    "printer emitted unparseable IR: line {}: {}\n{printed}",
                    e.line(),
                    e.message()
                ),
            ))
        }
    };
    let canonical = reparsed.to_text();
    let again = match parse_module(&canonical) {
        Ok(m) => m,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Roundtrip,
                format!(
                    "canonicalized IR failed to re-parse: line {}: {}\n{canonical}",
                    e.line(),
                    e.message()
                ),
            ))
        }
    };
    if again.to_text() != canonical {
        return Some(Divergence::new(
            OracleKind::Roundtrip,
            diff_message(
                "canonical print→parse→print not a fixpoint",
                &canonical,
                &again.to_text(),
            ),
        ));
    }
    // Renumbering must be the ONLY thing a round-trip changes: the
    // reparsed module has to behave identically.
    if let (Ok(before), Ok(after)) = (baseline(module), baseline(&reparsed)) {
        if before.status != RunStatus::Hang {
            let (fa, fb) = (semantic_fingerprint(&before), semantic_fingerprint(&after));
            if fa != fb {
                return Some(Divergence::new(
                    OracleKind::Roundtrip,
                    diff_message("round-trip changed semantics", &fa, &fb),
                ));
            }
        }
    }
    None
}

/// Runs both engines and returns the reference output (they already
/// passed or will separately fail [`check_engine_diff`]; here we only
/// need one trustworthy baseline).
fn baseline(module: &Module) -> Result<RunOutput, String> {
    Machine::new(module)
        .run(&oracle_config())
        .map_err(|e| format!("{e:?}"))
}

/// FNV-1a over the module text: a deterministic per-input seed for the
/// randomized pipeline orders (same module → same orders → replayable
/// findings).
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The pipelines the `passes` oracle exercises for one module: the
/// default spec plus two seeded Fisher–Yates shuffles of every
/// registered pass.
fn passes_oracle_specs(module: &Module) -> Vec<PipelineSpec> {
    let mut specs = vec![PipelineSpec::default_optimization()];
    let mut state = fnv1a(&module.to_text()) | 1;
    let mut names: Vec<&str> = ipas_ir::passmgr::pass_names().to_vec();
    for _ in 0..2 {
        for i in (1..names.len()).rev() {
            let j = (xorshift(&mut state) % (i as u64 + 1)) as usize;
            names.swap(i, j);
        }
        specs.push(PipelineSpec::parse(&names.join(",")).expect("registry names parse"));
    }
    specs
}

/// Runs one pipeline spec through the pass manager (with interleaved
/// verification) and checks the result against the baseline semantic
/// fingerprint (`want`; `None` when the baseline trapped — trapping
/// executions are undefined behaviour, which the pipeline may
/// legitimately delete, so only verifier cleanliness is required). A
/// semantic divergence is bisected to the first diverging pass
/// application.
fn check_one_pipeline(
    module: &Module,
    spec: &PipelineSpec,
    want: Option<&str>,
) -> Option<Divergence> {
    let mut pm = match PassManager::from_spec(spec) {
        Ok(pm) => pm,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Passes,
                format!("pipeline \"{spec}\" failed to build: {e}"),
            ))
        }
    };
    pm.set_verify_each(true);
    let mut optimized = module.clone();
    if let Err(e) = pm.run_module(&mut optimized) {
        return Some(Divergence::new(
            OracleKind::Passes,
            format!("pipeline \"{spec}\" broke the verifier: {e}"),
        ));
    }
    let want = want?;
    let after = match baseline(&optimized) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Passes,
                format!("pipeline \"{spec}\": optimized module failed to run: {e}"),
            ))
        }
    };
    let fb = semantic_fingerprint(&after);
    if fb == want {
        return None;
    }
    // Localize: which pass application first changed observable
    // behaviour? The bisection oracle accepts a module iff it still
    // verifies and reproduces the baseline fingerprint.
    let mut accept = |m: &Module| {
        verify_module(m).is_ok()
            && match Machine::new(m).run(&oracle_config()) {
                Ok(out) => semantic_fingerprint(&out) == want,
                Err(_) => false,
            }
    };
    let located = match bisect_pipeline(module, spec, &mut accept) {
        Ok(Some(report)) if report.execution_index > 0 => format!(
            "first diverging application #{}: pass {} on function {}",
            report.execution_index, report.pass, report.function
        ),
        Ok(Some(_)) => "input already fails the bisection oracle".to_string(),
        Ok(None) => "bisection could not reproduce the divergence".to_string(),
        Err(e) => format!("bisection failed: {e}"),
    };
    Some(Divergence::new(
        OracleKind::Passes,
        format!(
            "{}\n{}",
            diff_message(&format!("pipeline \"{spec}\" changed semantics"), want, &fb),
            located
        ),
    ))
}

/// Oracle 3: optimization pipelines preserve semantics — the default
/// spec plus seeded random pass orders, all executed through the
/// [`PassManager`] with interleaved verification. Any divergence is
/// bisected ([`bisect_pipeline`]) to name the first pass application
/// after which the observable behaviour changed.
///
/// Baselines that hang or trap carry no defined semantics to preserve
/// (a dead `sdiv 0, 0` is undefined behaviour that DCE may delete), so
/// for those inputs only verifier cleanliness is enforced.
pub fn check_passes(module: &Module) -> Option<Divergence> {
    let before = match baseline(module) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Passes,
                format!("baseline run failed: {e}"),
            ))
        }
    };
    let want = match before.status {
        RunStatus::Hang | RunStatus::Trapped(_) => None,
        _ => Some(semantic_fingerprint(&before)),
    };
    passes_oracle_specs(module)
        .iter()
        .find_map(|spec| check_one_pipeline(module, spec, want.as_deref()))
}

/// Oracle 4: full duplication under zero faults is invisible.
pub fn check_duplication(module: &Module) -> Option<Divergence> {
    let before = match baseline(module) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Duplication,
                format!("baseline run failed: {e}"),
            ))
        }
    };
    if before.status == RunStatus::Hang {
        return None;
    }
    let (protected, _stats) = ProtectionPolicy::FullDuplication.apply(module);
    if let Err(e) = verify_module(&protected) {
        return Some(Divergence::new(
            OracleKind::Duplication,
            format!(
                "duplication broke the verifier: {e:?}\n{}",
                protected.to_text()
            ),
        ));
    }
    // The protected module executes more instructions; give it room.
    let cfg = RunConfig {
        max_insts: RunConfig::budget_from_nominal(before.dynamic_insts),
        ..RunConfig::default()
    };
    let after = match Machine::new(&protected).run(&cfg) {
        Ok(out) => out,
        Err(e) => {
            return Some(Divergence::new(
                OracleKind::Duplication,
                format!("protected module failed to run: {e:?}"),
            ))
        }
    };
    if after.status == RunStatus::Detected {
        return Some(Divergence::new(
            OracleKind::Duplication,
            "spurious detection: duplication fired with zero injected faults".to_string(),
        ));
    }
    let (fa, fb) = (semantic_fingerprint(&before), semantic_fingerprint(&after));
    if fa != fb {
        return Some(Divergence::new(
            OracleKind::Duplication,
            diff_message("duplication changed fault-free semantics", &fa, &fb),
        ));
    }
    None
}

/// Oracle 6: incremental splice equivalence on a (base, mutated)
/// module pair — see [`crate::scil_gen::gen_incremental_pair`] for the
/// mutation class this is sound for.
///
/// Three properties, each its own divergence:
/// 1. the seeding run (no baseline) executes everything;
/// 2. the delta run against the seeded baseline is byte-identical to a
///    from-scratch campaign on the mutated module;
/// 3. the delta run re-injects exactly the plans of sections whose
///    content fingerprint changed — nothing more (wasted reuse) and
///    nothing less (stale splice).
pub fn check_incremental(base: &Module, mutated: &Module, seed: u64) -> Option<Divergence> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ipas-fuzz-incremental-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = check_incremental_in(&dir, base, mutated, seed);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn check_incremental_in(
    dir: &std::path::Path,
    base: &Module,
    mutated: &Module,
    seed: u64,
) -> Option<Divergence> {
    use ipas_analysis::sections::SectionPartition;
    use ipas_core::{run_campaign_incremental, section_fingerprint};
    use ipas_faultsim::sections::assign_sections;
    use ipas_faultsim::{
        draw_plans, run_campaign_with, CampaignConfig, CampaignOptions, GoldenToleranceVerifier,
        Workload,
    };

    let fail = |message: String| Some(Divergence::new(OracleKind::Incremental, message));
    let store = match ipas_store::Store::open(dir) {
        Ok(s) => s,
        Err(e) => return fail(format!("scratch store failed to open: {e}")),
    };
    let config = CampaignConfig {
        runs: 32,
        seed,
        threads: 1,
        ..CampaignConfig::default()
    };
    let options = CampaignOptions::default();
    let base_w = match Workload::serial("fuzz-inc", base.clone(), GoldenToleranceVerifier::EXACT) {
        Ok(w) => w,
        Err(e) => return fail(format!("base golden run failed: {e}")),
    };
    let mut_w = match Workload::serial("fuzz-inc", mutated.clone(), GoldenToleranceVerifier::EXACT)
    {
        Ok(w) => w,
        Err(e) => return fail(format!("mutated golden run failed: {e}")),
    };

    let seeded = match run_campaign_incremental(&store, &base_w, &config, &options, None) {
        Ok(o) => o,
        Err(e) => return fail(format!("seeding run failed: {e}")),
    };
    if seeded.sections_reused != 0 || seeded.injections_executed != seeded.injections_total {
        return fail(format!(
            "seeding run reused without a baseline: {} sections, {} of {} injections executed",
            seeded.sections_reused, seeded.injections_executed, seeded.injections_total
        ));
    }

    let delta = match run_campaign_incremental(
        &store,
        &mut_w,
        &config,
        &options,
        Some(&seeded.index_key),
    ) {
        Ok(o) => o,
        Err(e) => return fail(format!("delta run failed: {e}")),
    };
    let full = match run_campaign_with(&mut_w, &config, &options) {
        Ok(r) => r,
        Err(e) => return fail(format!("from-scratch reference failed: {e}")),
    };
    if full.records != delta.result.records
        || full.harness_failures != delta.result.harness_failures
    {
        return fail(format!(
            "spliced result diverges from a from-scratch campaign \
             (spliced {} records / {} failures, from-scratch {} / {})",
            delta.result.records.len(),
            delta.result.harness_failures.len(),
            full.records.len(),
            full.harness_failures.len()
        ));
    }

    // Reuse accounting: the mutation is shape-preserving, so both
    // partitions have the same sections and the changed ones are
    // exactly those whose content fingerprint moved.
    let bp = SectionPartition::compute(&base_w.module);
    let mp = SectionPartition::compute(&mut_w.module);
    if bp.len() != mp.len() {
        return fail(format!(
            "mutation changed the partition shape: {} vs {} sections",
            bp.len(),
            mp.len()
        ));
    }
    let changed: Vec<u32> = (0..mp.len())
        .filter(|&i| {
            section_fingerprint(&base_w.module, &bp, i).hex()
                != section_fingerprint(&mut_w.module, &mp, i).hex()
        })
        .map(|i| i as u32)
        .collect();
    if changed.is_empty() {
        return fail("section fingerprints failed to register the one-function edit".to_string());
    }
    if delta.sections_reused != mp.len() - changed.len() {
        return fail(format!(
            "delta run reused {} sections, expected {} ({} of {} changed)",
            delta.sections_reused,
            mp.len() - changed.len(),
            changed.len(),
            mp.len()
        ));
    }
    let plans = match draw_plans(&mut_w, &config, options.sampling) {
        Ok(p) => p,
        Err(e) => return fail(format!("plan draw failed: {e}")),
    };
    let assignment = match assign_sections(&mut_w, &mp, &plans) {
        Ok(a) => a,
        Err(e) => return fail(format!("section assignment failed: {e}")),
    };
    let expected: usize = assignment.iter().filter(|s| changed.contains(s)).count();
    if delta.injections_executed != expected {
        return fail(format!(
            "delta run executed {} injections, expected exactly the changed sections' {}",
            delta.injections_executed, expected
        ));
    }
    None
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Oracle 5 for SciL text: the full frontend + both engines must never
/// panic, whatever the input looks like.
pub fn check_no_panic_scil(src: &str) -> Option<Divergence> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(module) = ipas_lang::compile(src) {
            let cfg = oracle_config();
            let _ = Machine::new(&module).run(&cfg);
            let program = CompiledProgram::compile(&module);
            let _ = CompiledMachine::new(&program).run(&cfg);
        }
    }));
    result.err().map(|p| {
        Divergence::new(
            OracleKind::NoPanic,
            format!("SciL pipeline panicked: {}", panic_message(&*p)),
        )
    })
}

/// Oracle 5 for IR text: the parser (and, when it accepts, the
/// verifier and engines) must never panic.
pub fn check_no_panic_ir(text: &str) -> Option<Divergence> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(module) = parse_module(text) {
            if verify_module(&module).is_ok() {
                let cfg = oracle_config();
                let _ = Machine::new(&module).run(&cfg);
                let program = CompiledProgram::compile(&module);
                let _ = CompiledMachine::new(&program).run(&cfg);
            }
        }
    }));
    result.err().map(|p| {
        Divergence::new(
            OracleKind::NoPanic,
            format!("IR pipeline panicked: {}", panic_message(&*p)),
        )
    })
}

/// Runs one module-level oracle (everything except no-panic, which
/// operates on text) under the default single-bit fault model.
pub fn check_module(oracle: OracleKind, module: &Module) -> Option<Divergence> {
    check_module_with(oracle, module, FaultModel::SingleBit)
}

/// [`check_module`] with an explicit fault model; only the engine-diff
/// oracle injects faults, so the other oracles ignore it. The
/// incremental oracle needs a module *pair* ([`check_incremental`]),
/// so a single module trivially satisfies it.
pub fn check_module_with(
    oracle: OracleKind,
    module: &Module,
    model: FaultModel,
) -> Option<Divergence> {
    match oracle {
        OracleKind::EngineDiff => check_engine_diff_model(module, model),
        OracleKind::Roundtrip => check_roundtrip(module),
        OracleKind::Passes => check_passes(module),
        OracleKind::Duplication => check_duplication(module),
        OracleKind::NoPanic => check_no_panic_ir(&module.to_text()),
        OracleKind::Incremental => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_names_round_trip() {
        for o in OracleKind::ALL {
            assert_eq!(OracleKind::from_name(o.name()), Some(o));
        }
        assert_eq!(OracleKind::from_name("nope"), None);
    }

    #[test]
    fn clean_module_passes_every_oracle() {
        let module =
            ipas_lang::compile("fn main() -> int { output_i(41 + 1); return 0; }").unwrap();
        for o in OracleKind::ALL {
            assert!(
                check_module(o, &module).is_none(),
                "oracle {} flagged a trivially clean module",
                o.name()
            );
        }
    }

    #[test]
    fn passes_oracle_orders_are_seeded_and_complete() {
        let module = ipas_lang::compile(
            "fn main() -> int { let s: int = 0;
               for (let i: int = 0; i < 6; i = i + 1) { s = s + i * i; }
               output_i(s); return 0; }",
        )
        .unwrap();
        let a = passes_oracle_specs(&module);
        let b = passes_oracle_specs(&module);
        assert_eq!(a.len(), 3);
        // Deterministic: same module, same orders.
        let render = |specs: &[PipelineSpec]| -> Vec<String> {
            specs.iter().map(|s| s.to_string()).collect()
        };
        assert_eq!(render(&a), render(&b));
        assert_eq!(a[0].to_string(), ipas_ir::passmgr::DEFAULT_PIPELINE);
        // Each shuffle covers every registered pass exactly once.
        for spec in &a[1..] {
            let text = spec.to_string();
            let mut names: Vec<&str> = text.split(',').collect();
            names.sort_unstable();
            let mut all: Vec<&str> = ipas_ir::passmgr::pass_names().to_vec();
            all.sort_unstable();
            assert_eq!(names, all);
        }
        // And the whole oracle accepts a clean looping module.
        assert!(check_passes(&module).is_none());
    }

    #[test]
    fn engine_diff_accepts_every_fault_model() {
        // Regression guard for the model-aware engine-diff oracle: a
        // kernel that exercises every site class (values, loads,
        // stores, branches) must stay bit-identical across engines
        // under injection from every fault model.
        let module = ipas_lang::compile(
            "fn main() -> int { let n: int = 16;
               let a: [int] = new_int(n);
               for (let i: int = 0; i < n; i = i + 1) { a[i] = i * 7 - 3; }
               let s: int = 0;
               for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
               output_i(s); free_arr(a); return 0; }",
        )
        .unwrap();
        for model in FaultModel::ALL {
            assert!(
                check_engine_diff_model(&module, model).is_none(),
                "engines diverged under fault model {model}"
            );
        }
    }

    #[test]
    fn engine_diff_falls_back_when_site_class_is_empty() {
        // Straight-line code executes no branches/loads/stores; the
        // oracle must fall back to single-bit rather than divide by a
        // zero-sized sample space or skip injection entirely.
        let module = ipas_lang::compile("fn main() -> int { output_i(6 * 7); return 0; }").unwrap();
        for model in [
            FaultModel::BranchFlip,
            FaultModel::LoadValue,
            FaultModel::StoreValue,
        ] {
            assert!(check_engine_diff_model(&module, model).is_none());
        }
    }

    #[test]
    fn incremental_oracle_accepts_generated_pairs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in [0u64, 1, 2] {
            let mut rng = StdRng::seed_from_u64(seed);
            let (base, mutated) = crate::scil_gen::gen_incremental_pair(&mut rng);
            let base = ipas_lang::compile(&base).expect("base compiles");
            let mutated = ipas_lang::compile(&mutated).expect("mutated compiles");
            assert!(
                check_incremental(&base, &mutated, 77 + seed).is_none(),
                "seed {seed}: clean pair flagged"
            );
        }
    }

    #[test]
    fn incremental_oracle_rejects_shape_changing_edits() {
        // A mutation that adds a function changes the partition shape;
        // the oracle must flag the pair as outside its sound class
        // rather than mis-account the reuse.
        let base = ipas_lang::compile(
            "fn f0(n: int) -> int { let s: int = 0;
               for (let i: int = 0; i < n; i = i + 1) { s = s + i * 3; }
               return s; }
             fn main() -> int { output_i(f0(9)); return 0; }",
        )
        .unwrap();
        let mutated = ipas_lang::compile(
            "fn f0(n: int) -> int { let s: int = 0;
               for (let i: int = 0; i < n; i = i + 1) { s = s + i * 3; }
               return s; }
             fn f1(n: int) -> int { return n * 5; }
             fn main() -> int { output_i(f0(9) + f1(2)); return 0; }",
        )
        .unwrap();
        let d = check_incremental(&base, &mutated, 7).expect("shape change must be flagged");
        assert!(d.message.contains("partition shape"), "{}", d.message);
    }

    #[test]
    fn no_panic_accepts_garbage_quietly() {
        for junk in ["", "fn", "fn main( -> int {", "λλλ", "fn @f)(", "42"] {
            assert!(check_no_panic_scil(junk).is_none(), "scil: {junk:?}");
            assert!(check_no_panic_ir(junk).is_none(), "ir: {junk:?}");
        }
    }
}

//! The seeded fuzzing campaign behind `ipas fuzz`.
//!
//! Each case derives its own RNG from the campaign seed (splitmix64
//! over the case index, so cases are independent and any single case
//! can be replayed from `(seed, case)` alone), generates either a SciL
//! program or a raw IR module, and runs the configured oracles. A
//! divergence is immediately minimized with the delta debugger and —
//! when an [`ipas_store::Store`] is reachable via `IPAS_STORE_DIR` —
//! persisted as a [`FuzzRepro`] artifact so the repro outlives the
//! process.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ipas_interp::FaultModel;
use ipas_store::{FingerprintBuilder, FuzzRepro, Store};

use crate::minimize::{minimize_module_with, minimize_text};
use crate::mutate::mutate;
use crate::oracle::{
    check_incremental, check_module_with, check_no_panic_ir, check_no_panic_scil, Divergence,
    OracleKind,
};
use crate::{ir_gen, scil_gen};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of generated cases.
    pub runs: u64,
    /// Campaign seed; `(seed, case)` replays any single case.
    pub seed: u64,
    /// Oracles to run (defaults to all six).
    pub oracles: Vec<OracleKind>,
    /// Pins the engine-diff fault model; `None` draws a fresh model
    /// from the case RNG for every case, so a long campaign sweeps all
    /// of them.
    pub fault_model: Option<FaultModel>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            runs: 200,
            seed: 2016,
            oracles: OracleKind::ALL.to_vec(),
            fault_model: None,
        }
    }
}

/// Draws a fault model from the case RNG (burst widths 2..=8).
fn draw_model(rng: &mut StdRng) -> FaultModel {
    match rng.gen_range(0..6u32) {
        0 => FaultModel::SingleBit,
        1 => FaultModel::MultiBitBurst {
            width: rng.gen_range(2..9),
        },
        2 => FaultModel::StuckValue,
        3 => FaultModel::LoadValue,
        4 => FaultModel::StoreValue,
        _ => FaultModel::BranchFlip,
    }
}

/// One divergence, with its minimized repro.
#[derive(Clone, Debug)]
pub struct FuzzFinding {
    /// The violated oracle.
    pub oracle: OracleKind,
    /// Case index within the campaign.
    pub case: u64,
    /// `"scil"` or `"ir"`.
    pub input_kind: &'static str,
    /// The oracle's report.
    pub divergence: String,
    /// The generated input, verbatim.
    pub input: String,
    /// The minimized input (still divergent on the same oracle).
    pub minimized: String,
    /// Store key of the persisted [`FuzzRepro`], when a store was
    /// reachable.
    pub store_key: Option<String>,
}

/// Campaign summary.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// `(oracle, checks run)` for every configured oracle.
    pub checks: Vec<(OracleKind, u64)>,
    /// All divergences, minimized.
    pub findings: Vec<FuzzFinding>,
}

impl FuzzReport {
    /// Renders the per-oracle tally for the CLI.
    pub fn summary(&self) -> String {
        let mut s = format!("fuzz: {} cases", self.cases);
        for (o, n) in &self.checks {
            s.push_str(&format!("\n  {:<12} {} checks", o.name(), n));
        }
        s.push_str(&format!("\n  findings: {}", self.findings.len()));
        s
    }
}

/// splitmix64: decorrelates per-case seeds from the campaign seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct Campaign {
    config: FuzzConfig,
    store: Option<Store>,
    report: FuzzReport,
}

impl Campaign {
    fn bump(&mut self, oracle: OracleKind) {
        for (o, n) in &mut self.report.checks {
            if *o == oracle {
                *n += 1;
                return;
            }
        }
    }

    fn record(
        &mut self,
        case: u64,
        input_kind: &'static str,
        input: String,
        minimized: String,
        d: Divergence,
    ) {
        let store_key = self.persist(&d, case, input_kind, &input, &minimized);
        self.report.findings.push(FuzzFinding {
            oracle: d.oracle,
            case,
            input_kind,
            divergence: d.message,
            input,
            minimized,
            store_key,
        });
    }

    fn persist(
        &self,
        d: &Divergence,
        case: u64,
        input_kind: &str,
        input: &str,
        minimized: &str,
    ) -> Option<String> {
        let store = self.store.as_ref()?;
        // The artifact codec newline-normalizes text blocks; terminate
        // them here so the payload round-trips byte-exactly.
        let nl = |s: &str| {
            if s.is_empty() || s.ends_with('\n') {
                s.to_string()
            } else {
                format!("{s}\n")
            }
        };
        let repro = FuzzRepro {
            oracle: d.oracle.name().to_string(),
            input_kind: input_kind.to_string(),
            seed: self.config.seed,
            case,
            divergence: nl(&d.message),
            input: nl(input),
            minimized: nl(minimized),
        };
        let fp = FingerprintBuilder::new("fuzz-repro")
            .text("oracle", d.oracle.name())
            .text("input-kind", input_kind)
            .u64("seed", self.config.seed)
            .u64("case", case)
            .text("input", input)
            .finish();
        let key = ipas_store::Key::of(&fp);
        store.put(&key, &repro).ok()?;
        Some(key.as_str().to_string())
    }

    /// Runs every configured module-level oracle on `module`,
    /// minimizing and recording each divergence. The engine-diff
    /// oracle injects under `model`; the others ignore it.
    fn check_module_case(
        &mut self,
        case: u64,
        input_kind: &'static str,
        module: &ipas_ir::Module,
        model: FaultModel,
    ) {
        let oracles: Vec<OracleKind> = self
            .config
            .oracles
            .iter()
            .copied()
            .filter(|o| !matches!(o, OracleKind::NoPanic | OracleKind::Incremental))
            .collect();
        for oracle in oracles {
            self.bump(oracle);
            if let Some(d) = check_module_with(oracle, module, model) {
                let (min_module, _stats) = minimize_module_with(module, oracle, model);
                self.record(case, input_kind, module.to_text(), min_module.to_text(), d);
            }
        }
    }

    /// Mutation-based no-panic case over both frontends.
    fn check_no_panic_case(&mut self, case: u64, rng: &mut StdRng) {
        self.bump(OracleKind::NoPanic);
        let scil = scil_gen::gen_program(rng);
        let mutated = mutate(rng, &scil);
        if let Some(d) = check_no_panic_scil(&mutated) {
            let (min, _stats) = minimize_text(&mutated, &|s| check_no_panic_scil(s).is_some());
            self.record(case, "scil", mutated, min, d);
        }

        let ir_text = ir_gen::gen_module(rng).to_text();
        let mutated = mutate(rng, &ir_text);
        if let Some(d) = check_no_panic_ir(&mutated) {
            let (min, _stats) = minimize_text(&mutated, &|s| check_no_panic_ir(s).is_some());
            self.record(case, "ir", mutated, min, d);
        }
    }

    /// Incremental-vs-full equivalence on a generated (base, mutated)
    /// program pair. Pair findings carry both programs verbatim; the
    /// delta debugger minimizes single inputs, so the pair is its own
    /// "minimized" form.
    fn check_incremental_case(&mut self, case: u64, rng: &mut StdRng) {
        self.bump(OracleKind::Incremental);
        let (base_src, mutated_src) = scil_gen::gen_incremental_pair(rng);
        let campaign_seed: u64 = rng.gen_range(0..u64::MAX);
        let (base, mutated) = match (
            ipas_lang::compile(&base_src),
            ipas_lang::compile(&mutated_src),
        ) {
            (Ok(b), Ok(m)) => (b, m),
            (b, m) => {
                let input = format!("// base\n{base_src}// mutated\n{mutated_src}");
                self.record(
                    case,
                    "scil",
                    input.clone(),
                    input,
                    Divergence {
                        oracle: OracleKind::Incremental,
                        message: format!(
                            "pair generator emitted rejected SciL: {:?} / {:?}",
                            b.err(),
                            m.err()
                        ),
                    },
                );
                return;
            }
        };
        if let Some(d) = check_incremental(&base, &mutated, campaign_seed) {
            let input = format!("// base\n{base_src}// mutated\n{mutated_src}");
            self.record(case, "scil", input.clone(), input, d);
        }
    }
}

/// Runs a fuzzing campaign and returns its report. Deterministic for a
/// given config; persists minimized repros when `IPAS_STORE_DIR` names
/// a store.
pub fn run_fuzz(config: FuzzConfig) -> FuzzReport {
    let store = Store::from_env().ok().flatten();
    let checks = config.oracles.iter().map(|&o| (o, 0)).collect();
    let mut campaign = Campaign {
        config,
        store,
        report: FuzzReport {
            cases: 0,
            checks,
            findings: Vec::new(),
        },
    };

    let want_no_panic = campaign.config.oracles.contains(&OracleKind::NoPanic);
    let want_incremental = campaign.config.oracles.contains(&OracleKind::Incremental);
    let want_modules = campaign
        .config
        .oracles
        .iter()
        .any(|o| !matches!(o, OracleKind::NoPanic | OracleKind::Incremental));

    for case in 0..campaign.config.runs {
        campaign.report.cases += 1;
        let mut rng = StdRng::seed_from_u64(mix(campaign.config.seed ^ mix(case)));
        let model = campaign
            .config
            .fault_model
            .unwrap_or_else(|| draw_model(&mut rng));
        match case % 4 {
            0 if want_modules => {
                let module = ir_gen::gen_module(&mut rng);
                campaign.check_module_case(case, "ir", &module, model);
            }
            1 if want_modules => {
                let src = scil_gen::gen_program(&mut rng);
                match ipas_lang::compile(&src) {
                    Ok(module) => campaign.check_module_case(case, "scil", &module, model),
                    Err(e) => {
                        // The generator promises type-correct output; a
                        // rejection is itself a finding against it.
                        campaign.record(
                            case,
                            "scil",
                            src.clone(),
                            src,
                            Divergence {
                                oracle: OracleKind::NoPanic,
                                message: format!("generator emitted rejected SciL: {e:?}"),
                            },
                        );
                    }
                }
            }
            2 if want_no_panic => {
                campaign.check_no_panic_case(case, &mut rng);
            }
            _ if want_incremental => {
                campaign.check_incremental_case(case, &mut rng);
            }
            _ => {}
        }
    }
    campaign.report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let config = FuzzConfig {
            runs: 30,
            seed: 2016,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(config.clone());
        let b = run_fuzz(config);
        assert_eq!(a.cases, 30);
        assert!(
            a.findings.is_empty(),
            "campaign found unfixed divergences: {:#?}",
            a.findings
                .iter()
                .map(|f| (&f.divergence, &f.minimized))
                .collect::<Vec<_>>()
        );
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn oracle_filter_limits_checks() {
        let report = run_fuzz(FuzzConfig {
            runs: 9,
            seed: 1,
            oracles: vec![OracleKind::Roundtrip],
            fault_model: None,
        });
        assert_eq!(report.checks.len(), 1);
        let (o, n) = report.checks[0];
        assert_eq!(o, OracleKind::Roundtrip);
        assert!(n > 0);
    }
}

//! Byte- and line-level mutators for the no-panic oracle.
//!
//! Starting from a well-formed program (SciL source or printed IR),
//! these mutators produce *almost*-well-formed text: truncations,
//! duplicated or deleted lines, spliced byte ranges, and injected
//! non-ASCII characters. The frontends must reject every such input
//! with a typed, positioned error — never a host panic — which is
//! exactly what [`crate::oracle::OracleKind::NoPanic`] checks.

use rand::rngs::StdRng;
use rand::Rng;

/// Characters the injector splices in: ASCII noise plus multi-byte
/// UTF-8 (the lexer historically panicked on these).
const NOISE: [char; 14] = [
    '@', '#', '$', '\\', '`', '~', '{', ')', ';', 'é', 'λ', '∂', '１', '😀',
];

fn char_boundary_at(s: &str, mut pos: usize) -> usize {
    while pos < s.len() && !s.is_char_boundary(pos) {
        pos += 1;
    }
    pos.min(s.len())
}

/// Applies one random mutation to `src`, always returning valid UTF-8
/// (the corruption is structural, not encoding-level: both frontends
/// take `&str`, so encoding errors cannot even reach them).
fn mutate_once(rng: &mut StdRng, src: &str) -> String {
    match rng.gen_range(0..6u32) {
        0 => {
            // Truncate at a random char boundary.
            let at = char_boundary_at(src, rng.gen_range(0..src.len().max(1)));
            src[..at].to_string()
        }
        1 => {
            // Delete a small span.
            let a = char_boundary_at(src, rng.gen_range(0..src.len().max(1)));
            let b = char_boundary_at(src, (a + rng.gen_range(1..20usize)).min(src.len()));
            format!("{}{}", &src[..a], &src[b..])
        }
        2 => {
            // Insert noise characters.
            let at = char_boundary_at(src, rng.gen_range(0..src.len().max(1)));
            let n = rng.gen_range(1..4usize);
            let mut noise = String::new();
            for _ in 0..n {
                noise.push(NOISE[rng.gen_range(0..NOISE.len())]);
            }
            format!("{}{}{}", &src[..at], noise, &src[at..])
        }
        3 => {
            // Duplicate a random line.
            let lines: Vec<&str> = src.lines().collect();
            if lines.is_empty() {
                return src.to_string();
            }
            let i = rng.gen_range(0..lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            out.extend_from_slice(&lines[..=i]);
            out.push(lines[i]);
            out.extend_from_slice(&lines[i + 1..]);
            out.join("\n")
        }
        4 => {
            // Delete a random line.
            let lines: Vec<&str> = src.lines().collect();
            if lines.len() < 2 {
                return src.to_string();
            }
            let i = rng.gen_range(0..lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len());
            out.extend_from_slice(&lines[..i]);
            out.extend_from_slice(&lines[i + 1..]);
            out.join("\n")
        }
        _ => {
            // Swap two small spans.
            if src.len() < 8 {
                return src.to_string();
            }
            let a = char_boundary_at(src, rng.gen_range(0..src.len() / 2));
            let a2 = char_boundary_at(src, (a + rng.gen_range(1..8usize)).min(src.len()));
            let b = char_boundary_at(src, rng.gen_range(src.len() / 2..src.len()));
            let b2 = char_boundary_at(src, (b + rng.gen_range(1..8usize)).min(src.len()));
            if a2 > b {
                return src.to_string();
            }
            format!(
                "{}{}{}{}{}",
                &src[..a],
                &src[b..b2],
                &src[a2..b],
                &src[a..a2],
                &src[b2..]
            )
        }
    }
}

/// Applies 1–3 stacked random mutations to a well-formed input.
pub fn mutate(rng: &mut StdRng, src: &str) -> String {
    let mut out = src.to_string();
    for _ in 0..rng.gen_range(1..4usize) {
        out = mutate_once(rng, &out);
        if out.is_empty() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutation_is_deterministic_and_utf8_safe() {
        let src = "fn main() -> int {\n  let x: int = 1;\n  return x;\n}\n";
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let ma = mutate(&mut a, src);
            let mb = mutate(&mut b, src);
            assert_eq!(ma, mb);
            // String invariants guarantee UTF-8; just exercise iteration.
            let _ = ma.chars().count();
        }
    }
}

//! Seeded structured generator for SciL source programs.
//!
//! The generator emits programs from a typed statement/expression
//! grammar, tracking every variable's [`LangType`]-like category so the
//! output always passes the checker. Loops use literal trip counts and
//! array indices are kept in bounds (loop counters modulo the literal
//! array length), so every generated program terminates; division uses
//! non-zero literal divisors most of the time but deliberately keeps a
//! small trap-path budget.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;

/// The generator's view of a SciL type.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Ty {
    Int,
    Float,
    Bool,
    /// `[int]` with its literal allocation length.
    ArrInt(i64),
    /// `[float]` with its literal allocation length.
    ArrFloat(i64),
}

struct Scope {
    /// `(name, type)` for every variable visible here.
    vars: Vec<(String, Ty)>,
    next_var: usize,
}

impl Scope {
    fn fresh(&mut self, ty: Ty) -> String {
        let name = format!("v{}", self.next_var);
        self.next_var += 1;
        self.vars.push((name.clone(), ty));
        name
    }

    fn of(&self, want: impl Fn(Ty) -> bool) -> Vec<(String, Ty)> {
        self.vars
            .iter()
            .filter(|(_, t)| want(*t))
            .cloned()
            .collect()
    }
}

struct Gen<'r> {
    rng: &'r mut StdRng,
    out: String,
    indent: usize,
    /// Remaining statement budget for the current function, shared
    /// across nesting so deep blocks cannot explode.
    budget: usize,
    /// Names of loop counters currently in scope (always `>= 0`, so
    /// they are safe modulo operands for in-bounds indexing).
    counters: Vec<String>,
    outputs: usize,
    /// Names and arities of previously generated helper functions
    /// (`(name, n_int_params, returns_float)`), callable from `main`.
    helpers: Vec<(String, usize, bool)>,
}

const INT_LITS: [i64; 8] = [0, 1, 2, 3, 7, 10, 100, 1023];
const FLOAT_LITS: [&str; 7] = ["0.0", "1.0", "0.5", "2.0", "3.25", "1.5e2", "1e10"];
const NZ_DIVISORS: [&str; 5] = ["1", "2", "3", "7", "16"];

impl<'r> Gen<'r> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    // ---- expressions ------------------------------------------------

    fn int_expr(&mut self, scope: &Scope, depth: usize) -> String {
        let vars = scope.of(|t| t == Ty::Int);
        if depth == 0 || self.rng.gen_bool(0.35) {
            return if !vars.is_empty() && self.rng.gen_bool(0.6) {
                vars[self.rng.gen_range(0..vars.len())].0.clone()
            } else {
                INT_LITS[self.rng.gen_range(0..INT_LITS.len())].to_string()
            };
        }
        match self.rng.gen_range(0..7u32) {
            0..=2 => {
                let op = ["+", "-", "*"][self.rng.gen_range(0..3usize)];
                let a = self.int_expr(scope, depth - 1);
                let b = self.int_expr(scope, depth - 1);
                format!("({a} {op} {b})")
            }
            3 => {
                // Division/remainder: usually a literal non-zero
                // divisor; occasionally a live value (trap path).
                let op = if self.rng.gen_bool(0.5) { "/" } else { "%" };
                let a = self.int_expr(scope, depth - 1);
                let b = if self.rng.gen_bool(0.85) {
                    NZ_DIVISORS[self.rng.gen_range(0..NZ_DIVISORS.len())].to_string()
                } else {
                    self.int_expr(scope, depth - 1)
                };
                format!("({a} {op} {b})")
            }
            4 => {
                let a = self.float_expr(scope, depth - 1);
                format!("ftoi({a})")
            }
            5 => {
                let arrs = scope.of(|t| matches!(t, Ty::ArrInt(_)));
                match arrs.into_iter().next() {
                    Some((name, Ty::ArrInt(len))) => {
                        let idx = self.index_expr(len);
                        format!("{name}[{idx}]")
                    }
                    _ => self.int_expr(scope, depth - 1),
                }
            }
            _ => {
                let a = self.int_expr(scope, depth - 1);
                format!("(0 - {a})")
            }
        }
    }

    fn float_expr(&mut self, scope: &Scope, depth: usize) -> String {
        let vars = scope.of(|t| t == Ty::Float);
        if depth == 0 || self.rng.gen_bool(0.35) {
            return if !vars.is_empty() && self.rng.gen_bool(0.6) {
                vars[self.rng.gen_range(0..vars.len())].0.clone()
            } else {
                FLOAT_LITS[self.rng.gen_range(0..FLOAT_LITS.len())].to_string()
            };
        }
        match self.rng.gen_range(0..6u32) {
            0..=1 => {
                let op = ["+", "-", "*", "/"][self.rng.gen_range(0..4usize)];
                let a = self.float_expr(scope, depth - 1);
                let b = self.float_expr(scope, depth - 1);
                format!("({a} {op} {b})")
            }
            2 => {
                let f =
                    ["sqrt", "sin", "cos", "fabs", "floor", "exp"][self.rng.gen_range(0..6usize)];
                let a = self.float_expr(scope, depth - 1);
                format!("{f}({a})")
            }
            3 => {
                let a = self.int_expr(scope, depth - 1);
                format!("itof({a})")
            }
            4 => {
                let arrs = scope.of(|t| matches!(t, Ty::ArrFloat(_)));
                match arrs.into_iter().next() {
                    Some((name, Ty::ArrFloat(len))) => {
                        let idx = self.index_expr(len);
                        format!("{name}[{idx}]")
                    }
                    _ => self.float_expr(scope, depth - 1),
                }
            }
            _ => {
                let a = self.float_expr(scope, depth - 1);
                let b = self.float_expr(scope, depth - 1);
                format!("pow({a}, {b})")
            }
        }
    }

    fn bool_expr(&mut self, scope: &Scope, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return if self.rng.gen_bool(0.5) {
                "true"
            } else {
                "false"
            }
            .to_string();
        }
        match self.rng.gen_range(0..3u32) {
            0 => {
                let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6usize)];
                let a = self.int_expr(scope, depth - 1);
                let b = self.int_expr(scope, depth - 1);
                format!("({a} {op} {b})")
            }
            1 => {
                let op = ["<", "<=", ">", ">="][self.rng.gen_range(0..4usize)];
                let a = self.float_expr(scope, depth - 1);
                let b = self.float_expr(scope, depth - 1);
                format!("({a} {op} {b})")
            }
            _ => {
                let op = if self.rng.gen_bool(0.5) { "&&" } else { "||" };
                let a = self.bool_expr(scope, depth - 1);
                let b = self.bool_expr(scope, depth - 1);
                format!("({a} {op} {b})")
            }
        }
    }

    /// A provably in-bounds index for an array of length `len`: either
    /// a literal, or a non-negative loop counter modulo the length.
    fn index_expr(&mut self, len: i64) -> String {
        if !self.counters.is_empty() && self.rng.gen_bool(0.5) {
            let c = &self.counters[self.rng.gen_range(0..self.counters.len())];
            format!("({c} % {len})")
        } else {
            self.rng.gen_range(0..len).to_string()
        }
    }

    // ---- statements -------------------------------------------------

    fn stmt(&mut self, scope: &mut Scope, depth: usize) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        match self.rng.gen_range(0..12u32) {
            0..=2 => {
                // New typed let.
                match self.rng.gen_range(0..3u32) {
                    0 => {
                        let e = self.int_expr(scope, 2);
                        let n = scope.fresh(Ty::Int);
                        self.line(&format!("let {n}: int = {e};"));
                    }
                    1 => {
                        let e = self.float_expr(scope, 2);
                        let n = scope.fresh(Ty::Float);
                        self.line(&format!("let {n}: float = {e};"));
                    }
                    _ => {
                        let e = self.bool_expr(scope, 2);
                        let n = scope.fresh(Ty::Bool);
                        self.line(&format!("let {n}: bool = {e};"));
                    }
                }
            }
            3 => {
                // Reassign an existing scalar — but never a live loop
                // counter, which must keep marching toward its bound.
                let counters = self.counters.clone();
                let vars = scope.of(|t| t == Ty::Int || t == Ty::Float);
                let vars: Vec<_> = vars
                    .into_iter()
                    .filter(|(n, _)| !counters.contains(n))
                    .collect();
                if let Some((name, ty)) = vars.into_iter().next() {
                    let e = if ty == Ty::Int {
                        self.int_expr(scope, 2)
                    } else {
                        self.float_expr(scope, 2)
                    };
                    self.line(&format!("{name} = {e};"));
                }
            }
            4 => {
                // Array allocation (int or float).
                let len = self.rng.gen_range(1..9i64);
                if self.rng.gen_bool(0.5) {
                    let n = scope.fresh(Ty::ArrInt(len));
                    self.line(&format!("let {n}: [int] = new_int({len});"));
                } else {
                    let n = scope.fresh(Ty::ArrFloat(len));
                    self.line(&format!("let {n}: [float] = new_float({len});"));
                }
            }
            5 => {
                // In-bounds array store.
                let arrs = scope.of(|t| matches!(t, Ty::ArrInt(_) | Ty::ArrFloat(_)));
                if let Some((name, ty)) = arrs.into_iter().next() {
                    let (len, val) = match ty {
                        Ty::ArrInt(len) => (len, self.int_expr(scope, 2)),
                        Ty::ArrFloat(len) => (len, self.float_expr(scope, 2)),
                        _ => unreachable!(),
                    };
                    let idx = self.index_expr(len);
                    self.line(&format!("{name}[{idx}] = {val};"));
                }
            }
            6..=7 if depth > 0 => {
                // If / if-else.
                let cond = self.bool_expr(scope, 2);
                self.line(&format!("if ({cond}) {{"));
                self.indent += 1;
                let mark = scope.vars.len();
                for _ in 0..self.rng.gen_range(1..3usize) {
                    self.stmt(scope, depth - 1);
                }
                scope.vars.truncate(mark);
                self.indent -= 1;
                if self.rng.gen_bool(0.5) {
                    self.line("} else {");
                    self.indent += 1;
                    for _ in 0..self.rng.gen_range(1..3usize) {
                        self.stmt(scope, depth - 1);
                    }
                    scope.vars.truncate(mark);
                    self.indent -= 1;
                }
                self.line("}");
            }
            8 if depth > 0 => {
                // Bounded for loop with a fresh counter.
                let trips = self.rng.gen_range(2..9i64);
                let c = scope.fresh(Ty::Int);
                self.line(&format!(
                    "for (let {c}: int = 0; {c} < {trips}; {c} = {c} + 1) {{"
                ));
                self.counters.push(c);
                self.indent += 1;
                let mark = scope.vars.len();
                for _ in 0..self.rng.gen_range(1..3usize) {
                    self.stmt(scope, depth - 1);
                }
                scope.vars.truncate(mark);
                self.indent -= 1;
                self.counters.pop();
                self.line("}");
                // The counter itself leaves scope with the loop.
                scope.vars.pop();
            }
            9 if depth > 0 => {
                // Bounded while loop over a counter variable.
                let trips = self.rng.gen_range(2..7i64);
                let c = scope.fresh(Ty::Int);
                self.line(&format!("let {c}: int = 0;"));
                self.line(&format!("while ({c} < {trips}) {{"));
                self.counters.push(c.clone());
                self.indent += 1;
                let mark = scope.vars.len();
                for _ in 0..self.rng.gen_range(1..3usize) {
                    self.stmt(scope, depth - 1);
                }
                scope.vars.truncate(mark);
                self.line(&format!("{c} = {c} + 1;"));
                self.indent -= 1;
                self.counters.pop();
                self.line("}");
            }
            10 => {
                // Call a helper for effect/value.
                if let Some((name, arity, is_float)) = self.helpers.first().cloned() {
                    let args: Vec<String> = (0..arity).map(|_| self.int_expr(scope, 1)).collect();
                    let call = format!("{name}({})", args.join(", "));
                    let (n, decl) = if is_float {
                        (scope.fresh(Ty::Float), "float")
                    } else {
                        (scope.fresh(Ty::Int), "int")
                    };
                    self.line(&format!("let {n}: {decl} = {call};"));
                } else {
                    self.emit_output(scope);
                }
            }
            _ => self.emit_output(scope),
        }
    }

    fn emit_output(&mut self, scope: &Scope) {
        if self.outputs >= 8 {
            return;
        }
        self.outputs += 1;
        if self.rng.gen_bool(0.5) {
            let e = self.int_expr(scope, 2);
            self.line(&format!("output_i({e});"));
        } else {
            let e = self.float_expr(scope, 2);
            self.line(&format!("output_f({e});"));
        }
    }

    fn function(&mut self, name: &str, int_params: usize, ret_float: bool, stmts: usize) {
        let params: Vec<String> = (0..int_params).map(|i| format!("p{i}: int")).collect();
        let ret = if ret_float { "float" } else { "int" };
        self.line(&format!("fn {name}({}) -> {ret} {{", params.join(", ")));
        self.indent += 1;
        let mut scope = Scope {
            vars: (0..int_params)
                .map(|i| (format!("p{i}"), Ty::Int))
                .collect(),
            next_var: 0,
        };
        self.budget = stmts;
        while self.budget > 0 {
            self.stmt(&mut scope, 2);
        }
        if name == "main" {
            self.outputs = 0;
            self.emit_output(&scope);
            self.emit_output(&scope);
        }
        let ret_expr = if ret_float {
            self.float_expr(&scope, 2)
        } else {
            self.int_expr(&scope, 2)
        };
        self.line(&format!("return {ret_expr};"));
        self.indent -= 1;
        self.line("}");
        self.out.push('\n');
    }
}

/// Generates one type-correct, terminating SciL program.
///
/// The result always compiles through `ipas_lang::compile` — a
/// rejection is a generator bug, not a finding — and its loops have
/// literal trip counts, so execution retires a bounded number of
/// instructions unless a deliberately generated trap path fires first.
pub fn gen_program(rng: &mut StdRng) -> String {
    let mut g = Gen {
        rng,
        out: String::new(),
        indent: 0,
        budget: 0,
        counters: Vec::new(),
        outputs: 0,
        helpers: Vec::new(),
    };
    let mut header = String::new();
    let _ = writeln!(header, "// seeded fuzz program");
    g.out.push_str(&header);

    if g.rng.gen_bool(0.6) {
        let arity = g.rng.gen_range(0..3usize);
        let ret_float = g.rng.gen_bool(0.5);
        g.function("helper", arity, ret_float, 4);
        g.helpers.push(("helper".to_string(), arity, ret_float));
    }
    g.outputs = 0;
    let stmts = g.rng.gen_range(5..14usize);
    g.function("main", 0, false, stmts);
    g.out
}

/// Generates a multi-function program plus a one-function mutation of
/// it, for the incremental oracle.
///
/// The two programs differ in exactly one function's loop-body
/// constant multiplier, drawn from an odd set: odd constants are units
/// mod 2^64 and the edit never touches a loop bound, so the mutation
/// is count- and shape-preserving — precisely the edit class for which
/// per-section outcome reuse is sound (see `docs/incremental.md`). The
/// base program always partitions into several sections (one body +
/// one loop section per function), so the delta run has unchanged
/// sections to reuse.
pub fn gen_incremental_pair(rng: &mut StdRng) -> (String, String) {
    const MULTIPLIERS: [i64; 6] = [3, 5, 7, 9, 11, 13];
    let nfuncs = rng.gen_range(2..5usize);
    let mut mults: Vec<i64> = (0..nfuncs)
        .map(|_| MULTIPLIERS[rng.gen_range(0..MULTIPLIERS.len())])
        .collect();
    let bounds: Vec<i64> = (0..nfuncs).map(|_| rng.gen_range(8..40i64)).collect();
    let main_bound = rng.gen_range(8..30i64);

    let render = |mults: &[i64]| -> String {
        let mut s = String::from("// incremental fuzz pair\n");
        for (k, m) in mults.iter().enumerate() {
            let _ = writeln!(
                s,
                "fn f{k}(n: int) -> int {{\n    let s: int = 0;\n    \
                 for (let i: int = 0; i < n; i = i + 1) {{ s = s + i * {m}; }}\n    \
                 return s;\n}}"
            );
        }
        s.push_str("fn main() -> int {\n    let acc: int = 0;\n");
        for (k, bound) in bounds.iter().enumerate() {
            let _ = writeln!(s, "    acc = acc + f{k}({bound});");
        }
        let _ = writeln!(
            s,
            "    for (let j: int = 0; j < {main_bound}; j = j + 1) {{ acc = acc + j; }}"
        );
        s.push_str("    output_i(acc);\n    return 0;\n}\n");
        s
    };

    let base = render(&mults);
    // Rotate the victim's multiplier to a *different* member of the
    // set; an unchanged program would make the oracle vacuous.
    let victim = rng.gen_range(0..nfuncs);
    let at = MULTIPLIERS
        .iter()
        .position(|&m| m == mults[victim])
        .expect("multiplier comes from the set");
    mults[victim] = MULTIPLIERS[(at + rng.gen_range(1..MULTIPLIERS.len())) % MULTIPLIERS.len()];
    let mutated = render(&mults);
    (base, mutated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let src = gen_program(&mut rng);
            ipas_lang::compile(&src).unwrap_or_else(|e| {
                panic!("seed {seed}: generator emitted a rejected program: {e:?}\n{src}")
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_program(&mut StdRng::seed_from_u64(7));
        let b = gen_program(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_pairs_compile_and_differ_in_one_function() {
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (base, mutated) = gen_incremental_pair(&mut rng);
            ipas_lang::compile(&base)
                .unwrap_or_else(|e| panic!("seed {seed}: base rejected: {e:?}\n{base}"));
            ipas_lang::compile(&mutated)
                .unwrap_or_else(|e| panic!("seed {seed}: mutated rejected: {e:?}\n{mutated}"));
            assert_ne!(base, mutated, "seed {seed}: mutation was a no-op");
            // Exactly one line moved: the victim function's multiplier.
            let diff = base
                .lines()
                .zip(mutated.lines())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1, "seed {seed}: expected a one-line mutation");
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(
                gen_incremental_pair(&mut rng),
                (base, mutated),
                "seed {seed}: pair generation must be deterministic"
            );
        }
    }

    #[test]
    fn generated_programs_terminate() {
        use ipas_interp::{Machine, RunConfig, RunStatus};
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let src = gen_program(&mut rng);
            let module = ipas_lang::compile(&src).expect("compiles");
            let cfg = RunConfig {
                max_insts: 2_000_000,
                ..RunConfig::default()
            };
            let out = Machine::new(&module).run(&cfg).expect("well-formed");
            assert_ne!(
                out.status,
                RunStatus::Hang,
                "seed {seed}: bounded loops must terminate\n{src}"
            );
        }
    }
}

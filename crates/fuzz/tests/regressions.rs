//! Minimized repros from fuzzing campaigns, checked in as regressions.
//!
//! Every test here started life as a fuzzer finding: the campaign
//! flagged a divergence, the delta debugger shrank it, the underlying
//! bug was fixed, and the minimized input was frozen into this file so
//! the bug class stays dead. Each test names the oracle that caught it.

use ipas_fuzz::oracle::{
    check_duplication, check_engine_diff, check_no_panic_ir, check_no_panic_scil, check_passes,
    check_roundtrip,
};
use ipas_fuzz::{run_fuzz, FuzzConfig};
use ipas_interp::{Machine, RunConfig, RunStatus, Trap};
use ipas_ir::{FunctionBuilder, Intrinsic, Module, Type, Value};

fn run(module: &Module) -> RunStatus {
    Machine::new(module)
        .run(&RunConfig {
            max_insts: 2_000_000,
            ..RunConfig::default()
        })
        .expect("module runs")
        .status
}

/// engine-diff: a `gep` whose byte offset overflows used to wrap in the
/// compiled engine (u64 arithmetic) while the reference engine indexed
/// out of bounds — two different traps, and under injection two
/// different downstream states. Both engines now poison the address and
/// trap `OutOfBounds` identically.
#[test]
fn overflowing_gep_traps_identically_in_both_engines() {
    let mut b = FunctionBuilder::new("main", &[], Type::I64);
    let a = b.alloca(Type::I64, 4);
    let p = b.gep(Type::I64, a, Value::i64(i64::MAX));
    let l = b.load(Type::I64, p);
    b.call_intrinsic(Intrinsic::OutputI64, vec![l]);
    b.ret(Some(Value::i64(0)));
    let mut module = Module::new("gep-overflow-repro");
    module.add_function(b.finish());

    assert_eq!(run(&module), RunStatus::Trapped(Trap::OutOfBounds));
    assert!(check_engine_diff(&module).is_none());
    assert!(check_no_panic_ir(&module.to_text()).is_none());
}

/// no-panic: the MPI array intrinsics computed element addresses with
/// raw `base + 8*i` u64 arithmetic; a poisoned base (here: from an
/// overflowing `gep`) wrapped around and panicked the host on the
/// resulting bogus slice index. They now share `gep_addr` with every
/// other memory path and trap.
#[test]
fn mpi_array_reduction_with_poison_pointer_traps() {
    let mut b = FunctionBuilder::new("main", &[], Type::I64);
    let a = b.alloca(Type::F64, 2);
    let p = b.gep(Type::F64, a, Value::i64(i64::MAX));
    b.call_intrinsic(Intrinsic::MpiAllreduceArrF, vec![p, Value::i64(4)]);
    b.ret(Some(Value::i64(0)));
    let mut module = Module::new("mpi-poison-repro");
    module.add_function(b.finish());

    assert_eq!(run(&module), RunStatus::Trapped(Trap::OutOfBounds));
    assert!(check_engine_diff(&module).is_none());
    assert!(check_no_panic_ir(&module.to_text()).is_none());
}

/// no-panic: minimized mutation-fuzzer repros against the IR parser
/// (stray tokens in function headers, duplicate definitions, truncated
/// bodies) and the SciL lexer (non-ASCII bytes used to slice mid
/// code point when rendering the caret diagnostic).
#[test]
fn frontend_repros_report_errors_instead_of_panicking() {
    for ir in [
        "fn @f)(",
        "fn @f() -> i64 {\nfn @f() -> i64 {",
        "fn @main() -> i64 {\nentry:\n  ret 0\n}\nfn @main() -> i64 {\nentry:\n  ret 1\n}",
        "fn @main() -> i64 {\nentry:\n  %v0 = add i64 %v9999, 1\n  ret %v0\n}",
        "fn @main() -> i64 {\nentry:\n  br missing\n}",
    ] {
        assert!(check_no_panic_ir(ir).is_none(), "ir input: {ir:?}");
    }
    for scil in [
        "fn main() -> int { let é: int = 1; return 0; }",
        "fn main() -> int { λ 😀",
        "fn main() -> int { output_i(１); return 0; }",
    ] {
        assert!(check_no_panic_scil(scil).is_none(), "scil input: {scil:?}");
    }
}

/// no-panic (via `ipas_lang::compile`): `x % 1` and `x - 0` simplify in
/// the same instsimplify round; the replacement map was applied
/// non-transitively, leaving a use of the unlinked intermediate and
/// panicking the frontend's post-optimization verifier. The pass-level
/// repro lives in `ipas_ir`; this is the full-pipeline form the fuzzer
/// actually found.
#[test]
fn same_round_simplification_chain_survives_full_compile() {
    let src = "fn main() -> int {\n\
               \x20   let x: int = mpi_rank();\n\
               \x20   let a: int = x % 1;\n\
               \x20   let b: int = a - 0;\n\
               \x20   output_i(b);\n\
               \x20   return 0;\n\
               }\n";
    assert!(check_no_panic_scil(src).is_none());
    let module = ipas_lang::compile(src).expect("repro compiles cleanly");
    assert!(check_engine_diff(&module).is_none());
}

/// roundtrip: SciL constant folding of `0.0 / 0.0` produces x86's
/// *negative* quiet NaN (`0xfff8…`); the printer spelled every NaN as
/// `NaN`, which re-parsed to the positive canonical one — the round
/// trip silently flipped the sign bit of the output stream. Campaign
/// seed 2016, case 211, minimized.
#[test]
fn negative_nan_constants_survive_the_round_trip() {
    let src = "fn main() -> int {\n\
               \x20   let z: float = 0.0;\n\
               \x20   output_f(z / z);\n\
               \x20   return 0;\n\
               }\n";
    let module = ipas_lang::compile(src).expect("repro compiles");
    assert!(check_roundtrip(&module).is_none());

    let mut b = FunctionBuilder::new("main", &[], Type::I64);
    b.call_intrinsic(
        Intrinsic::OutputF64,
        vec![Value::Const(ipas_ir::Constant::F64Bits(
            0xfff8_0000_0000_0000,
        ))],
    );
    b.ret(Some(Value::i64(0)));
    let mut direct = Module::new("neg-nan-repro");
    direct.add_function(b.finish());
    assert!(check_roundtrip(&direct).is_none());
    assert!(check_engine_diff(&direct).is_none());
}

/// duplication + passes: a loopy, array-heavy program exercising the
/// phi-handling paths of both transforms. Guards the oracle pair used
/// by the campaign against regressions in either transform.
#[test]
fn transforms_are_invisible_on_a_loopy_program() {
    let src = "fn main() -> int {\n\
               \x20   let a: [float] = new_float(8);\n\
               \x20   let acc: float = 0.0;\n\
               \x20   for (let i: int = 0; i < 8; i = i + 1) {\n\
               \x20       a[i] = itof(i) * 1.5;\n\
               \x20       acc = acc + a[i];\n\
               \x20   }\n\
               \x20   output_f(acc);\n\
               \x20   output_i(ftoi(acc));\n\
               \x20   free_arr(a);\n\
               \x20   return 0;\n\
               }\n";
    let module = ipas_lang::compile(src).expect("sample compiles");
    assert!(check_duplication(&module).is_none());
    assert!(check_passes(&module).is_none());
    assert!(check_roundtrip(&module).is_none());
}

/// Bounded smoke campaign: a prefix of the acceptance campaign
/// (`ipas fuzz --runs 500 --seed 2016`) must stay clean. Any finding
/// here is a new bug — minimize it, fix it, and freeze the repro above.
#[test]
fn smoke_campaign_prefix_is_clean() {
    let report = run_fuzz(FuzzConfig {
        runs: 45,
        seed: 2016,
        ..FuzzConfig::default()
    });
    assert_eq!(report.cases, 45);
    assert!(
        report.findings.is_empty(),
        "smoke campaign diverged: {:#?}",
        report
            .findings
            .iter()
            .map(|f| (f.oracle.name(), f.case, &f.divergence, &f.minimized))
            .collect::<Vec<_>>()
    );
}

//! Section partitioning for compositional injection campaigns.
//!
//! A *section* is the unit at which injection results are cached and
//! recombined: each function contributes one "body" section (its blocks
//! outside every natural loop) plus one section per *maximal top-level
//! loop nest* (overlapping natural loops — nested loops, shared
//! headers — are unioned into one nest). Loop detection uses the same
//! back-edge definition as [`crate::loops::LoopInfo`], so section
//! boundaries track exactly the loop-nest boundaries the rest of the
//! pipeline reasons about.
//!
//! Section identities are deterministic: sections are numbered in
//! flattened module order (functions in module order; within a
//! function, the body section first, then nests by first block), and a
//! section's label (`@f`, `@f/loop0`, ...) plus its printed block text
//! (via [`ipas_ir::printer::print_block`]) give it a stable content
//! fingerprint. The golden partition snapshot test in `ipas-faultsim`
//! pins both, because any silent drift would invalidate every cached
//! per-section campaign artifact.

use std::collections::HashMap;

use ipas_ir::dom::DomTree;
use ipas_ir::passmgr::{Analysis, AnalysisManager};
use ipas_ir::{BlockId, FuncId, Function, InstId, Module};

/// One function's blocks grouped into sections (see module docs).
#[derive(Debug, Clone)]
pub struct FuncSections {
    /// Blocks outside every natural loop, in layout order. Empty when
    /// every block of the function sits inside a loop.
    pub body: Vec<BlockId>,
    /// Maximal top-level loop nests, ordered by first block; each
    /// nest's blocks are in layout order.
    pub nests: Vec<Vec<BlockId>>,
}

impl FuncSections {
    /// Computes the section grouping for `func`.
    pub fn compute(func: &Function) -> Self {
        let dt = DomTree::compute(func);
        Self::compute_with(func, &dt)
    }

    /// Computes the section grouping reusing a caller-provided
    /// dominator tree (which must be current for `func`).
    ///
    /// Back edges and natural-loop bodies are found exactly as
    /// [`crate::loops::LoopInfo::compute_with`] finds them; on top of
    /// that, overlapping loop bodies are unioned so each maximal nest
    /// becomes one section.
    pub fn compute_with(func: &Function, dt: &DomTree) -> Self {
        let preds = func.predecessors();
        let n = func.num_blocks();
        // Union-find over per-back-edge loop ids; every block holds the
        // id of some loop containing it (or none).
        let mut parent: Vec<usize> = Vec::new();
        let mut loop_of: Vec<Option<usize>> = vec![None; n];
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }

        for tail in func.block_ids() {
            if !dt.is_reachable(tail) {
                continue;
            }
            for header in func.successors(tail) {
                if !dt.dominates(header, tail) {
                    continue;
                }
                // Natural loop of the back edge: the header plus every
                // block reaching `tail` without passing through it.
                let mut body = vec![false; n];
                body[header.index()] = true;
                let mut stack = vec![tail];
                while let Some(bb) = stack.pop() {
                    if body[bb.index()] {
                        continue;
                    }
                    body[bb.index()] = true;
                    for &p in &preds[bb.index()] {
                        stack.push(p);
                    }
                }
                let id = parent.len();
                parent.push(id);
                for (i, member) in body.iter().enumerate() {
                    if !*member {
                        continue;
                    }
                    if let Some(old) = loop_of[i] {
                        // This block already belongs to another loop:
                        // the two overlap, so they share a nest.
                        let a = find(&mut parent, id);
                        let b = find(&mut parent, old);
                        parent[a.max(b)] = a.min(b);
                    }
                    loop_of[i] = Some(id);
                }
            }
        }

        // Group blocks by nest root, discovering nests in layout order
        // of their first block.
        let mut body = Vec::new();
        let mut nests: Vec<Vec<BlockId>> = Vec::new();
        let mut nest_index: HashMap<usize, usize> = HashMap::new();
        for bb in func.block_ids() {
            match loop_of[bb.index()] {
                None => body.push(bb),
                Some(id) => {
                    let root = find(&mut parent, id);
                    let k = *nest_index.entry(root).or_insert_with(|| {
                        nests.push(Vec::new());
                        nests.len() - 1
                    });
                    nests[k].push(bb);
                }
            }
        }
        FuncSections { body, nests }
    }

    /// Total sections this function contributes (body, when non-empty,
    /// plus one per nest).
    pub fn num_sections(&self) -> usize {
        usize::from(!self.body.is_empty()) + self.nests.len()
    }
}

impl Analysis for FuncSections {
    fn name() -> &'static str {
        "sections"
    }

    fn compute(func: &Function, am: &mut AnalysisManager) -> Self {
        let dt = am.get::<DomTree>(func);
        FuncSections::compute_with(func, &dt)
    }
}

/// One section of a module partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Containing function.
    pub func: FuncId,
    /// The function's name (for labels and reports).
    pub func_name: String,
    /// Stable display label: `@f` for a function body, `@f/loopK` for
    /// its K-th maximal loop nest.
    pub label: String,
    /// The section's blocks, in layout order.
    pub blocks: Vec<BlockId>,
}

/// A whole-module section partition with deterministic section ids
/// (positions in [`SectionPartition::sections`], flattened module
/// order).
#[derive(Debug, Clone)]
pub struct SectionPartition {
    sections: Vec<Section>,
    /// Per function (by id index): linked instruction → section id.
    inst_section: Vec<HashMap<InstId, usize>>,
}

impl SectionPartition {
    /// Partitions every function of `module` into sections.
    pub fn compute(module: &Module) -> Self {
        let mut sections = Vec::new();
        let mut inst_section = Vec::new();
        for (fid, func) in module.functions() {
            let fs = FuncSections::compute(func);
            let mut map = HashMap::new();
            let mut push = |blocks: &[BlockId], label: String, map: &mut HashMap<InstId, usize>| {
                let id = sections.len();
                for &bb in blocks {
                    for &inst in func.block(bb).insts() {
                        map.insert(inst, id);
                    }
                }
                sections.push(Section {
                    func: fid,
                    func_name: func.name().to_string(),
                    label,
                    blocks: blocks.to_vec(),
                });
            };
            if !fs.body.is_empty() {
                push(&fs.body, format!("@{}", func.name()), &mut map);
            }
            for (k, nest) in fs.nests.iter().enumerate() {
                push(nest, format!("@{}/loop{k}", func.name()), &mut map);
            }
            inst_section.push(map);
        }
        SectionPartition {
            sections,
            inst_section,
        }
    }

    /// The sections, indexed by section id.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True for a module with no sections (no functions).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// The section containing instruction `inst` of function `fid`, or
    /// `None` for an unknown site.
    pub fn section_of(&self, fid: FuncId, inst: InstId) -> Option<usize> {
        self.inst_section.get(fid.index())?.get(&inst).copied()
    }

    /// The canonical content text of section `id`: its label followed
    /// by each block printed exactly as in the module's canonical text.
    /// This — not the whole function — is what a section fingerprint
    /// hashes, so an edit inside one loop nest leaves the sibling
    /// sections' fingerprints untouched.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range or `module` is not the module
    /// this partition was computed from.
    pub fn section_text(&self, module: &Module, id: usize) -> String {
        let section = &self.sections[id];
        let func = module.function(section.func);
        let mut out = format!("section {}\n", section.label);
        for &bb in &section.blocks {
            out.push_str(&ipas_ir::printer::print_block(func, bb, Some(module)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_ir::parser::{parse_function, parse_module};

    #[test]
    fn straight_line_function_is_one_body_section() {
        let f = parse_function("fn @f() {\nbb0:\n  br bb1\nbb1:\n  ret\n}\n").unwrap();
        let fs = FuncSections::compute(&f);
        assert_eq!(fs.body.len(), 2);
        assert!(fs.nests.is_empty());
        assert_eq!(fs.num_sections(), 1);
    }

    #[test]
    fn nested_loops_form_one_nest_siblings_two() {
        // bb1..bb4 form an outer loop containing an inner loop
        // (bb2/bb3); they must union into ONE nest.
        let f = parse_function(
            r#"
fn @f(i64) {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb4: %v5]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb5
bb2:
  %v2 = phi i64 [bb1: 0, bb3: %v4]
  %v3 = icmp slt %v2, %arg0
  condbr %v3, bb3, bb4
bb3:
  %v4 = add i64 %v2, 1
  br bb2
bb4:
  %v5 = add i64 %v0, 1
  br bb1
bb5:
  ret
}
"#,
        )
        .unwrap();
        let fs = FuncSections::compute(&f);
        assert_eq!(fs.nests.len(), 1, "nested loops are one maximal nest");
        assert_eq!(fs.nests[0].len(), 4);
        assert_eq!(fs.body.len(), 2, "entry + exit");

        // Two sequential (sibling) loops stay two nests.
        let g = parse_function(
            r#"
fn @g(i64) {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v2]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb3
bb2:
  %v2 = add i64 %v0, 1
  br bb1
bb3:
  br bb4
bb4:
  %v3 = phi i64 [bb3: 0, bb5: %v5]
  %v4 = icmp slt %v3, %arg0
  condbr %v4, bb5, bb6
bb5:
  %v5 = add i64 %v3, 1
  br bb4
bb6:
  ret
}
"#,
        )
        .unwrap();
        let gs = FuncSections::compute(&g);
        assert_eq!(gs.nests.len(), 2, "sibling loops are separate nests");
        assert_eq!(gs.num_sections(), 3);
    }

    #[test]
    fn partition_ids_labels_and_lookup_are_deterministic() {
        let module = parse_module(
            r#"
module "m"

fn @main() -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v3]
  %v1 = phi i64 [bb0: 0, bb2: %v4]
  %v2 = icmp slt %v0, 4
  condbr %v2, bb2, bb3
bb2:
  %v3 = add i64 %v0, 1
  %v4 = add i64 %v1, %v0
  br bb1
bb3:
  ret %v1
}

fn @leaf() -> i64 {
bb0:
  %v0 = add i64 2, 3
  ret %v0
}
"#,
        )
        .unwrap();
        let p = SectionPartition::compute(&module);
        let labels: Vec<&str> = p.sections().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["@main", "@main/loop0", "@leaf"]);

        // Instruction lookup: every instruction of every block maps to
        // the section owning that block; unknown functions map to none.
        for (id, section) in p.sections().iter().enumerate() {
            let func = module.function(section.func);
            for &bb in &section.blocks {
                for &inst in func.block(bb).insts() {
                    assert_eq!(p.section_of(section.func, inst), Some(id));
                }
            }
        }
        assert_eq!(p.section_of(FuncId::new(9), InstId::new(0)), None);

        // Section text renders the label plus the exact printed blocks.
        let text = p.section_text(&module, 1);
        assert!(text.starts_with("section @main/loop0\n"), "{text}");
        assert!(text.contains("icmp slt"), "{text}");
        assert!(
            !text.contains("ret"),
            "exit block leaked into the nest: {text}"
        );
    }
}

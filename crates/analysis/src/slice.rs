//! Forward program slicing.
//!
//! The paper computes a *forward slice* of each injected instruction —
//! the set of instructions influenced by its value — using Weiser's
//! algorithm, and derives features 25–31 from it. Error propagation is
//! exactly forward value flow, so the slice is the static footprint a
//! corrupted value can reach.
//!
//! This implementation follows the SSA data-flow component of Weiser
//! slicing within one function: the slice of `x` is the transitive
//! def-use closure of `x`'s result. Instructions with no result (stores,
//! branches, returns, void calls) are included in the slice when they
//! consume a sliced value, but do not propagate further — memory-carried
//! and inter-procedural flows are cut there (and counted, which is what
//! the slice-composition features measure).

use std::collections::HashSet;

use ipas_ir::{Function, InstId};

use crate::defuse::DefUse;

/// Computes the forward slice of `root` in `func`, including `root`
/// itself. Returns the slice as a set of instruction ids.
pub fn forward_slice(func: &Function, root: InstId) -> HashSet<InstId> {
    let du = DefUse::compute(func);
    forward_slice_with(func, &du, root)
}

/// Like [`forward_slice`] but reuses a precomputed [`DefUse`] (the
/// feature extractor calls this once per instruction of a function).
pub fn forward_slice_with(_func: &Function, du: &DefUse, root: InstId) -> HashSet<InstId> {
    let mut slice: HashSet<InstId> = HashSet::new();
    slice.insert(root);
    let mut work = vec![root];
    while let Some(id) = work.pop() {
        for &user in du.users(id) {
            if slice.insert(user) {
                work.push(user);
            }
        }
    }
    slice
}

/// Summary counts over a slice, matching features 25–31 of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceCounts {
    /// Total instructions in the slice (feature 25).
    pub total: usize,
    /// Loads in the slice (feature 26).
    pub loads: usize,
    /// Stores in the slice (feature 27).
    pub stores: usize,
    /// Calls in the slice (feature 28).
    pub calls: usize,
    /// Binary operations in the slice (feature 29).
    pub binaries: usize,
    /// Stack allocations in the slice (feature 30).
    pub allocas: usize,
    /// Get-pointer (GEP) instructions in the slice (feature 31).
    pub geps: usize,
}

impl SliceCounts {
    /// Tallies the composition of `slice` inside `func`.
    pub fn tally(func: &Function, slice: &HashSet<InstId>) -> Self {
        use ipas_ir::Inst;
        let mut c = SliceCounts {
            total: slice.len(),
            ..SliceCounts::default()
        };
        for &id in slice {
            match func.inst(id) {
                Inst::Load { .. } => c.loads += 1,
                Inst::Store { .. } => c.stores += 1,
                Inst::Call { .. } => c.calls += 1,
                Inst::Binary { .. } => c.binaries += 1,
                Inst::Alloca { .. } => c.allocas += 1,
                Inst::Gep { .. } => c.geps += 1,
                _ => {}
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_ir::parser::parse_function;

    #[test]
    fn slice_follows_value_flow() {
        let f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 1
  %v1 = mul i64 %v0, 2
  %v2 = add i64 %arg0, 5
  %v3 = add i64 %v1, %v2
  ret %v3
}
"#,
        )
        .unwrap();
        let slice = forward_slice(&f, InstId::new(0));
        // v0 -> v1 -> v3 -> ret; v2 is NOT influenced by v0.
        assert!(slice.contains(&InstId::new(0)));
        assert!(slice.contains(&InstId::new(1)));
        assert!(!slice.contains(&InstId::new(2)));
        assert!(slice.contains(&InstId::new(3)));
        assert!(slice.contains(&InstId::new(4))); // the ret
        assert_eq!(slice.len(), 4);
    }

    #[test]
    fn slice_is_cut_at_stores() {
        let f = parse_function(
            r#"
fn @f(ptr) -> i64 {
bb0:
  %v0 = add i64 1, 2
  store i64 %v0, %arg0
  %v1 = load i64, %arg0
  ret %v1
}
"#,
        )
        .unwrap();
        let slice = forward_slice(&f, InstId::new(0));
        // The store consumes the value (in the slice) but the memory
        // round-trip to the load is not followed.
        assert!(slice.contains(&InstId::new(1)));
        assert!(!slice.contains(&InstId::new(2)));
        let counts = SliceCounts::tally(&f, &slice);
        assert_eq!(counts.total, 2);
        assert_eq!(counts.stores, 1);
        assert_eq!(counts.binaries, 1);
        assert_eq!(counts.loads, 0);
    }

    #[test]
    fn slice_through_loop_phi() {
        let f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 0
  br bb1
bb1:
  %v1 = phi i64 [bb0: %v0, bb2: %v3]
  %v2 = icmp slt %v1, 100
  condbr %v2, bb2, bb3
bb2:
  %v3 = add i64 %v1, 1
  br bb1
bb3:
  ret %v1
}
"#,
        )
        .unwrap();
        let slice = forward_slice(&f, InstId::new(0));
        // Everything downstream of the induction seed is influenced.
        for i in [0usize, 2, 3, 4, 5, 7] {
            assert!(slice.contains(&InstId::new(i)), "inst {i} missing");
        }
    }

    #[test]
    fn counts_classify_gep_alloca_call() {
        let f = parse_function(
            r#"
fn @f() -> i64 {
bb0:
  %v0 = add i64 2, 3
  %v1 = alloca i64, 1
  %v2 = gep i64 %v1, %v0
  %v3 = sitofp f64 %v0
  %v4 = call sqrt(%v3) -> f64
  %v5 = fptosi i64 %v4
  ret %v5
}
"#,
        )
        .unwrap();
        let slice = forward_slice(&f, InstId::new(0));
        let counts = SliceCounts::tally(&f, &slice);
        assert_eq!(counts.geps, 1);
        assert_eq!(counts.calls, 1);
        assert_eq!(counts.allocas, 0); // alloca is not downstream of v0
        assert_eq!(counts.binaries, 1);
    }
}

//! Natural-loop detection.
//!
//! A back edge is a CFG edge `t -> h` where `h` dominates `t`; the
//! natural loop of the edge is `h` plus every block that can reach `t`
//! without passing through `h`. Feature 17 of the paper's Table 1 ("basic
//! block is within a loop") is membership in any natural loop.

use ipas_ir::dom::DomTree;
use ipas_ir::passmgr::{Analysis, AnalysisManager};
use ipas_ir::{BlockId, Function};

/// Per-block loop membership for one function.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    in_loop: Vec<bool>,
    num_back_edges: usize,
}

impl LoopInfo {
    /// Computes loop membership for `func`.
    pub fn compute(func: &Function) -> Self {
        let dt = DomTree::compute(func);
        Self::compute_with(func, &dt)
    }

    /// Computes loop membership reusing a caller-provided dominator
    /// tree (which must be current for `func`). The pass manager's
    /// [`ipas_ir::passmgr::AnalysisManager`] uses this so loop info
    /// shares the cached tree instead of building its own.
    pub fn compute_with(func: &Function, dt: &DomTree) -> Self {
        let preds = func.predecessors();
        let n = func.num_blocks();
        let mut in_loop = vec![false; n];
        let mut num_back_edges = 0;

        for tail in func.block_ids() {
            if !dt.is_reachable(tail) {
                continue;
            }
            for header in func.successors(tail) {
                if !dt.dominates(header, tail) {
                    continue;
                }
                num_back_edges += 1;
                // Natural loop of the back edge: the header plus every
                // block reaching `tail` without passing through the
                // header (reverse DFS from the tail, cut at the header).
                let mut body = vec![false; n];
                body[header.index()] = true;
                let mut stack = vec![tail];
                while let Some(bb) = stack.pop() {
                    if body[bb.index()] {
                        continue;
                    }
                    body[bb.index()] = true;
                    for &p in &preds[bb.index()] {
                        stack.push(p);
                    }
                }
                for (i, member) in body.iter().enumerate() {
                    if *member {
                        in_loop[i] = true;
                    }
                }
            }
        }
        LoopInfo {
            in_loop,
            num_back_edges,
        }
    }

    /// Returns `true` if `bb` belongs to any natural loop.
    pub fn is_in_loop(&self, bb: BlockId) -> bool {
        self.in_loop[bb.index()]
    }

    /// Number of back edges found (an upper bound on loop count).
    pub fn num_back_edges(&self) -> usize {
        self.num_back_edges
    }
}

impl Analysis for LoopInfo {
    fn name() -> &'static str {
        "loops"
    }

    fn compute(func: &Function, am: &mut AnalysisManager) -> Self {
        let dt = am.get::<DomTree>(func);
        LoopInfo::compute_with(func, &dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_ir::parser::parse_function;

    #[test]
    fn analysis_manager_shares_the_domtree() {
        let f = parse_function(
            r#"
fn @f() {
bb0:
  br bb1
bb1:
  ret
}
"#,
        )
        .unwrap();
        let mut am = AnalysisManager::new();
        let before = DomTree::computations();
        let li = am.get::<LoopInfo>(&f);
        assert!(!li.is_in_loop(BlockId::new(0)));
        // Loop info pulled the dominator tree through the manager: one
        // compute total, and both analyses are now cached.
        assert_eq!(DomTree::computations() - before, 1);
        assert!(am.is_cached::<DomTree>());
        assert!(am.is_cached::<LoopInfo>());
        am.get::<LoopInfo>(&f);
        assert_eq!(DomTree::computations() - before, 1);
    }

    #[test]
    fn simple_while_loop() {
        let f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb2: %v2]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb3
bb2:
  %v2 = add i64 %v0, 1
  br bb1
bb3:
  ret %v0
}
"#,
        )
        .unwrap();
        let li = LoopInfo::compute(&f);
        let bbs: Vec<BlockId> = f.block_ids().collect();
        assert!(!li.is_in_loop(bbs[0]), "entry is outside the loop");
        assert!(li.is_in_loop(bbs[1]), "header is in the loop");
        assert!(li.is_in_loop(bbs[2]), "body is in the loop");
        assert!(!li.is_in_loop(bbs[3]), "exit is outside the loop");
        assert_eq!(li.num_back_edges(), 1);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = parse_function(
            r#"
fn @f() {
bb0:
  br bb1
bb1:
  ret
}
"#,
        )
        .unwrap();
        let li = LoopInfo::compute(&f);
        assert!(!li.is_in_loop(BlockId::new(0)));
        assert!(!li.is_in_loop(BlockId::new(1)));
        assert_eq!(li.num_back_edges(), 0);
    }

    #[test]
    fn nested_loops_mark_all_members() {
        let f = parse_function(
            r#"
fn @f(i64) {
bb0:
  br bb1
bb1:
  %v0 = phi i64 [bb0: 0, bb4: %v5]
  %v1 = icmp slt %v0, %arg0
  condbr %v1, bb2, bb5
bb2:
  %v2 = phi i64 [bb1: 0, bb3: %v4]
  %v3 = icmp slt %v2, %arg0
  condbr %v3, bb3, bb4
bb3:
  %v4 = add i64 %v2, 1
  br bb2
bb4:
  %v5 = add i64 %v0, 1
  br bb1
bb5:
  ret
}
"#,
        )
        .unwrap();
        let li = LoopInfo::compute(&f);
        for i in 1..=4 {
            assert!(li.is_in_loop(BlockId::new(i)), "bb{i} should be in a loop");
        }
        assert!(!li.is_in_loop(BlockId::new(0)));
        assert!(!li.is_in_loop(BlockId::new(5)));
        assert_eq!(li.num_back_edges(), 2);
    }

    #[test]
    fn self_loop() {
        let f = parse_function(
            r#"
fn @f() {
bb0:
  br bb1
bb1:
  %v0 = icmp eq 1, 1
  condbr %v0, bb1, bb2
bb2:
  ret
}
"#,
        )
        .unwrap();
        let li = LoopInfo::compute(&f);
        assert!(li.is_in_loop(BlockId::new(1)));
        assert!(!li.is_in_loop(BlockId::new(0)));
    }
}

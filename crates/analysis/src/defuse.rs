//! Def-use chains over a function's SSA values.

use std::collections::HashMap;

use ipas_ir::passmgr::{Analysis, AnalysisManager};
use ipas_ir::{Function, InstId, Value};

/// Def-use information for one function: for every instruction that
/// produces a value, the list of instructions that consume it.
///
/// Users are reported in deterministic order (block layout order, then
/// intra-block position). An instruction using a value twice (e.g.
/// `mul %v0, %v0`) appears once per textual use.
#[derive(Debug, Clone)]
pub struct DefUse {
    users: HashMap<InstId, Vec<InstId>>,
    param_users: Vec<Vec<InstId>>,
}

impl DefUse {
    /// Computes def-use chains for `func` (linked instructions only).
    pub fn compute(func: &Function) -> Self {
        let mut users: HashMap<InstId, Vec<InstId>> = HashMap::new();
        let mut param_users: Vec<Vec<InstId>> = vec![Vec::new(); func.params().len()];
        for bb in func.block_ids() {
            for &id in func.block(bb).insts() {
                func.inst(id).for_each_operand(|v| match v {
                    Value::Inst(def) => users.entry(def).or_default().push(id),
                    Value::Param(n) => param_users[n as usize].push(id),
                    Value::Const(_) => {}
                });
            }
        }
        DefUse { users, param_users }
    }

    /// Instructions that use the result of `def`.
    pub fn users(&self, def: InstId) -> &[InstId] {
        self.users.get(&def).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Instructions that use parameter `n`.
    pub fn param_users(&self, n: u32) -> &[InstId] {
        self.param_users
            .get(n as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of uses of `def`'s result.
    pub fn num_uses(&self, def: InstId) -> usize {
        self.users(def).len()
    }
}

impl Analysis for DefUse {
    fn name() -> &'static str {
        "defuse"
    }

    fn compute(func: &Function, _am: &mut AnalysisManager) -> Self {
        DefUse::compute(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_ir::parser::parse_function;

    #[test]
    fn chains_follow_operands() {
        let f = parse_function(
            r#"
fn @f(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 1
  %v1 = mul i64 %v0, %v0
  %v2 = add i64 %v1, %arg0
  ret %v2
}
"#,
        )
        .unwrap();
        let du = DefUse::compute(&f);
        let v0 = InstId::new(0);
        let v1 = InstId::new(1);
        let v2 = InstId::new(2);
        let ret = InstId::new(3);
        assert_eq!(du.users(v0), &[v1, v1]); // used twice by the mul
        assert_eq!(du.users(v1), &[v2]);
        assert_eq!(du.users(v2), &[ret]);
        assert_eq!(du.num_uses(v2), 1);
        assert_eq!(du.param_users(0), &[v0, v2]);
    }

    #[test]
    fn unused_results_have_no_users() {
        let f = parse_function(
            r#"
fn @f() -> i64 {
bb0:
  %v0 = add i64 1, 2
  %v1 = add i64 3, 4
  ret %v1
}
"#,
        )
        .unwrap();
        let du = DefUse::compute(&f);
        assert!(du.users(InstId::new(0)).is_empty());
    }
}

//! The 31-feature instruction characterization of Table 1.
//!
//! Features are grouped exactly as in the paper: instruction properties
//! (1–12), basic-block properties (13–19), function properties (20–24),
//! and forward-slice composition (25–31). Feature 8 ("is atomic
//! read/write") is retained for fidelity but is always 0 — the IR has no
//! atomics because the workloads are MPI (not shared-memory) codes.

use std::collections::HashMap;

use ipas_ir::inst::Callee;
use ipas_ir::{BlockId, FuncId, Function, Inst, InstId, Module};

use crate::defuse::DefUse;
use crate::loops::LoopInfo;
use crate::slice::{forward_slice_with, SliceCounts};

/// Number of features per instruction.
pub const NUM_FEATURES: usize = 31;

/// Version of the feature schema (the set, order, and semantics of the
/// [`Feature`] columns). Artifact-store fingerprints of anything derived
/// from feature vectors include this number, so changing how features
/// are computed invalidates cached training sets and models instead of
/// silently reusing rows extracted under the old definition.
pub const FEATURE_SCHEMA_VERSION: u32 = 1;

/// Names of the 31 features of Table 1, indexed by [`Feature`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Feature {
    /// 1 `[Bool]` is binary operation.
    IsBinaryOp = 0,
    /// 2 `[Bool]` is add or sub operation.
    IsAddSub,
    /// 3 `[Bool]` is multiplication or division operation.
    IsMulDiv,
    /// 4 `[Bool]` is division remainder operation.
    IsRem,
    /// 5 `[Bool]` is logical operation.
    IsLogical,
    /// 6 `[Bool]` is call instruction.
    IsCall,
    /// 7 `[Bool]` is comparison instruction.
    IsCmp,
    /// 8 `[Bool]` is atomic read/write instruction (always 0 here).
    IsAtomic,
    /// 9 `[Bool]` is get-pointer instruction.
    IsGep,
    /// 10 `[Bool]` is stack-allocation instruction.
    IsAlloca,
    /// 11 `[Bool]` is cast instruction.
    IsCast,
    /// 12 `[Int]` bytes in the instruction's result.
    ResultBytes,
    /// 13 `[Int]` number of remaining instructions in the basic block.
    RemainingInBlock,
    /// 14 `[Int]` size of the basic block.
    BlockSize,
    /// 15 `[Int]` number of successor basic blocks.
    NumSuccessors,
    /// 16 `[Int]` sum of basic-block sizes of successors.
    SumSuccessorSizes,
    /// 17 `[Bool]` basic block is within a loop.
    InLoop,
    /// 18 `[Bool]` block has a PHI instruction.
    HasPhi,
    /// 19 `[Bool]` block terminator is a branch instruction.
    TerminatorIsBranch,
    /// 20 `[Int]` remaining instructions to reach a return.
    DistanceToReturn,
    /// 21 `[Int]` number of instructions in the function.
    FuncInsts,
    /// 22 `[Int]` number of basic blocks in the function.
    FuncBlocks,
    /// 23 `[Int]` number of future function calls.
    FutureCalls,
    /// 24 `[Bool]` the function returns a value.
    ReturnsValue,
    /// 25 `[Int]` number of instructions in the forward slice.
    SliceTotal,
    /// 26 `[Int]` number of loads in the slice.
    SliceLoads,
    /// 27 `[Int]` number of stores in the slice.
    SliceStores,
    /// 28 `[Int]` number of function calls in the slice.
    SliceCalls,
    /// 29 `[Int]` number of binary operations in the slice.
    SliceBinaries,
    /// 30 `[Int]` number of stack allocations in the slice.
    SliceAllocas,
    /// 31 `[Int]` number of get-pointer instructions in the slice.
    SliceGeps,
}

impl Feature {
    /// All features, in Table 1 order.
    pub const ALL: [Feature; NUM_FEATURES] = [
        Feature::IsBinaryOp,
        Feature::IsAddSub,
        Feature::IsMulDiv,
        Feature::IsRem,
        Feature::IsLogical,
        Feature::IsCall,
        Feature::IsCmp,
        Feature::IsAtomic,
        Feature::IsGep,
        Feature::IsAlloca,
        Feature::IsCast,
        Feature::ResultBytes,
        Feature::RemainingInBlock,
        Feature::BlockSize,
        Feature::NumSuccessors,
        Feature::SumSuccessorSizes,
        Feature::InLoop,
        Feature::HasPhi,
        Feature::TerminatorIsBranch,
        Feature::DistanceToReturn,
        Feature::FuncInsts,
        Feature::FuncBlocks,
        Feature::FutureCalls,
        Feature::ReturnsValue,
        Feature::SliceTotal,
        Feature::SliceLoads,
        Feature::SliceStores,
        Feature::SliceCalls,
        Feature::SliceBinaries,
        Feature::SliceAllocas,
        Feature::SliceGeps,
    ];

    /// A short machine-readable name (used in dataset dumps).
    pub fn name(self) -> &'static str {
        match self {
            Feature::IsBinaryOp => "is_binary_op",
            Feature::IsAddSub => "is_add_sub",
            Feature::IsMulDiv => "is_mul_div",
            Feature::IsRem => "is_rem",
            Feature::IsLogical => "is_logical",
            Feature::IsCall => "is_call",
            Feature::IsCmp => "is_cmp",
            Feature::IsAtomic => "is_atomic",
            Feature::IsGep => "is_gep",
            Feature::IsAlloca => "is_alloca",
            Feature::IsCast => "is_cast",
            Feature::ResultBytes => "result_bytes",
            Feature::RemainingInBlock => "remaining_in_block",
            Feature::BlockSize => "block_size",
            Feature::NumSuccessors => "num_successors",
            Feature::SumSuccessorSizes => "sum_successor_sizes",
            Feature::InLoop => "in_loop",
            Feature::HasPhi => "has_phi",
            Feature::TerminatorIsBranch => "terminator_is_branch",
            Feature::DistanceToReturn => "distance_to_return",
            Feature::FuncInsts => "func_insts",
            Feature::FuncBlocks => "func_blocks",
            Feature::FutureCalls => "future_calls",
            Feature::ReturnsValue => "returns_value",
            Feature::SliceTotal => "slice_total",
            Feature::SliceLoads => "slice_loads",
            Feature::SliceStores => "slice_stores",
            Feature::SliceCalls => "slice_calls",
            Feature::SliceBinaries => "slice_binaries",
            Feature::SliceAllocas => "slice_allocas",
            Feature::SliceGeps => "slice_geps",
        }
    }
}

/// A dense 31-entry feature vector for one instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureVector {
    values: [f64; NUM_FEATURES],
}

impl FeatureVector {
    /// Creates a vector from raw values.
    pub fn from_values(values: [f64; NUM_FEATURES]) -> Self {
        FeatureVector { values }
    }

    /// Reads one feature.
    pub fn get(&self, f: Feature) -> f64 {
        self.values[f as usize]
    }

    /// The raw values in Table 1 order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// Per-function context cached by the extractor.
struct FuncCtx {
    defuse: DefUse,
    loops: LoopInfo,
    /// Position of each linked instruction: (block, index in block).
    positions: HashMap<InstId, (BlockId, usize)>,
    /// Minimal dynamic instructions from the *start* of each block to
    /// reach (and include) a `ret`; `u64::MAX / 2` when unreachable.
    dist_from_start: Vec<u64>,
    /// Total calls in blocks reachable from each block's successors
    /// (union over successors, each block counted once).
    future_calls_after_block: Vec<u64>,
    func_insts: u64,
}

const UNREACHABLE_DIST: u64 = u64::MAX / 2;

impl FuncCtx {
    fn build(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut positions = HashMap::new();
        let mut calls_in_block = vec![0u64; n];
        for bb in func.block_ids() {
            for (i, &id) in func.block(bb).insts().iter().enumerate() {
                positions.insert(id, (bb, i));
                if matches!(func.inst(id), Inst::Call { .. }) {
                    calls_in_block[bb.index()] += 1;
                }
            }
        }

        // Bellman–Ford (reverse) for distance-to-return.
        let mut dist = vec![UNREACHABLE_DIST; n];
        for bb in func.block_ids() {
            if matches!(
                func.block(bb).terminator().map(|t| func.inst(t)),
                Some(Inst::Ret { .. })
            ) {
                dist[bb.index()] = func.block(bb).len() as u64;
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for bb in func.block_ids() {
                let succs = func.successors(bb);
                if succs.is_empty() {
                    continue;
                }
                let best = succs
                    .iter()
                    .map(|s| dist[s.index()])
                    .min()
                    .unwrap_or(UNREACHABLE_DIST);
                if best >= UNREACHABLE_DIST {
                    continue;
                }
                let cand = func.block(bb).len() as u64 + best;
                if cand < dist[bb.index()] {
                    dist[bb.index()] = cand;
                    changed = true;
                }
            }
        }

        // Reachability closure for future-call counting.
        let mut future_calls_after_block = vec![0u64; n];
        for bb in func.block_ids() {
            let mut seen = vec![false; n];
            let mut stack: Vec<BlockId> = func.successors(bb);
            let mut total = 0u64;
            while let Some(s) = stack.pop() {
                if seen[s.index()] {
                    continue;
                }
                seen[s.index()] = true;
                total += calls_in_block[s.index()];
                for t in func.successors(s) {
                    stack.push(t);
                }
            }
            future_calls_after_block[bb.index()] = total;
        }

        FuncCtx {
            defuse: DefUse::compute(func),
            loops: LoopInfo::compute(func),
            positions,
            dist_from_start: dist,
            future_calls_after_block,
            func_insts: func.num_linked_insts() as u64,
        }
    }
}

/// Extracts [`FeatureVector`]s for instructions of a module.
///
/// Construction precomputes per-function analyses (def-use chains, loop
/// membership, distances), so extracting every instruction of a function
/// is linear in practice apart from slice computation.
pub struct FeatureExtractor<'m> {
    module: &'m Module,
    ctxs: Vec<FuncCtx>,
}

impl<'m> FeatureExtractor<'m> {
    /// Builds an extractor over `module`.
    pub fn new(module: &'m Module) -> Self {
        let ctxs = module.functions().map(|(_, f)| FuncCtx::build(f)).collect();
        FeatureExtractor { module, ctxs }
    }

    /// Extracts the feature vector of instruction `inst` in function
    /// `fid`.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not linked into a block of `fid`.
    pub fn extract(&self, fid: FuncId, inst: InstId) -> FeatureVector {
        let func = self.module.function(fid);
        let ctx = &self.ctxs[fid.index()];
        let (bb, pos) = *ctx
            .positions
            .get(&inst)
            .unwrap_or_else(|| panic!("instruction {inst} is not linked in `{}`", func.name()));
        let block = func.block(bb);
        let i = func.inst(inst);

        let mut v = [0.0f64; NUM_FEATURES];
        let mut set = |f: Feature, x: f64| v[f as usize] = x;
        let b = |x: bool| x as u8 as f64;

        // --- Instruction category (1–12). -------------------------------
        if let Inst::Binary { op, .. } = i {
            set(Feature::IsBinaryOp, 1.0);
            set(Feature::IsAddSub, b(op.is_add_sub()));
            set(Feature::IsMulDiv, b(op.is_mul_div()));
            set(Feature::IsRem, b(op.is_rem()));
            set(Feature::IsLogical, b(op.is_logical()));
        }
        set(Feature::IsCall, b(matches!(i, Inst::Call { .. })));
        set(
            Feature::IsCmp,
            b(matches!(i, Inst::Icmp { .. } | Inst::Fcmp { .. })),
        );
        // Feature 8 (atomics): always 0 — see the module docs.
        set(Feature::IsGep, b(matches!(i, Inst::Gep { .. })));
        set(Feature::IsAlloca, b(matches!(i, Inst::Alloca { .. })));
        set(Feature::IsCast, b(matches!(i, Inst::Cast { .. })));
        set(Feature::ResultBytes, i.result_type().byte_size() as f64);

        // --- Basic block (13–19). ----------------------------------------
        let remaining = block.len() - pos - 1;
        set(Feature::RemainingInBlock, remaining as f64);
        set(Feature::BlockSize, block.len() as f64);
        let succs = func.successors(bb);
        set(Feature::NumSuccessors, succs.len() as f64);
        let succ_sizes: usize = succs.iter().map(|s| func.block(*s).len()).sum();
        set(Feature::SumSuccessorSizes, succ_sizes as f64);
        set(Feature::InLoop, b(ctx.loops.is_in_loop(bb)));
        let has_phi = block.insts().iter().any(|&x| func.inst(x).is_phi());
        set(Feature::HasPhi, b(has_phi));
        let term_is_branch = matches!(
            block.terminator().map(|t| func.inst(t)),
            Some(Inst::Br { .. }) | Some(Inst::CondBr { .. })
        );
        set(Feature::TerminatorIsBranch, b(term_is_branch));

        // --- Function (20–24). --------------------------------------------
        let term = block.terminator().map(|t| func.inst(t));
        let dist = if matches!(term, Some(Inst::Ret { .. })) {
            remaining as u64
        } else {
            let best = succs
                .iter()
                .map(|s| ctx.dist_from_start[s.index()])
                .min()
                .unwrap_or(UNREACHABLE_DIST);
            if best >= UNREACHABLE_DIST {
                // No path to a return: saturate at twice the function size.
                ctx.func_insts * 2
            } else {
                remaining as u64 + best
            }
        };
        set(Feature::DistanceToReturn, dist as f64);
        set(Feature::FuncInsts, ctx.func_insts as f64);
        set(Feature::FuncBlocks, func.num_blocks() as f64);
        let calls_after_here: u64 = block.insts()[pos + 1..]
            .iter()
            .filter(|&&x| matches!(func.inst(x), Inst::Call { .. }))
            .count() as u64;
        set(
            Feature::FutureCalls,
            (calls_after_here + ctx.future_calls_after_block[bb.index()]) as f64,
        );
        set(
            Feature::ReturnsValue,
            b(func.return_type() != ipas_ir::Type::Void),
        );

        // --- Forward slice (25–31). ----------------------------------------
        let slice = forward_slice_with(func, &ctx.defuse, inst);
        let counts = SliceCounts::tally(func, &slice);
        set(Feature::SliceTotal, counts.total as f64);
        set(Feature::SliceLoads, counts.loads as f64);
        set(Feature::SliceStores, counts.stores as f64);
        set(Feature::SliceCalls, counts.calls as f64);
        set(Feature::SliceBinaries, counts.binaries as f64);
        set(Feature::SliceAllocas, counts.allocas as f64);
        set(Feature::SliceGeps, counts.geps as f64);

        FeatureVector { values: v }
    }

    /// Extracts feature vectors for every linked instruction of `fid`,
    /// in block layout order.
    pub fn extract_all(&self, fid: FuncId) -> Vec<(InstId, FeatureVector)> {
        let func = self.module.function(fid);
        let mut out = Vec::with_capacity(func.num_linked_insts());
        for bb in func.block_ids() {
            for &id in func.block(bb).insts() {
                out.push((id, self.extract(fid, id)));
            }
        }
        out
    }

    /// The module this extractor reads.
    pub fn module(&self) -> &Module {
        self.module
    }
}

// Count user-function vs intrinsic calls identically: both are "call
// instructions" at the IR level, as in LLVM (where libm calls are calls).
#[allow(dead_code)]
fn is_user_call(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Call {
            callee: Callee::Func(_),
            ..
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipas_ir::parser::parse_module;

    fn module_and_extractor(src: &str) -> (Module, Vec<(InstId, FeatureVector)>) {
        let module = parse_module(src).unwrap();
        let extractor = FeatureExtractor::new(&module);
        let (fid, _) = module.functions().next().unwrap();
        let all = extractor.extract_all(fid);
        (module, all)
    }

    const LOOP_SRC: &str = r#"
fn @f(i64) -> i64 {
bb0:
  %v0 = add i64 %arg0, 1
  br bb1
bb1:
  %v1 = phi i64 [bb0: 0, bb2: %v3]
  %v2 = icmp slt %v1, %v0
  condbr %v2, bb2, bb3
bb2:
  %v3 = add i64 %v1, 1
  br bb1
bb3:
  %v4 = mul i64 %v1, 2
  ret %v4
}
"#;

    #[test]
    fn instruction_category_features() {
        let (_, all) = module_and_extractor(LOOP_SRC);
        let fv_add = &all[0].1; // %v0 add
        assert_eq!(fv_add.get(Feature::IsBinaryOp), 1.0);
        assert_eq!(fv_add.get(Feature::IsAddSub), 1.0);
        assert_eq!(fv_add.get(Feature::IsMulDiv), 0.0);
        assert_eq!(fv_add.get(Feature::ResultBytes), 8.0);
        let fv_icmp = &all[3].1; // %v2 icmp
        assert_eq!(fv_icmp.get(Feature::IsCmp), 1.0);
        assert_eq!(fv_icmp.get(Feature::IsBinaryOp), 0.0);
        assert_eq!(fv_icmp.get(Feature::ResultBytes), 1.0);
    }

    #[test]
    fn block_features() {
        let (_, all) = module_and_extractor(LOOP_SRC);
        let fv_add = &all[0].1; // in bb0: [add, br]
        assert_eq!(fv_add.get(Feature::BlockSize), 2.0);
        assert_eq!(fv_add.get(Feature::RemainingInBlock), 1.0);
        assert_eq!(fv_add.get(Feature::NumSuccessors), 1.0);
        // bb1 has 3 insts.
        assert_eq!(fv_add.get(Feature::SumSuccessorSizes), 3.0);
        assert_eq!(fv_add.get(Feature::InLoop), 0.0);
        assert_eq!(fv_add.get(Feature::TerminatorIsBranch), 1.0);

        let fv_body_add = &all[5].1; // %v3 in bb2
        assert_eq!(fv_body_add.get(Feature::InLoop), 1.0);

        let fv_phi_block_icmp = &all[3].1; // icmp in bb1 (has phi)
        assert_eq!(fv_phi_block_icmp.get(Feature::HasPhi), 1.0);
    }

    #[test]
    fn function_features() {
        let (_, all) = module_and_extractor(LOOP_SRC);
        let fv = &all[0].1;
        assert_eq!(fv.get(Feature::FuncInsts), 9.0);
        assert_eq!(fv.get(Feature::FuncBlocks), 4.0);
        assert_eq!(fv.get(Feature::ReturnsValue), 1.0);
        // From %v4 (in bb3: [mul, ret]): one inst remains (the ret).
        let fv_mul = &all[7].1;
        assert_eq!(fv_mul.get(Feature::DistanceToReturn), 1.0);
        // From %v0 in bb0: shortest path br(1) -> bb1 (3) -> bb3 (2) = 6.
        assert_eq!(fv.get(Feature::DistanceToReturn), 6.0);
    }

    #[test]
    fn future_calls_counts_downstream() {
        let src = r#"
fn @main() -> f64 {
bb0:
  %v0 = call sqrt(2.0) -> f64
  %v1 = fadd f64 %v0, 1.0
  %v2 = call sqrt(%v1) -> f64
  br bb1
bb1:
  %v3 = call sqrt(%v2) -> f64
  ret %v3
}
"#;
        let (_, all) = module_and_extractor(src);
        let fv_first_call = &all[0].1;
        // After %v0: one call later in bb0 + one call in bb1.
        assert_eq!(fv_first_call.get(Feature::FutureCalls), 2.0);
        assert_eq!(fv_first_call.get(Feature::IsCall), 1.0);
        let fv_fadd = &all[1].1;
        assert_eq!(fv_fadd.get(Feature::FutureCalls), 2.0);
    }

    #[test]
    fn slice_features_flow_downstream() {
        let (_, all) = module_and_extractor(LOOP_SRC);
        let fv_add = &all[0].1; // %v0 feeds the loop bound comparison
        assert!(fv_add.get(Feature::SliceTotal) >= 3.0);
        let fv_final_mul = &all[7].1; // %v4 only feeds the ret
        assert_eq!(fv_final_mul.get(Feature::SliceTotal), 2.0);
        assert_eq!(fv_final_mul.get(Feature::SliceBinaries), 1.0);
    }

    #[test]
    fn atomics_feature_is_zero() {
        let (_, all) = module_and_extractor(LOOP_SRC);
        for (_, fv) in &all {
            assert_eq!(fv.get(Feature::IsAtomic), 0.0);
        }
    }

    #[test]
    fn feature_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = Feature::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), NUM_FEATURES);
    }

    #[test]
    fn vector_round_trips_values() {
        let mut vals = [0.0; NUM_FEATURES];
        vals[5] = 2.5;
        let fv = FeatureVector::from_values(vals);
        assert_eq!(fv.get(Feature::IsCall), 2.5);
        assert_eq!(fv.as_slice().len(), NUM_FEATURES);
    }

    #[test]
    fn infinite_loop_distance_saturates() {
        let src = r#"
fn @f() {
bb0:
  %v0 = add i64 1, 1
  br bb1
bb1:
  br bb1
}
"#;
        let module = parse_module(src).unwrap();
        let extractor = FeatureExtractor::new(&module);
        let (fid, _) = module.functions().next().unwrap();
        let fv = extractor.extract(fid, InstId::new(0));
        // No path to return: saturated, not overflowed.
        assert_eq!(fv.get(Feature::DistanceToReturn), 6.0); // 2 * 3 insts
    }
}

//! Static analyses over `ipas-ir` used by the IPAS pipeline.
//!
//! The paper characterizes every injected instruction with 31 static
//! features (Table 1) spanning four categories: the instruction itself,
//! its basic block, its function, and its forward program slice. This
//! crate provides those analyses:
//!
//! * [`defuse`] — def-use chains (also used by the duplication pass to
//!   build duplication paths);
//! * [`loops`] — natural-loop membership from back edges;
//! * [`sections`] — loop-nest section partitioning for compositional
//!   injection campaigns;
//! * [`slice`](mod@slice) — forward program slicing in the spirit of Weiser's
//!   algorithm, restricted to intra-procedural SSA data flow;
//! * [`features`] — the 31-entry [`features::FeatureVector`] extractor.
//!
//! # Example
//!
//! ```
//! use ipas_ir::parser::parse_module;
//! use ipas_analysis::features::FeatureExtractor;
//! use ipas_ir::InstId;
//!
//! let module = parse_module(r#"
//! fn @main() -> i64 {
//! bb0:
//!   %v0 = add i64 1, 2
//!   ret %v0
//! }
//! "#).unwrap();
//! let extractor = FeatureExtractor::new(&module);
//! let (fid, _) = module.functions().next().unwrap();
//! let fv = extractor.extract(fid, InstId::new(0));
//! assert_eq!(fv.get(ipas_analysis::features::Feature::IsBinaryOp), 1.0);
//! ```

#![warn(missing_docs)]

pub mod defuse;
pub mod features;
pub mod loops;
pub mod sections;
pub mod slice;

pub use defuse::DefUse;
pub use features::{
    Feature, FeatureExtractor, FeatureVector, FEATURE_SCHEMA_VERSION, NUM_FEATURES,
};
pub use loops::LoopInfo;
pub use sections::{FuncSections, Section, SectionPartition};
pub use slice::forward_slice;

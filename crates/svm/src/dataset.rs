//! Datasets, standardization, and stratified splitting.

use std::fmt;

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature matrix and label vector lengths differ.
    LengthMismatch,
    /// Rows have inconsistent dimensionality.
    RaggedRows,
    /// The dataset is empty.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DatasetError::LengthMismatch => "feature and label counts differ",
            DatasetError::RaggedRows => "feature rows have different lengths",
            DatasetError::Empty => "dataset is empty",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DatasetError {}

/// A binary-labeled dataset (`true` = class 1 = SOC-generating in the
/// IPAS pipeline).
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Vec<Vec<f64>>,
    y: Vec<bool>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Errors
    ///
    /// Rejects empty, ragged, or mismatched inputs.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<bool>) -> Result<Self, DatasetError> {
        if x.len() != y.len() {
            return Err(DatasetError::LengthMismatch);
        }
        if x.is_empty() {
            return Err(DatasetError::Empty);
        }
        let d = x[0].len();
        if x.iter().any(|row| row.len() != d) {
            return Err(DatasetError::RaggedRows);
        }
        Ok(Dataset { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` when the dataset has no samples (unreachable for a
    /// constructed dataset; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x[0].len()
    }

    /// The feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// The labels.
    pub fn labels(&self) -> &[bool] {
        &self.y
    }

    /// Number of positive (class 1) samples.
    pub fn num_positive(&self) -> usize {
        self.y.iter().filter(|&&b| b).count()
    }

    /// Fraction of positive samples — the class imbalance the paper
    /// reports as 3–10% for SOC data.
    pub fn positive_fraction(&self) -> f64 {
        self.num_positive() as f64 / self.len() as f64
    }

    /// Selects a subset by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Stratified k-fold split: each fold preserves the class ratio.
    /// Returns `(train_indices, test_indices)` pairs.
    ///
    /// Folds are deterministic for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn stratified_kfold(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "k-fold requires k >= 2");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pos: Vec<usize> = (0..self.len()).filter(|&i| self.y[i]).collect();
        let mut neg: Vec<usize> = (0..self.len()).filter(|&i| !self.y[i]).collect();
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);

        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &idx) in pos.iter().enumerate() {
            folds[i % k].push(idx);
        }
        for (i, &idx) in neg.iter().enumerate() {
            folds[i % k].push(idx);
        }

        (0..k)
            .map(|t| {
                let test = folds[t].clone();
                let train = (0..k)
                    .filter(|&j| j != t)
                    .flat_map(|j| folds[j].clone())
                    .collect();
                (train, test)
            })
            .collect()
    }
}

/// Per-feature standardization (zero mean, unit variance), fit on
/// training data and applied to everything the classifier sees.
///
/// Constant features keep their raw value shifted by the mean (divider
/// clamps at a small epsilon).
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fits a scaler on `data`.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len() as f64;
        let d = data.dim();
        let mut mean = vec![0.0; d];
        for row in data.features() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in data.features() {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var.into_iter().map(|s| (s / n).sqrt().max(1e-12)).collect();
        Scaler { mean, std }
    }

    /// The per-feature means the scaler subtracts.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The per-feature standard deviations the scaler divides by
    /// (clamped at 1e-12 for constant features).
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Reconstructs a scaler from exported parts. Exact inverse of
    /// reading [`Scaler::mean`] / [`Scaler::std`].
    ///
    /// # Errors
    ///
    /// Rejects mismatched lengths and non-positive deviations.
    pub fn from_parts(mean: Vec<f64>, std: Vec<f64>) -> Result<Self, String> {
        if mean.len() != std.len() {
            return Err(format!(
                "scaler mean/std length mismatch: {} vs {}",
                mean.len(),
                std.len()
            ));
        }
        if std.iter().any(|&s| s.is_nan() || s <= 0.0) {
            return Err("scaler std must be positive".to_string());
        }
        Ok(Scaler { mean, std })
    }

    /// Standardizes one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes a whole dataset.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset {
            x: data
                .features()
                .iter()
                .map(|r| self.transform_row(r))
                .collect(),
            y: data.labels().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_pos: usize, n_neg: usize) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_pos {
            x.push(vec![i as f64, 1.0]);
            y.push(true);
        }
        for i in 0..n_neg {
            x.push(vec![i as f64, -1.0]);
            y.push(false);
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            Dataset::new(vec![vec![1.0]], vec![true, false]).unwrap_err(),
            DatasetError::LengthMismatch
        );
        assert_eq!(
            Dataset::new(vec![], vec![]).unwrap_err(),
            DatasetError::Empty
        );
        assert_eq!(
            Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]).unwrap_err(),
            DatasetError::RaggedRows
        );
    }

    #[test]
    fn class_statistics() {
        let d = toy(3, 7);
        assert_eq!(d.len(), 10);
        assert_eq!(d.num_positive(), 3);
        assert!((d.positive_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stratified_folds_cover_everything_once() {
        let d = toy(10, 40);
        let folds = d.stratified_kfold(5, 42);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; d.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            for &i in test {
                seen[i] += 1;
            }
            // Stratification: each test fold holds ~2 of the 10 positives.
            let pos_in_test = test.iter().filter(|&&i| d.labels()[i]).count();
            assert_eq!(pos_in_test, 2);
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each sample tested exactly once"
        );
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        let d = toy(10, 40);
        assert_eq!(d.stratified_kfold(5, 7), d.stratified_kfold(5, 7));
        assert_ne!(d.stratified_kfold(5, 7), d.stratified_kfold(5, 8));
    }

    #[test]
    fn scaler_standardizes() {
        let d = Dataset::new(
            vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]],
            vec![true, false, true],
        )
        .unwrap();
        let s = Scaler::fit(&d);
        let t = s.transform(&d);
        // First feature: mean 3, values symmetric.
        let col0: Vec<f64> = t.features().iter().map(|r| r[0]).collect();
        assert!((col0[0] + col0[2]).abs() < 1e-9);
        assert!(col0[1].abs() < 1e-9);
        // Constant feature maps to 0 without dividing by zero.
        assert!(t.features().iter().all(|r| r[1].abs() < 1e-6));
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy(2, 2);
        let s = d.subset(&[0, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[true, false]);
    }
}

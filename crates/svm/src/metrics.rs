//! Classification metrics, including the F-score of Eq. 1.

/// Per-class accuracies of a binary classifier.
///
/// `acc1` is the fraction of positive (class 1 / SOC-generating) samples
/// classified correctly; `acc2` the fraction of negatives classified
/// correctly. These are the two terms of the paper's Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassAccuracy {
    /// Accuracy on class 1 (positives).
    pub acc1: f64,
    /// Accuracy on class 2 (negatives).
    pub acc2: f64,
}

/// Computes per-class accuracies from predictions and truth.
///
/// A class with no samples scores accuracy 0 (so its F-score is 0, which
/// correctly deprioritizes degenerate folds).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn per_class_accuracy(predicted: &[bool], truth: &[bool]) -> ClassAccuracy {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut pos_total = 0usize;
    let mut pos_hit = 0usize;
    let mut neg_total = 0usize;
    let mut neg_hit = 0usize;
    for (&p, &t) in predicted.iter().zip(truth) {
        if t {
            pos_total += 1;
            if p {
                pos_hit += 1;
            }
        } else {
            neg_total += 1;
            if !p {
                neg_hit += 1;
            }
        }
    }
    let frac = |hit: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    };
    ClassAccuracy {
        acc1: frac(pos_hit, pos_total),
        acc2: frac(neg_hit, neg_total),
    }
}

/// The F-score of Eq. 1: `2·acc1·acc2 / (acc1 + acc2)` — the harmonic
/// mean of the per-class accuracies. Best 1, worst 0.
pub fn f_score(acc: ClassAccuracy) -> f64 {
    let denom = acc.acc1 + acc.acc2;
    if denom == 0.0 {
        0.0
    } else {
        2.0 * acc.acc1 * acc.acc2 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier_scores_one() {
        let truth = vec![true, false, true, false];
        let acc = per_class_accuracy(&truth, &truth);
        assert_eq!(
            acc,
            ClassAccuracy {
                acc1: 1.0,
                acc2: 1.0
            }
        );
        assert_eq!(f_score(acc), 1.0);
    }

    #[test]
    fn always_negative_scores_zero() {
        // Predicting the majority class everywhere gets F-score 0 — the
        // whole point of Eq. 1 under class imbalance.
        let truth = vec![true, false, false, false, false];
        let pred = vec![false; 5];
        let acc = per_class_accuracy(&pred, &truth);
        assert_eq!(acc.acc1, 0.0);
        assert_eq!(acc.acc2, 1.0);
        assert_eq!(f_score(acc), 0.0);
    }

    #[test]
    fn partial_accuracy() {
        let truth = vec![true, true, false, false];
        let pred = vec![true, false, false, true];
        let acc = per_class_accuracy(&pred, &truth);
        assert_eq!(acc.acc1, 0.5);
        assert_eq!(acc.acc2, 0.5);
        assert!((f_score(acc) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_punishes_skew() {
        let acc = ClassAccuracy {
            acc1: 0.1,
            acc2: 1.0,
        };
        let f = f_score(acc);
        assert!(f < 0.2, "harmonic mean must stay near the weak class: {f}");
    }

    #[test]
    fn empty_class_scores_zero_not_nan() {
        let truth = vec![false, false];
        let pred = vec![false, false];
        let acc = per_class_accuracy(&pred, &truth);
        assert_eq!(acc.acc1, 0.0);
        assert!(!f_score(acc).is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        per_class_accuracy(&[true], &[true, false]);
    }
}

//! C-SVM with RBF kernel, trained by sequential minimal optimization.
//!
//! This is the reproduction's stand-in for LIBSVM's C-SVC (Chang & Lin,
//! cited by the paper): a soft-margin SVM solved by Platt's SMO with an
//! error cache, a second-choice heuristic, and per-class penalty weights
//! `C⁺ = w·C`, `C⁻ = C` so that the rare SOC class is not drowned out by
//! the majority class.

use crate::dataset::Dataset;
use crate::Classifier;

/// Hyperparameters of the C-SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Soft-margin penalty `C` (paper range: 1 to 100,000).
    pub c: f64,
    /// RBF kernel coefficient `γ` (paper range: 0.00001 to 1).
    pub gamma: f64,
    /// Multiplier applied to `C` for positive samples (class-imbalance
    /// handling); 1.0 disables weighting.
    pub pos_weight: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Maximum sweeps over the data without progress before stopping.
    pub max_passes: usize,
}

impl SvmParams {
    /// Creates parameters with defaults (`pos_weight` 1, `tol` 1e-3).
    pub fn new(c: f64, gamma: f64) -> Self {
        SvmParams {
            c,
            gamma,
            pos_weight: 1.0,
            tol: 1e-3,
            max_passes: 8,
        }
    }

    /// Returns a copy with `pos_weight` set to the inverse class ratio of
    /// `data` (`n_neg / n_pos`), the standard balanced weighting.
    pub fn balanced_for(mut self, data: &Dataset) -> Self {
        let pos = data.num_positive().max(1) as f64;
        let neg = (data.len() - data.num_positive()).max(1) as f64;
        self.pos_weight = neg / pos;
        self
    }
}

/// A trained SVM model.
#[derive(Debug, Clone)]
pub struct Svm {
    support_x: Vec<Vec<f64>>,
    /// `alpha_i * y_i` per support vector.
    coef: Vec<f64>,
    bias: f64,
    gamma: f64,
}

fn rbf(gamma: f64, a: &[f64], b: &[f64]) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

impl Svm {
    /// Trains on `data` with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `data` contains only one class (the campaign driver
    /// guarantees both classes are present).
    pub fn train(data: &Dataset, params: &SvmParams) -> Self {
        let n = data.len();
        let x = data.features();
        // Precompute the kernel matrix (training sets here are small).
        let mut kernel = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let k = rbf(params.gamma, &x[i], &x[j]);
                kernel[i * n + j] = k;
                kernel[j * n + i] = k;
            }
        }
        Self::train_prepared(data, params, &kernel)
    }

    /// Trains with a caller-provided kernel matrix (row-major `n × n`).
    /// Used by the grid search to share kernels across folds.
    ///
    /// # Panics
    ///
    /// Panics if the matrix size does not match or the labels are
    /// single-class.
    pub fn train_prepared(data: &Dataset, params: &SvmParams, kernel: &[f64]) -> Self {
        let n = data.len();
        assert_eq!(kernel.len(), n * n, "kernel matrix size mismatch");
        let y: Vec<f64> = data
            .labels()
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect();
        assert!(
            data.num_positive() > 0 && data.num_positive() < n,
            "training data must contain both classes"
        );
        let c_of = |i: usize| {
            if y[i] > 0.0 {
                params.c * params.pos_weight
            } else {
                params.c
            }
        };

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        // Error cache: E_i = f(x_i) - y_i; with all alphas 0, f = b = 0.
        let mut err: Vec<f64> = y.iter().map(|v| -v).collect();

        let k = |i: usize, j: usize| kernel[i * n + j];
        let tol = params.tol;
        let eps = 1e-12;

        let take_step =
            |alpha: &mut Vec<f64>, err: &mut Vec<f64>, b: &mut f64, i1: usize, i2: usize| -> bool {
                if i1 == i2 {
                    return false;
                }
                let (a1, a2) = (alpha[i1], alpha[i2]);
                let (y1, y2) = (y[i1], y[i2]);
                let (e1, e2) = (err[i1], err[i2]);
                let s = y1 * y2;
                let (c1, c2) = (c_of(i1), c_of(i2));
                let (low, high) = if s < 0.0 {
                    ((a2 - a1).max(0.0), (c2.min(c1 + a2 - a1)))
                } else {
                    ((a1 + a2 - c1).max(0.0), c2.min(a1 + a2))
                };
                if high - low < eps {
                    return false;
                }
                let eta = k(i1, i1) + k(i2, i2) - 2.0 * k(i1, i2);
                let a2_new = if eta > eps {
                    (a2 + y2 * (e1 - e2) / eta).clamp(low, high)
                } else {
                    // Degenerate kernel direction: pick the better bound.
                    let lobj = y2 * (e1 - e2) * low;
                    let hobj = y2 * (e1 - e2) * high;
                    if lobj > hobj + eps {
                        low
                    } else if hobj > lobj + eps {
                        high
                    } else {
                        return false;
                    }
                };
                if (a2_new - a2).abs() < eps * (a2_new + a2 + eps) {
                    return false;
                }
                let a1_new = a1 + s * (a2 - a2_new);

                // Bias update (Platt's b1/b2 rule).
                let b1 = *b - e1 - y1 * (a1_new - a1) * k(i1, i1) - y2 * (a2_new - a2) * k(i1, i2);
                let b2 = *b - e2 - y1 * (a1_new - a1) * k(i1, i2) - y2 * (a2_new - a2) * k(i2, i2);
                let b_new = if a1_new > eps && a1_new < c1 - eps {
                    b1
                } else if a2_new > eps && a2_new < c2 - eps {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };

                // Update the error cache for every sample.
                let d1 = y1 * (a1_new - a1);
                let d2 = y2 * (a2_new - a2);
                let db = b_new - *b;
                for (t, e) in err.iter_mut().enumerate() {
                    *e += d1 * k(i1, t) + d2 * k(i2, t) + db;
                }
                alpha[i1] = a1_new;
                alpha[i2] = a2_new;
                *b = b_new;
                true
            };

        // Platt's outer loop: alternate full sweeps and non-bound sweeps.
        let mut examine_all = true;
        let mut stale_passes = 0usize;
        // Noisy labels (conflicting samples at identical feature vectors,
        // which real fault-injection data is full of) prevent exact KKT
        // convergence; cap the work at a budget that saturates accuracy
        // in practice while keeping the 2,500-training grid search fast.
        let max_steps = 50 * n;
        let mut steps = 0usize;
        while stale_passes < params.max_passes && steps < max_steps {
            let mut changed = 0usize;
            for i2 in 0..n {
                if !examine_all {
                    let a = alpha[i2];
                    if a <= eps || a >= c_of(i2) - eps {
                        continue;
                    }
                }
                let e2 = err[i2];
                let r2 = e2 * y[i2];
                let a2 = alpha[i2];
                let kkt_violated = (r2 < -tol && a2 < c_of(i2) - eps) || (r2 > tol && a2 > eps);
                if !kkt_violated {
                    continue;
                }
                // Second-choice heuristic: maximize |E1 - E2|.
                let mut best = None;
                let mut best_gap = 0.0;
                for (i1, e1) in err.iter().enumerate() {
                    let gap = (e1 - e2).abs();
                    if gap > best_gap {
                        best_gap = gap;
                        best = Some(i1);
                    }
                }
                let mut stepped = false;
                if let Some(i1) = best {
                    stepped = take_step(&mut alpha, &mut err, &mut b, i1, i2);
                }
                if !stepped {
                    // Deterministic fallback: scan all candidates.
                    for i1 in 0..n {
                        if take_step(&mut alpha, &mut err, &mut b, i1, i2) {
                            stepped = true;
                            break;
                        }
                    }
                }
                if stepped {
                    changed += 1;
                    steps += 1;
                    if steps >= max_steps {
                        break;
                    }
                }
            }
            if changed == 0 {
                if examine_all {
                    stale_passes += 1;
                }
                examine_all = true;
            } else {
                stale_passes = 0;
                examine_all = false;
            }
        }

        // Keep only support vectors.
        let mut support_x = Vec::new();
        let mut coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support_x.push(data.features()[i].clone());
                coef.push(alpha[i] * y[i]);
            }
        }
        Svm {
            support_x,
            coef,
            bias: b,
            gamma: params.gamma,
        }
    }

    /// The signed decision value for `x` (positive ⇒ class 1).
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let mut sum = self.bias;
        for (sv, c) in self.support_x.iter().zip(&self.coef) {
            sum += c * rbf(self.gamma, sv, x);
        }
        sum
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_x.len()
    }

    /// The support vectors (one feature row per retained sample).
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_x
    }

    /// The dual coefficients `alpha_i * y_i`, aligned with
    /// [`Svm::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The bias term `b` of the decision function.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The RBF kernel coefficient `γ` the model was trained with.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Reconstructs a model from exported parts (the inverse of reading
    /// [`Svm::support_vectors`] / [`Svm::coefficients`] / [`Svm::bias`]
    /// / [`Svm::gamma`]). The reconstruction is exact: the decision
    /// function is a pure fold over these four values, so a model
    /// rebuilt from bit-identical parts produces bit-identical
    /// [`Svm::decision_function`] outputs.
    ///
    /// # Errors
    ///
    /// Rejects mismatched lengths, ragged support vectors, and
    /// non-finite `gamma`.
    pub fn from_parts(
        support_x: Vec<Vec<f64>>,
        coef: Vec<f64>,
        bias: f64,
        gamma: f64,
    ) -> Result<Self, String> {
        if support_x.len() != coef.len() {
            return Err(format!(
                "support vector / coefficient count mismatch: {} vs {}",
                support_x.len(),
                coef.len()
            ));
        }
        if let Some(first) = support_x.first() {
            let d = first.len();
            if support_x.iter().any(|sv| sv.len() != d) {
                return Err("ragged support vectors".to_string());
            }
        }
        if !gamma.is_finite() {
            return Err(format!("non-finite gamma {gamma}"));
        }
        Ok(Svm {
            support_x,
            coef,
            bias,
            gamma,
        })
    }
}

impl Classifier for Svm {
    fn predict(&self, x: &[f64]) -> bool {
        self.decision_function(x) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = i as f64 / n as f64;
            x.push(vec![t, 1.0 + t]);
            y.push(true);
            x.push(vec![t, -1.0 - t]);
            y.push(false);
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn separates_linear_data() {
        let data = linearly_separable(20);
        let svm = Svm::train(&data, &SvmParams::new(10.0, 0.5));
        for (row, &label) in data.features().iter().zip(data.labels()) {
            assert_eq!(svm.predict(row), label, "misclassified {row:?}");
        }
    }

    #[test]
    fn solves_xor_with_rbf() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let y = vec![false, false, true, true];
        let data = Dataset::new(x, y).unwrap();
        let svm = Svm::train(&data, &SvmParams::new(100.0, 2.0));
        assert!(!svm.predict(&[0.1, 0.1]));
        assert!(!svm.predict(&[0.9, 0.9]));
        assert!(svm.predict(&[0.1, 0.9]));
        assert!(svm.predict(&[0.9, 0.1]));
    }

    #[test]
    fn class_weighting_recovers_minority_class() {
        // 4 positives among 100 negatives, positives in a tight cluster.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![(i % 10) as f64, (i / 10) as f64]);
            y.push(false);
        }
        for i in 0..4 {
            x.push(vec![
                20.0 + (i % 2) as f64 * 0.1,
                20.0 + (i / 2) as f64 * 0.1,
            ]);
            y.push(true);
        }
        let data = Dataset::new(x, y).unwrap();
        let params = SvmParams::new(1.0, 0.05).balanced_for(&data);
        assert!(params.pos_weight > 10.0);
        let svm = Svm::train(&data, &params);
        assert!(
            svm.predict(&[20.05, 20.05]),
            "minority cluster must be recovered"
        );
        assert!(!svm.predict(&[5.0, 5.0]));
    }

    #[test]
    fn decision_function_sign_matches_predict() {
        let data = linearly_separable(10);
        let svm = Svm::train(&data, &SvmParams::new(5.0, 0.5));
        let x = vec![0.5, 1.4];
        assert_eq!(svm.decision_function(&x) > 0.0, svm.predict(&x));
    }

    #[test]
    fn training_is_deterministic() {
        let data = linearly_separable(15);
        let a = Svm::train(&data, &SvmParams::new(10.0, 0.3));
        let b = Svm::train(&data, &SvmParams::new(10.0, 0.3));
        assert_eq!(a.num_support_vectors(), b.num_support_vectors());
        assert_eq!(
            a.decision_function(&[0.2, 0.8]),
            b.decision_function(&[0.2, 0.8])
        );
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_data_panics() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![true, true]).unwrap();
        Svm::train(&data, &SvmParams::new(1.0, 1.0));
    }

    #[test]
    fn few_support_vectors_on_easy_data() {
        let data = linearly_separable(50);
        let svm = Svm::train(&data, &SvmParams::new(10.0, 0.5));
        // Easy margins: far fewer SVs than samples.
        assert!(svm.num_support_vectors() < data.len() / 2);
    }
}

//! k-nearest-neighbor reference classifier (see §4.3.1 of the paper).

use crate::dataset::Dataset;
use crate::Classifier;

/// A k-NN classifier over (pre-standardized) feature vectors.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<bool>,
}

impl Knn {
    /// Builds a classifier that votes among the `k` nearest training
    /// samples (Euclidean distance; ties in the vote go to negative,
    /// matching majority behaviour under imbalance).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn train(data: &Dataset, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Knn {
            k: k.min(data.len()),
            x: data.features().to_vec(),
            y: data.labels().to_vec(),
        }
    }

    /// The effective `k` (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Classifier for Knn {
    fn predict(&self, x: &[f64]) -> bool {
        let mut dists: Vec<(f64, bool)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(row, &label)| {
                let d: f64 = row.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, label)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let votes = dists[..self.k].iter().filter(|(_, l)| *l).count();
        votes * 2 > self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            x.push(vec![i as f64 * 0.1, 0.0]);
            y.push(false);
            x.push(vec![5.0 + i as f64 * 0.1, 0.0]);
            y.push(true);
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn classifies_clusters() {
        let knn = Knn::train(&clusters(), 3);
        assert!(!knn.predict(&[0.4, 0.0]));
        assert!(knn.predict(&[5.4, 0.0]));
    }

    #[test]
    fn k_is_clamped_to_dataset_size() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![false, true]).unwrap();
        let knn = Knn::train(&d, 100);
        assert_eq!(knn.k(), 2);
    }

    #[test]
    fn vote_ties_go_negative() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![false, true]).unwrap();
        let knn = Knn::train(&d, 2);
        // Both neighbors vote, 1-1 tie -> negative.
        assert!(!knn.predict(&[0.5]));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        Knn::train(&clusters(), 0);
    }
}

//! (C, γ) grid search with stratified cross validation (§4.3.2).
//!
//! The paper varies `C` between 1 and 100,000 and `γ` between 0.00001
//! and 1, evaluating 500 configurations by cross validation and ranking
//! them by the Eq. 1 F-score; the top-N configurations (N = 5 in the
//! evaluation) are then carried into the protection experiments.

use std::sync::Mutex;

use crate::dataset::{Dataset, Scaler};
use crate::metrics::{f_score, per_class_accuracy, ClassAccuracy};
use crate::svm::{Svm, SvmParams};
use crate::Classifier;

/// Options for [`grid_search`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridOptions {
    /// Number of `C` values on the log grid (default 25).
    pub num_c: usize,
    /// Number of `γ` values on the log grid (default 20; 25×20 = the
    /// paper's 500 configurations).
    pub num_gamma: usize,
    /// `C` range, inclusive (default `[1, 1e5]`).
    pub c_range: (f64, f64),
    /// `γ` range, inclusive (default `[1e-5, 1]`).
    pub gamma_range: (f64, f64),
    /// Number of stratified folds (default 5).
    pub folds: usize,
    /// Fold-assignment seed.
    pub seed: u64,
    /// Balance class weights by inverse frequency (default true; the
    /// paper selects SVMs precisely for imbalance handling).
    pub balanced: bool,
}

impl Default for GridOptions {
    fn default() -> Self {
        GridOptions {
            num_c: 25,
            num_gamma: 20,
            c_range: (1.0, 1e5),
            gamma_range: (1e-5, 1.0),
            folds: 5,
            seed: 0x1BA5_5EED,
            balanced: true,
        }
    }
}

impl GridOptions {
    /// A reduced grid for unit tests and quick campaigns.
    pub fn quick() -> Self {
        GridOptions {
            num_c: 5,
            num_gamma: 4,
            folds: 3,
            ..GridOptions::default()
        }
    }

    /// The log-spaced `C` values of the grid.
    pub fn c_values(&self) -> Vec<f64> {
        log_space(self.c_range.0, self.c_range.1, self.num_c)
    }

    /// The log-spaced `γ` values of the grid.
    pub fn gamma_values(&self) -> Vec<f64> {
        log_space(self.gamma_range.0, self.gamma_range.1, self.num_gamma)
    }
}

fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 1 && lo > 0.0 && hi > lo);
    if n == 1 {
        return vec![lo];
    }
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// The cross-validated score of one (C, γ) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigScore {
    /// The evaluated parameters (including the class weight used).
    pub params: SvmParams,
    /// Pooled per-class accuracies across all folds.
    pub accuracy: ClassAccuracy,
    /// Eq. 1 F-score of the pooled accuracies.
    pub f_score: f64,
}

/// Runs the cross-validated grid search, returning every configuration
/// sorted by F-score (descending; ties broken toward smaller `C`, which
/// the paper's overfitting discussion favors).
///
/// Work is parallelized across γ values with scoped threads: each γ
/// shares one kernel matrix per fold across all `C` values.
pub fn grid_search(data: &Dataset, opts: &GridOptions) -> Vec<ConfigScore> {
    let folds = data.stratified_kfold(opts.folds, opts.seed);

    // Pre-standardize per fold and precompute squared-distance matrices,
    // shared by every configuration.
    struct FoldData {
        train: Dataset,
        test: Dataset,
        test_truth: Vec<bool>,
        dist2: Vec<f64>, // n_train × n_train squared distances
    }
    // A fold whose training split lost one class entirely (possible when
    // the minority class has fewer samples than folds) cannot train an
    // SVM; skip it rather than abort the whole search. Its test samples
    // simply don't contribute to the cross-validated score.
    let fold_data: Vec<FoldData> = folds
        .iter()
        .filter(|(tr, _)| {
            let positives = tr.iter().filter(|&&i| data.labels()[i]).count();
            positives > 0 && positives < tr.len()
        })
        .map(|(tr, te)| {
            let train_raw = data.subset(tr);
            let test_raw = data.subset(te);
            let scaler = Scaler::fit(&train_raw);
            let train = scaler.transform(&train_raw);
            let test = scaler.transform(&test_raw);
            let n = train.len();
            let x = train.features();
            let mut dist2 = vec![0.0f64; n * n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let d: f64 = x[i].iter().zip(&x[j]).map(|(a, b)| (a - b) * (a - b)).sum();
                    dist2[i * n + j] = d;
                    dist2[j * n + i] = d;
                }
            }
            let test_truth = test.labels().to_vec();
            FoldData {
                train,
                test,
                test_truth,
                dist2,
            }
        })
        .collect();

    let c_values = opts.c_values();
    let gamma_values = opts.gamma_values();
    let results: Mutex<Vec<ConfigScore>> = Mutex::new(Vec::new());

    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(gamma_values.len());
    let gamma_chunks: Vec<Vec<f64>> = chunk(&gamma_values, num_threads);

    std::thread::scope(|scope| {
        for chunk in &gamma_chunks {
            let fold_data = &fold_data;
            let c_values = &c_values;
            let results = &results;
            scope.spawn(move || {
                for &gamma in chunk {
                    // One kernel per (γ, fold), shared across C values.
                    let kernels: Vec<Vec<f64>> = fold_data
                        .iter()
                        .map(|fd| fd.dist2.iter().map(|d| (-gamma * d).exp()).collect())
                        .collect();
                    for &c in c_values {
                        let mut predicted = Vec::new();
                        let mut truth = Vec::new();
                        let mut params = SvmParams::new(c, gamma);
                        for (fd, kernel) in fold_data.iter().zip(&kernels) {
                            let mut p = params;
                            if opts.balanced {
                                p = p.balanced_for(&fd.train);
                            }
                            params = p;
                            let model = Svm::train_prepared(&fd.train, &p, kernel);
                            predicted.extend(model.predict_batch(fd.test.features()));
                            truth.extend_from_slice(&fd.test_truth);
                        }
                        let accuracy = per_class_accuracy(&predicted, &truth);
                        let score = ConfigScore {
                            params,
                            accuracy,
                            f_score: f_score(accuracy),
                        };
                        results.lock().expect("no panics hold the lock").push(score);
                    }
                }
            });
        }
    });

    let mut out = results.into_inner().expect("scope joined all threads");
    out.sort_by(|a, b| {
        b.f_score
            .partial_cmp(&a.f_score)
            .expect("f-scores are finite")
            .then(
                a.params
                    .c
                    .partial_cmp(&b.params.c)
                    .expect("C values are finite"),
            )
            .then(
                a.params
                    .gamma
                    .partial_cmp(&b.params.gamma)
                    .expect("gamma values are finite"),
            )
    });
    out
}

fn chunk(values: &[f64], n: usize) -> Vec<Vec<f64>> {
    let mut chunks: Vec<Vec<f64>> = vec![Vec::new(); n.max(1)];
    for (i, &v) in values.iter().enumerate() {
        chunks[i % n.max(1)].push(v);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_dataset() -> Dataset {
        // Positives on a ring of radius 2, negatives near the origin —
        // needs a mid-size gamma, so the grid has something to find.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let a = i as f64 * 0.5;
            x.push(vec![0.3 * a.cos(), 0.3 * a.sin()]);
            y.push(false);
        }
        for i in 0..12 {
            let a = i as f64 * 0.7;
            x.push(vec![2.0 * a.cos(), 2.0 * a.sin()]);
            y.push(true);
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn tolerates_fewer_minority_samples_than_folds() {
        // One positive among 30 negatives with 3 folds: one fold's
        // training split has no positive and must be skipped, not
        // panic the search.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            x.push(vec![i as f64 * 0.1, -(i as f64) * 0.05]);
            y.push(false);
        }
        x.push(vec![5.0, 5.0]);
        y.push(true);
        let data = Dataset::new(x, y).unwrap();
        let opts = GridOptions::quick();
        let scores = grid_search(&data, &opts);
        assert_eq!(scores.len(), opts.num_c * opts.num_gamma);
        assert!(scores.iter().all(|s| s.f_score.is_finite()));
    }

    #[test]
    fn grid_has_expected_size_and_order() {
        let data = ring_dataset();
        let opts = GridOptions::quick();
        let scores = grid_search(&data, &opts);
        assert_eq!(scores.len(), opts.num_c * opts.num_gamma);
        for w in scores.windows(2) {
            assert!(w[0].f_score >= w[1].f_score, "must be sorted descending");
        }
    }

    #[test]
    fn finds_a_good_configuration_on_separable_data() {
        let data = ring_dataset();
        let scores = grid_search(&data, &GridOptions::quick());
        assert!(
            scores[0].f_score > 0.9,
            "best config should separate the ring: {:?}",
            scores[0]
        );
    }

    #[test]
    fn default_grid_is_500_configs() {
        let opts = GridOptions::default();
        assert_eq!(opts.num_c * opts.num_gamma, 500);
        assert_eq!(opts.c_values().len(), 25);
        assert_eq!(opts.gamma_values().len(), 20);
        let cs = opts.c_values();
        assert!((cs[0] - 1.0).abs() < 1e-9);
        assert!((cs[24] - 1e5).abs() < 1.0);
    }

    #[test]
    fn log_space_endpoints() {
        let v = log_space(1e-5, 1.0, 20);
        assert!((v[0] - 1e-5).abs() < 1e-12);
        assert!((v[19] - 1.0).abs() < 1e-9);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn search_is_deterministic() {
        let data = ring_dataset();
        let a = grid_search(&data, &GridOptions::quick());
        let b = grid_search(&data, &GridOptions::quick());
        let fa: Vec<f64> = a.iter().map(|s| s.f_score).collect();
        let fb: Vec<f64> = b.iter().map(|s| s.f_score).collect();
        assert_eq!(fa, fb);
    }
}

//! Machine-learning substrate for IPAS: a C-SVM with RBF kernel, trained
//! by sequential minimal optimization (SMO), plus the model-selection
//! machinery of Section 4.3 of the paper.
//!
//! The paper trains a LIBSVM-style C-SVM (Chang & Lin) on class-imbalanced
//! fault-injection data (3–10% positive), tunes `C ∈ [1, 1e5]` and
//! `γ ∈ [1e-5, 1]` over 500 grid configurations with cross validation,
//! ranks configurations by the F-score of Eq. 1 (the harmonic mean of the
//! per-class accuracies), and keeps the top-N. This crate reproduces all
//! of that:
//!
//! * [`Dataset`] — feature matrix + binary labels, standardization,
//!   stratified k-fold splitting;
//! * [`Svm`]/[`SvmParams`] — the classifier, with per-class penalty
//!   weights for imbalance;
//! * [`metrics`] — per-class accuracies and the Eq. 1 F-score;
//! * [`grid_search`] — the 500-point (C, γ) sweep with k-fold CV;
//! * [`tree`]/[`knn`] — decision-tree and nearest-neighbor reference
//!   classifiers (the alternatives the paper rejected in §4.3.1).
//!
//! # Example
//!
//! ```
//! use ipas_svm::{Classifier, Dataset, Svm, SvmParams};
//!
//! // XOR-ish data: RBF kernel separates what a linear model cannot.
//! let x = vec![
//!     vec![0.0, 0.0], vec![1.0, 1.0], // class false
//!     vec![0.0, 1.0], vec![1.0, 0.0], // class true
//! ];
//! let y = vec![false, false, true, true];
//! let data = Dataset::new(x, y).unwrap();
//! let svm = Svm::train(&data, &SvmParams::new(10.0, 1.0));
//! assert!(svm.predict(&[0.05, 0.95]));
//! assert!(!svm.predict(&[0.95, 0.95]));
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod gridsearch;
pub mod knn;
pub mod metrics;
pub mod svm;
pub mod tree;

pub use dataset::{Dataset, DatasetError, Scaler};
pub use gridsearch::{grid_search, ConfigScore, GridOptions};
pub use knn::Knn;
pub use metrics::{f_score, per_class_accuracy, ClassAccuracy};
pub use svm::{Svm, SvmParams};

/// Common interface implemented by every classifier in this crate.
pub trait Classifier {
    /// Predicts the class of one standardized feature vector.
    fn predict(&self, x: &[f64]) -> bool;

    /// Predicts a batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<bool> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

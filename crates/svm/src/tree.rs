//! A CART-style decision tree (reference classifier).
//!
//! Section 4.3.1 of the paper reports that decision trees and nearest
//! neighbor were evaluated and rejected in favor of SVMs, primarily for
//! their behaviour on class-imbalanced data. This implementation exists
//! so the reproduction can rerun that comparison.

use crate::dataset::Dataset;
use crate::Classifier;

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(bool),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained decision tree (gini impurity, axis-aligned splits).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Trains a tree on `data`.
    pub fn train(data: &Dataset, params: &TreeParams) -> Self {
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut nodes = Vec::new();
        Self::build(data, params, &idx, 0, &mut nodes);
        DecisionTree { nodes }
    }

    fn build(
        data: &Dataset,
        params: &TreeParams,
        idx: &[usize],
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| data.labels()[i]).count();
        let majority = pos * 2 >= idx.len();
        let pure = pos == 0 || pos == idx.len();
        if pure || depth >= params.max_depth || idx.len() < params.min_samples_split {
            nodes.push(Node::Leaf(majority));
            return nodes.len() - 1;
        }

        // Best gini split over all features and midpoints.
        let parent_gini = gini(pos, idx.len());
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for f in 0..data.dim() {
            let mut vals: Vec<(f64, bool)> = idx
                .iter()
                .map(|&i| (data.features()[i][f], data.labels()[i]))
                .collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let total_pos = pos;
            let mut left_pos = 0usize;
            for (k, w) in vals.windows(2).enumerate() {
                if w[0].1 {
                    left_pos += 1;
                }
                if w[0].0 == w[1].0 {
                    continue;
                }
                let left_n = k + 1;
                let right_n = idx.len() - left_n;
                let right_pos = total_pos - left_pos;
                let weighted = (left_n as f64 * gini(left_pos, left_n)
                    + right_n as f64 * gini(right_pos, right_n))
                    / idx.len() as f64;
                let gain = parent_gini - weighted;
                let threshold = (w[0].0 + w[1].0) / 2.0;
                // Accept zero-gain splits (XOR-style data has no
                // first-level gain); prefer strictly better ones.
                if best
                    .map(|(_, _, g)| gain > g + 1e-12)
                    .unwrap_or(gain >= -1e-12)
                {
                    best = Some((f, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            nodes.push(Node::Leaf(majority));
            return nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| data.features()[i][feature] <= threshold);
        // Reserve this node's slot before recursing.
        nodes.push(Node::Leaf(majority));
        let slot = nodes.len() - 1;
        let left = Self::build(data, params, &left_idx, depth + 1, nodes);
        let right = Self::build(data, params, &right_idx, depth + 1, nodes);
        nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, x: &[f64]) -> bool {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_axis_aligned_data() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let data = Dataset::new(x, y).unwrap();
        let tree = DecisionTree::train(&data, &TreeParams::default());
        assert!(!tree.predict(&[3.0]));
        assert!(tree.predict(&[15.0]));
        // One split suffices.
        assert_eq!(tree.num_nodes(), 3);
    }

    #[test]
    fn handles_xor_with_depth_two() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let y = vec![false, false, true, true];
        let data = Dataset::new(x, y).unwrap();
        let tree = DecisionTree::train(
            &data,
            &TreeParams {
                max_depth: 4,
                min_samples_split: 2,
            },
        );
        assert!(!tree.predict(&[0.0, 0.0]));
        assert!(tree.predict(&[0.0, 1.0]));
        assert!(tree.predict(&[1.0, 0.0]));
        assert!(!tree.predict(&[1.0, 1.0]));
    }

    #[test]
    fn depth_limit_prunes() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let data = Dataset::new(x, y).unwrap();
        let tree = DecisionTree::train(
            &data,
            &TreeParams {
                max_depth: 2,
                min_samples_split: 2,
            },
        );
        assert!(tree.num_nodes() <= 7);
    }

    #[test]
    fn pure_node_is_leaf() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![true, true]).unwrap();
        let tree = DecisionTree::train(&data, &TreeParams::default());
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.predict(&[0.5]));
    }

    #[test]
    fn majority_vote_biases_to_negative_under_imbalance() {
        // Overlapping classes, 1:9 imbalance: an unweighted tree leaf
        // votes majority — exactly the weakness the paper describes.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            x.push(vec![(i % 10) as f64]);
            y.push(false);
        }
        for i in 0..10 {
            x.push(vec![(i % 10) as f64]); // same support as negatives
            y.push(true);
        }
        let data = Dataset::new(x, y).unwrap();
        let tree = DecisionTree::train(&data, &TreeParams::default());
        let hits = (0..10).filter(|&v| tree.predict(&[v as f64])).count();
        assert_eq!(
            hits, 0,
            "unweighted tree should never predict the minority class here"
        );
    }
}

//! Property-based tests for the ML substrate's invariants.

use proptest::prelude::*;

use ipas_svm::{f_score, per_class_accuracy, Classifier, Dataset, Knn, Scaler, Svm, SvmParams};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    // 2-4 features, 12-60 rows, both classes guaranteed.
    (2usize..5, 6usize..30).prop_flat_map(|(dim, half)| {
        (
            proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, dim), half * 2),
            Just(half),
        )
            .prop_map(move |(x, half)| {
                let y: Vec<bool> = (0..half * 2).map(|i| i < half).collect();
                Dataset::new(x, y).expect("rectangular")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Standardization makes every feature zero-mean, unit-or-less
    /// variance (constant features collapse to zero).
    #[test]
    fn scaler_standardizes_any_dataset(data in dataset_strategy()) {
        let scaler = Scaler::fit(&data);
        let t = scaler.transform(&data);
        let n = t.len() as f64;
        for j in 0..t.dim() {
            let mean: f64 = t.features().iter().map(|r| r[j]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "feature {j} mean {mean}");
            let var: f64 = t.features().iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            prop_assert!(var < 1.0 + 1e-6, "feature {j} var {var}");
        }
    }

    /// The F-score is always within [0, 1] and equals 0 whenever either
    /// class accuracy is 0.
    #[test]
    fn f_score_bounds(pred in proptest::collection::vec(any::<bool>(), 1..64),
                      truth in proptest::collection::vec(any::<bool>(), 1..64)) {
        let n = pred.len().min(truth.len());
        let acc = per_class_accuracy(&pred[..n], &truth[..n]);
        let f = f_score(acc);
        prop_assert!((0.0..=1.0).contains(&f));
        if acc.acc1 == 0.0 || acc.acc2 == 0.0 {
            prop_assert_eq!(f, 0.0);
        }
        // Harmonic mean never exceeds the arithmetic mean.
        prop_assert!(f <= (acc.acc1 + acc.acc2) / 2.0 + 1e-12);
    }

    /// SVM training is total on any two-class dataset and the decision
    /// function is finite everywhere.
    #[test]
    fn svm_training_is_total(data in dataset_strategy(), c in 0.5f64..100.0, gamma in 1e-3f64..1.0) {
        let scaler = Scaler::fit(&data);
        let scaled = scaler.transform(&data);
        let model = Svm::train(&scaled, &SvmParams::new(c, gamma).balanced_for(&scaled));
        for row in scaled.features() {
            let d = model.decision_function(row);
            prop_assert!(d.is_finite());
        }
        prop_assert!(model.num_support_vectors() <= data.len());
    }

    /// 1-NN perfectly memorizes its training set when all points are
    /// distinct.
    #[test]
    fn one_nn_memorizes(data in dataset_strategy()) {
        // Make rows unique by nudging each with its index.
        let x: Vec<Vec<f64>> = data
            .features()
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut r = r.clone();
                r[0] += i as f64 * 1e-3;
                r
            })
            .collect();
        let data = Dataset::new(x, data.labels().to_vec()).expect("rectangular");
        let knn = Knn::train(&data, 1);
        for (row, &label) in data.features().iter().zip(data.labels()) {
            prop_assert_eq!(knn.predict(row), label);
        }
    }

    /// Stratified folds partition the dataset exactly, for any k.
    #[test]
    fn kfold_partitions(data in dataset_strategy(), k in 2usize..6, seed in any::<u64>()) {
        let folds = data.stratified_kfold(k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0usize; data.len()];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), data.len());
            for &i in test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            for &i in test {
                prop_assert!(!train.contains(&i));
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}

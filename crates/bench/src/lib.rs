//! Experiment harness shared by the `ipas-bench` binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index). Because the full §6 protocol (training
//! campaign, 500-configuration grid search, and 12 evaluation campaigns
//! per workload) is expensive, the harness caches the per-workload
//! [`ExperimentSummary`] rows in a TSV file under `target/`; delete the
//! file (or set `IPAS_FRESH=1`) to force a rerun.
//!
//! The campaign scale is controlled by `IPAS_PROFILE`:
//!
//! * `quick` — small campaigns and a reduced grid (~1 min total);
//! * `default` — the documented reproduction scale;
//! * `paper` — the paper's 2,500-training / 1,024-eval scale (slow).
//!
//! Long runs can be made interruption-safe with `IPAS_JOURNAL_DIR`:
//! when set, every campaign checkpoints its records to JSONL journals
//! in that directory, and re-running a killed binary resumes the
//! interrupted campaign instead of restarting it (see
//! docs/campaign-resilience.md).
//!
//! With `IPAS_STORE_DIR` set, the training campaign, grid search, and
//! duplication stages of every experiment are additionally memoized in
//! the artifact store by input fingerprint (see docs/artifact-store.md),
//! so re-running a finished experiment — or sharing one store across
//! binaries — skips those stages entirely.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

use ipas_core::{run_experiment, ExperimentOptions, ExperimentResult};
use ipas_faultsim::{margin_of_error, Engine, FaultModel, Outcome};
use ipas_svm::GridOptions;
use ipas_workloads::Kind;

/// Campaign scale selected via the `IPAS_PROFILE` env var.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Minimal scale for smoke runs.
    Quick,
    /// The reproduction's documented scale.
    Default,
    /// The paper's campaign sizes (2,500 training / 1,024 eval runs).
    Paper,
}

impl Profile {
    /// Reads the profile from the environment.
    pub fn from_env() -> Self {
        match std::env::var("IPAS_PROFILE").as_deref() {
            Ok("quick") => Profile::Quick,
            Ok("paper") => Profile::Paper,
            _ => Profile::Default,
        }
    }

    /// A short identifier used in the cache filename.
    pub fn tag(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Default => "default",
            Profile::Paper => "paper",
        }
    }

    /// The experiment options of this profile.
    pub fn options(self) -> ExperimentOptions {
        match self {
            Profile::Quick => ExperimentOptions {
                training_runs: 250,
                eval_runs: 96,
                top_n: 3,
                grid: GridOptions {
                    num_c: 10,
                    num_gamma: 8,
                    folds: 3,
                    ..GridOptions::default()
                },
                seed: 2016,
                threads: 0,
                engine: Engine::default(),
                journal_dir: journal_dir_from_env(),
                store_dir: store_dir_from_env(),
                fault_model: FaultModel::default(),
            },
            Profile::Default => ExperimentOptions {
                training_runs: 600,
                eval_runs: 256,
                top_n: 5,
                grid: GridOptions {
                    num_c: 25,
                    num_gamma: 20,
                    folds: 5,
                    ..GridOptions::default()
                },
                seed: 2016,
                threads: 0,
                engine: Engine::default(),
                journal_dir: journal_dir_from_env(),
                store_dir: store_dir_from_env(),
                fault_model: FaultModel::default(),
            },
            Profile::Paper => ExperimentOptions {
                training_runs: 2500,
                eval_runs: 1024,
                top_n: 5,
                grid: GridOptions::default(),
                seed: 2016,
                threads: 0,
                engine: Engine::default(),
                journal_dir: journal_dir_from_env(),
                store_dir: store_dir_from_env(),
                fault_model: FaultModel::default(),
            },
        }
    }
}

/// The campaign checkpoint directory selected via `IPAS_JOURNAL_DIR`.
fn journal_dir_from_env() -> Option<PathBuf> {
    std::env::var_os("IPAS_JOURNAL_DIR").map(PathBuf::from)
}

/// The artifact-store directory selected via `IPAS_STORE_DIR`.
fn store_dir_from_env() -> Option<PathBuf> {
    std::env::var_os(ipas_store::STORE_DIR_ENV).map(PathBuf::from)
}

/// One evaluated variant, flattened for caching and table printing.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSummary {
    /// Variant name (`unprotected`, `full`, `IPAS#k`, `Baseline#k`).
    pub name: String,
    /// Fraction of runs per outcome, in [`Outcome::ALL`] order.
    pub outcome_fractions: [f64; 4],
    /// Dynamic-instruction slowdown vs the unprotected run.
    pub slowdown: f64,
    /// Fraction of duplicable instructions duplicated.
    pub dup_fraction: f64,
    /// SOC percentage.
    pub soc_pct: f64,
    /// SOC reduction vs unprotected, percent.
    pub soc_reduction_pct: f64,
}

/// Cached per-workload experiment results.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// Workload name.
    pub workload: String,
    /// Evaluation campaign size (for margins of error).
    pub eval_runs: usize,
    /// Training-set SOC fraction.
    pub training_soc_fraction: f64,
    /// Training-set symptom fraction.
    pub training_symptom_fraction: f64,
    /// Classifier training wall time, seconds.
    pub training_secs: f64,
    /// Classification + duplication wall time, seconds.
    pub duplication_secs: f64,
    /// All variants: unprotected, full, IPAS#1.., Baseline#1..
    pub variants: Vec<VariantSummary>,
}

impl ExperimentSummary {
    /// The unprotected variant.
    pub fn unprotected(&self) -> &VariantSummary {
        &self.variants[0]
    }

    /// The full-duplication variant.
    pub fn full(&self) -> &VariantSummary {
        &self.variants[1]
    }

    /// The IPAS variants.
    pub fn ipas(&self) -> Vec<&VariantSummary> {
        self.variants
            .iter()
            .filter(|v| v.name.starts_with("IPAS"))
            .collect()
    }

    /// The baseline variants.
    pub fn baseline(&self) -> Vec<&VariantSummary> {
        self.variants
            .iter()
            .filter(|v| v.name.starts_with("Baseline"))
            .collect()
    }

    /// The ideal-point best variant among `which` (§6.3).
    pub fn best_of<'a>(&self, which: &[&'a VariantSummary]) -> Option<&'a VariantSummary> {
        let points: Vec<(f64, f64)> = which
            .iter()
            .map(|v| (v.slowdown, v.soc_reduction_pct))
            .collect();
        ipas_core::ideal_point_index(&points).map(|i| which[i])
    }

    /// 95% margin of error for the unprotected SOC fraction (§6.2).
    pub fn soc_margin(&self) -> f64 {
        margin_of_error(self.unprotected().soc_pct / 100.0, self.eval_runs)
    }

    fn from_result(r: &ExperimentResult, eval_runs: usize) -> Self {
        let mut variants = Vec::new();
        let mut push = |v: &ipas_core::VariantResult| {
            variants.push(VariantSummary {
                name: v.name.clone(),
                outcome_fractions: [
                    v.fraction(Outcome::Symptom),
                    v.fraction(Outcome::Detected),
                    v.fraction(Outcome::Masked),
                    v.fraction(Outcome::Soc),
                ],
                slowdown: v.slowdown,
                dup_fraction: v.stats.duplicated_fraction(),
                soc_pct: v.soc_pct,
                soc_reduction_pct: v.soc_reduction_pct,
            });
        };
        push(&r.unprotected);
        push(&r.full);
        for v in &r.ipas {
            push(v);
        }
        for v in &r.baseline {
            push(v);
        }
        ExperimentSummary {
            workload: r.workload.clone(),
            eval_runs,
            training_soc_fraction: r.training_soc_fraction,
            training_symptom_fraction: r.training_symptom_fraction,
            training_secs: r.training_time.as_secs_f64(),
            duplication_secs: r.duplication_time.as_secs_f64(),
            variants,
        }
    }
}

fn cache_path(profile: Profile) -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join(format!("ipas_results_{}.tsv", profile.tag()))
}

/// Serializes summaries to the cache format (TSV, one variant per line).
pub fn to_tsv(summaries: &[ExperimentSummary]) -> String {
    let mut out = String::new();
    for s in summaries {
        let _ = writeln!(
            out,
            "#workload\t{}\t{}\t{}\t{}\t{}\t{}",
            s.workload,
            s.eval_runs,
            s.training_soc_fraction,
            s.training_symptom_fraction,
            s.training_secs,
            s.duplication_secs
        );
        for v in &s.variants {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                v.name,
                v.outcome_fractions[0],
                v.outcome_fractions[1],
                v.outcome_fractions[2],
                v.outcome_fractions[3],
                v.slowdown,
                v.dup_fraction,
                v.soc_pct,
                v.soc_reduction_pct
            );
        }
    }
    out
}

/// Parses the cache format back.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn from_tsv(text: &str) -> Result<Vec<ExperimentSummary>, String> {
    let mut out: Vec<ExperimentSummary> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let fields: Vec<&str> = line.split('\t').collect();
        let bad = |what: &str| format!("line {}: bad {what}", ln + 1);
        if line.starts_with("#workload") {
            if fields.len() != 7 {
                return Err(bad("workload header"));
            }
            out.push(ExperimentSummary {
                workload: fields[1].to_string(),
                eval_runs: fields[2].parse().map_err(|_| bad("eval_runs"))?,
                training_soc_fraction: fields[3].parse().map_err(|_| bad("soc fraction"))?,
                training_symptom_fraction: fields[4].parse().map_err(|_| bad("sym fraction"))?,
                training_secs: fields[5].parse().map_err(|_| bad("training secs"))?,
                duplication_secs: fields[6].parse().map_err(|_| bad("dup secs"))?,
                variants: Vec::new(),
            });
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        if fields.len() != 9 {
            return Err(bad("variant row"));
        }
        let cur = out.last_mut().ok_or_else(|| bad("variant before header"))?;
        let f = |i: usize| -> Result<f64, String> { fields[i].parse().map_err(|_| bad("number")) };
        cur.variants.push(VariantSummary {
            name: fields[0].to_string(),
            outcome_fractions: [f(1)?, f(2)?, f(3)?, f(4)?],
            slowdown: f(5)?,
            dup_fraction: f(6)?,
            soc_pct: f(7)?,
            soc_reduction_pct: f(8)?,
        });
    }
    Ok(out)
}

/// Runs (or loads from cache) the full §6 experiment for every workload.
pub fn load_or_run_experiments(profile: Profile) -> Vec<ExperimentSummary> {
    let path = cache_path(profile);
    let fresh = std::env::var("IPAS_FRESH").is_ok();
    if !fresh {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(summaries) = from_tsv(&text) {
                if summaries.len() == Kind::ALL.len() {
                    eprintln!("[ipas-bench] using cached results from {}", path.display());
                    return summaries;
                }
            }
        }
    }
    let opts = profile.options();
    let mut summaries = Vec::new();
    for kind in Kind::ALL {
        eprintln!("[ipas-bench] running experiment for {} ...", kind.name());
        let started = std::time::Instant::now();
        let workload = kind
            .build(kind.base_input())
            .expect("workload construction is infallible at base inputs");
        let result = run_experiment(&workload, &opts)
            .unwrap_or_else(|e| panic!("{} experiment failed: {e}", kind.name()));
        eprintln!(
            "[ipas-bench]   {} done in {:.1}s",
            kind.name(),
            started.elapsed().as_secs_f64()
        );
        summaries.push(ExperimentSummary::from_result(&result, opts.eval_runs));
    }
    let _ = std::fs::write(&path, to_tsv(&summaries));
    summaries
}

/// Deterministically retrains the classifiers for `kind` (same seed and
/// scale as the cached experiment) and returns the module protected with
/// the configuration named `config_name` (e.g. `"IPAS#3"` from
/// [`ExperimentSummary::best_of`]).
///
/// Figures 8 and 9 use this to recover the Table 4 best configuration's
/// protected binary without caching trained models.
pub fn protect_with_named_config(
    kind: Kind,
    profile: Profile,
    config_name: &str,
) -> (ipas_ir::Module, ipas_core::DuplicationStats) {
    let opts = profile.options();
    let workload = kind.build(kind.base_input()).expect("base workload builds");
    let store = opts
        .store_dir
        .as_ref()
        .map(ipas_store::Store::open)
        .transpose()
        .expect("artifact store opens");
    let train_cfg = ipas_faultsim::CampaignConfig {
        runs: opts.training_runs,
        seed: opts.seed,
        threads: opts.threads,
        engine: opts.engine,
        fault_model: opts.fault_model,
    };
    let campaign_fp = ipas_core::campaign_fingerprint(&workload.module, &train_cfg);
    // The campaign, training set, and models share keys with the cached
    // experiment, so after `load_or_run_experiments` with a store this
    // retraining resolves entirely from artifacts. Without a store, it
    // still reuses the experiment's checkpoint journal.
    let run_training = || {
        let campaign_opts = ipas_faultsim::CampaignOptions {
            journal: opts.journal_dir.as_deref().map(|dir| {
                let _ = std::fs::create_dir_all(dir);
                ipas_core::campaign_journal_path(dir, &workload.name, "training", opts.seed)
            }),
            ..ipas_faultsim::CampaignOptions::default()
        };
        let training = ipas_faultsim::run_campaign_with(&workload, &train_cfg, &campaign_opts)
            .unwrap_or_else(|e| panic!("{} training campaign failed: {e}", kind.name()));
        Ok::<_, std::convert::Infallible>(ipas_core::training_set_artifact(&workload, &training))
    };
    let set = match &store {
        Some(store) => {
            store
                .memoize(&ipas_store::Key::of(&campaign_fp), run_training)
                .unwrap_or_else(|e| match e {
                    ipas_store::MemoError::Store(e) => panic!("artifact store failed: {e}"),
                    ipas_store::MemoError::Compute(e) => match e {},
                })
                .0
        }
        None => match run_training() {
            Ok(set) => set,
        },
    };
    let index: usize = config_name
        .rsplit('#')
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .expect("config names look like IPAS#k")
        - 1;
    let training_fp = ipas_core::training_fingerprint(
        &campaign_fp,
        ipas_core::LabelKind::SocGenerating,
        &opts.grid,
        opts.top_n,
    );
    let (models, _) = ipas_core::memoized_models(store.as_ref(), &training_fp, opts.top_n, || {
        let data = ipas_core::dataset_from_artifact(&set, ipas_core::LabelKind::SocGenerating);
        ipas_core::train_top_configs(&data, &opts.grid, opts.top_n)
    })
    .expect("artifact store writes models");
    let model = models
        .into_iter()
        .nth(index)
        .expect("best index within top-N");
    let model_key = ipas_store::Key::ranked(&training_fp, index);
    let (module, stats, _) = ipas_core::memoized_protect(
        store.as_ref(),
        &workload.module,
        &ipas_core::ProtectionPolicy::Ipas(model),
        Some(&model_key),
    )
    .expect("duplication pass succeeds");
    (module, stats)
}

/// Prints a simple aligned table: `header` then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> ExperimentSummary {
        ExperimentSummary {
            workload: "TOY".into(),
            eval_runs: 128,
            training_soc_fraction: 0.07,
            training_symptom_fraction: 0.3,
            training_secs: 1.25,
            duplication_secs: 0.5,
            variants: vec![
                VariantSummary {
                    name: "unprotected".into(),
                    outcome_fractions: [0.3, 0.0, 0.6, 0.1],
                    slowdown: 1.0,
                    dup_fraction: 0.0,
                    soc_pct: 10.0,
                    soc_reduction_pct: 0.0,
                },
                VariantSummary {
                    name: "full".into(),
                    outcome_fractions: [0.3, 0.15, 0.54, 0.01],
                    slowdown: 1.9,
                    dup_fraction: 1.0,
                    soc_pct: 1.0,
                    soc_reduction_pct: 90.0,
                },
                VariantSummary {
                    name: "IPAS#1".into(),
                    outcome_fractions: [0.3, 0.08, 0.6, 0.02],
                    slowdown: 1.15,
                    dup_fraction: 0.2,
                    soc_pct: 2.0,
                    soc_reduction_pct: 80.0,
                },
            ],
        }
    }

    #[test]
    fn tsv_round_trips() {
        let s = vec![sample_summary()];
        let text = to_tsv(&s);
        let back = from_tsv(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn tsv_rejects_garbage() {
        assert!(from_tsv("not\ta\tvalid\trow").is_err());
        assert!(from_tsv("#workload\tonly\tthree").is_err());
    }

    #[test]
    fn accessors_select_variants() {
        let s = sample_summary();
        assert_eq!(s.unprotected().name, "unprotected");
        assert_eq!(s.full().name, "full");
        assert_eq!(s.ipas().len(), 1);
        assert!(s.baseline().is_empty());
        assert!(s.soc_margin() > 0.0);
        let best = s.best_of(&s.ipas()).unwrap();
        assert_eq!(best.name, "IPAS#1");
    }

    #[test]
    fn profiles_have_increasing_scale() {
        let q = Profile::Quick.options();
        let d = Profile::Default.options();
        let p = Profile::Paper.options();
        assert!(q.training_runs < d.training_runs);
        assert!(d.training_runs < p.training_runs);
        assert_eq!(p.training_runs, 2500);
        assert_eq!(p.eval_runs, 1024);
        assert_eq!(p.grid.num_c * p.grid.num_gamma, 500);
    }
}

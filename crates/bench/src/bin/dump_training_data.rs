//! Exports a workload's labeled training set as CSV (31 features +
//! outcome + SOC/symptom labels), for offline analysis with external ML
//! tooling.
//!
//! Usage: `dump_training_data [workload] [runs]` — workload is one of
//! `comd|hpccg|amg|fft|is` (default `hpccg`), runs defaults to the
//! profile's training size. Output goes to stdout.

use ipas_analysis::{Feature, FeatureExtractor};
use ipas_bench::Profile;
use ipas_faultsim::{run_campaign, CampaignConfig, Outcome};
use ipas_workloads::Kind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = match args.get(1).map(String::as_str) {
        Some("comd") => Kind::Comd,
        Some("amg") => Kind::Amg,
        Some("fft") => Kind::Fft,
        Some("is") => Kind::Is,
        _ => Kind::Hpccg,
    };
    let opts = Profile::from_env().options();
    let runs = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(opts.training_runs);

    let workload = kind.build(kind.base_input()).expect("workload builds");
    let campaign = run_campaign(
        &workload,
        &CampaignConfig {
            runs,
            seed: opts.seed,
            threads: opts.threads,
        },
    )
    .expect("training campaign completes");
    let extractor = FeatureExtractor::new(&workload.module);

    // Header.
    let mut header: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
    header.extend_from_slice(&["bit", "outcome", "soc_label", "symptom_label"]);
    println!("{}", header.join(","));

    for rec in &campaign.records {
        let (fid, iid) = rec.site;
        let fv = extractor.extract(fid, iid);
        let mut cells: Vec<String> = fv.as_slice().iter().map(|v| v.to_string()).collect();
        cells.push(rec.bit.to_string());
        cells.push(rec.outcome.label().to_string());
        cells.push(((rec.outcome == Outcome::Soc) as u8).to_string());
        cells.push(((rec.outcome == Outcome::Symptom) as u8).to_string());
        println!("{}", cells.join(","));
    }
    eprintln!(
        "[dump] {}: {} rows, {:.1}% SOC",
        kind.name(),
        campaign.records.len(),
        campaign.fraction(Outcome::Soc) * 100.0
    );
}

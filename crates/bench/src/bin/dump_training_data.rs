//! Exports a workload's labeled training set in the artifact store's
//! `TrainingSet` format (31 features + bit + outcome + SOC/symptom
//! labels), for archival and offline analysis.
//!
//! Usage:
//!
//! * `dump_training_data [workload] [runs]` — run (or, with
//!   `IPAS_STORE_DIR` set, memoize) a training campaign and print the
//!   `training-set` artifact to stdout. Workload is one of
//!   `comd|hpccg|amg|fft|is` (default `hpccg`); runs defaults to the
//!   profile's training size.
//! * `dump_training_data decode <file>` — decode a saved artifact and
//!   print its rows as CSV for external ML tooling.

use ipas_bench::Profile;
use ipas_faultsim::{run_campaign, CampaignConfig};
use ipas_store::{Key, MemoError, Store, TrainingSet};
use ipas_workloads::Kind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("decode") {
        let path = args.get(2).unwrap_or_else(|| {
            eprintln!("usage: dump_training_data decode <artifact-file>");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("[dump] cannot read {path}: {e}");
            std::process::exit(1);
        });
        let set: TrainingSet = ipas_store::artifact::decode_from(&text, path).unwrap_or_else(|e| {
            eprintln!("[dump] cannot decode {path}: {e}");
            std::process::exit(1);
        });
        print!("{}", set.to_csv());
        eprintln!(
            "[dump] {}: {} rows, {} SOC, {} symptom",
            set.workload,
            set.rows.len(),
            set.num_soc(),
            set.num_symptom()
        );
        return;
    }

    let kind = match args.get(1).map(String::as_str) {
        Some("comd") => Kind::Comd,
        Some("amg") => Kind::Amg,
        Some("fft") => Kind::Fft,
        Some("is") => Kind::Is,
        _ => Kind::Hpccg,
    };
    let opts = Profile::from_env().options();
    let runs = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(opts.training_runs);

    let workload = kind.build(kind.base_input()).expect("workload builds");
    let config = CampaignConfig {
        runs,
        seed: opts.seed,
        threads: opts.threads,
        ..CampaignConfig::default()
    };
    let run_training = || -> Result<TrainingSet, ipas_faultsim::CampaignError> {
        let campaign = run_campaign(&workload, &config)?;
        Ok(ipas_core::training_set_artifact(&workload, &campaign))
    };
    let store = Store::from_env().unwrap_or_else(|e| {
        eprintln!("[dump] artifact store unavailable: {e}");
        std::process::exit(1);
    });
    let set = match &store {
        Some(store) => {
            let key = Key::of(&ipas_core::campaign_fingerprint(&workload.module, &config));
            let (set, outcome) = store.memoize(&key, run_training).unwrap_or_else(|e| {
                let msg = match e {
                    MemoError::Store(e) => e.to_string(),
                    MemoError::Compute(e) => e.to_string(),
                };
                eprintln!("[dump] training campaign failed: {msg}");
                std::process::exit(1);
            });
            eprintln!(
                "[dump] store: campaign {} ({})",
                outcome.label(),
                key.short()
            );
            set
        }
        None => run_training().unwrap_or_else(|e| {
            eprintln!("[dump] training campaign failed: {e}");
            std::process::exit(1);
        }),
    };

    print!("{}", ipas_store::artifact::encode(&set));
    eprintln!(
        "[dump] {}: {} rows, {} SOC, {} symptom",
        kind.name(),
        set.rows.len(),
        set.num_soc(),
        set.num_symptom()
    );
}

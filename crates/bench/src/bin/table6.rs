//! Table 6: training time (workflow step 3) and classification +
//! duplication time (step 4) per workload.
//!
//! Paper values: training ≈ 30s on every code (it depends only on the
//! 2,500-sample training-set size), duplication 0.68–6.73s (it scales
//! with the code size). The shapes to reproduce: training time roughly
//! constant across codes; duplication time ordered by code size.

use ipas_bench::{load_or_run_experiments, print_table, Profile};

fn main() {
    let summaries = load_or_run_experiments(Profile::from_env());
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                format!("{:.2}", s.training_secs),
                format!("{:.3}", s.duplication_secs),
                format!("{:.2}", s.training_secs + s.duplication_secs),
            ]
        })
        .collect();
    print_table(
        "Table 6: training and duplication time (seconds)",
        &["code", "training (s)", "duplication (s)", "total (s)"],
        &rows,
    );
}

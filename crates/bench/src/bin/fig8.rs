//! Figure 8: strong-scaling slowdown of the best IPAS configuration as
//! the MPI rank count grows.
//!
//! Paper shape: the slowdown stays essentially flat with scale, because
//! IPAS instruments computation only — communication is untouched. The
//! reproduction measures the critical-path dynamic instruction count
//! (max over ranks) of the protected vs unprotected job under the
//! simulated MPI runtime.

use ipas_bench::{load_or_run_experiments, print_table, protect_with_named_config, Profile};
use ipas_interp::{RtVal, RunConfig};
use ipas_mpisim::run_mpi_job;
use ipas_workloads::Kind;

/// FFT requires the rank count to divide n; every workload divides work
/// in blocks, so powers of two up to 16 are safe at the base inputs.
const RANKS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let profile = Profile::from_env();
    let summaries = load_or_run_experiments(profile);
    let mut rows = Vec::new();
    for (kind, summary) in Kind::ALL.iter().zip(&summaries) {
        let best = summary
            .best_of(&summary.ipas())
            .expect("IPAS configs exist")
            .name
            .clone();
        eprintln!("[fig8] {}: protecting with {best}", kind.name());
        let (protected, _) = protect_with_named_config(*kind, profile, &best);
        let config = RunConfig {
            entry: "main".into(),
            args: vec![RtVal::I64(kind.base_input())],
            ..RunConfig::default()
        };
        let mut cells = vec![format!("{} ({best})", kind.name())];
        for ranks in RANKS {
            let base = run_mpi_job(
                &kind.build(kind.base_input()).unwrap().module,
                ranks,
                &config,
                None,
            )
            .expect("unprotected job runs");
            let prot = run_mpi_job(&protected, ranks, &config, None).expect("protected job runs");
            assert!(
                prot.status.is_completed(),
                "{}: protected job failed at {ranks} ranks",
                kind.name()
            );
            cells.push(format!(
                "{:.3}x",
                prot.max_rank_insts as f64 / base.max_rank_insts as f64
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 8: slowdown (critical-path insts, protected/unprotected) vs MPI ranks",
        &[
            "code (config)",
            "1 rank",
            "2 ranks",
            "4 ranks",
            "8 ranks",
            "16 ranks",
        ],
        &rows,
    );
    println!("\nexpected shape: near-constant slowdown across rank counts");
}

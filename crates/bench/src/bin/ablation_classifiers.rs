//! Ablation for §4.3.1: why an SVM?
//!
//! The paper states that SVMs were selected over decision trees and
//! nearest neighbor for their handling of class-imbalanced data. This
//! binary reruns that comparison on real training campaigns: all three
//! classifiers are trained on the same SOC-labeled data and scored with
//! the Eq. 1 F-score under stratified cross validation.
//!
//! Expected shape: the class-weighted SVM dominates on minority-class
//! accuracy (acc1), which drives the F-score; the unweighted tree and
//! k-NN collapse toward the majority class as imbalance grows.

use ipas_bench::{print_table, Profile};
use ipas_core::{build_training_set, LabelKind};
use ipas_faultsim::{run_campaign, CampaignConfig};
use ipas_svm::tree::{DecisionTree, TreeParams};
use ipas_svm::{f_score, per_class_accuracy, Classifier, Dataset, Knn, Scaler, Svm, SvmParams};
use ipas_workloads::Kind;

fn cross_validate<C: Classifier>(data: &Dataset, train: impl Fn(&Dataset) -> C) -> (f64, f64, f64) {
    let mut predicted = Vec::new();
    let mut truth = Vec::new();
    for (tr, te) in data.stratified_kfold(5, 7) {
        let train_set = data.subset(&tr);
        let test_set = data.subset(&te);
        let scaler = Scaler::fit(&train_set);
        let model = train(&scaler.transform(&train_set));
        let test_scaled = scaler.transform(&test_set);
        predicted.extend(model.predict_batch(test_scaled.features()));
        truth.extend_from_slice(test_scaled.labels());
    }
    let acc = per_class_accuracy(&predicted, &truth);
    (acc.acc1, acc.acc2, f_score(acc))
}

fn main() {
    let opts = Profile::from_env().options();
    let mut rows = Vec::new();
    for kind in Kind::ALL {
        eprintln!("[ablation] {}", kind.name());
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let campaign = run_campaign(
            &workload,
            &CampaignConfig {
                runs: opts.training_runs,
                seed: opts.seed,
                threads: opts.threads,
                ..CampaignConfig::default()
            },
        )
        .expect("training campaign completes");
        let data = build_training_set(&workload, &campaign.records, LabelKind::SocGenerating);
        if data.num_positive() == 0 || data.num_positive() == data.len() {
            eprintln!("[ablation]   degenerate labels, skipping");
            continue;
        }

        let (s1, s2, sf) = cross_validate(&data, |d| {
            Svm::train(d, &SvmParams::new(100.0, 0.05).balanced_for(d))
        });
        let (t1, t2, tf) =
            cross_validate(&data, |d| DecisionTree::train(d, &TreeParams::default()));
        let (k1, k2, kf) = cross_validate(&data, |d| Knn::train(d, 5));

        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}%", data.positive_fraction() * 100.0),
            format!("{sf:.3} ({s1:.2}/{s2:.2})"),
            format!("{tf:.3} ({t1:.2}/{t2:.2})"),
            format!("{kf:.3} ({k1:.2}/{k2:.2})"),
        ]);
    }
    print_table(
        "Classifier ablation (§4.3.1): F-score (acc1/acc2) under 5-fold CV",
        &[
            "code",
            "SOC rate",
            "SVM (weighted)",
            "decision tree",
            "5-NN",
        ],
        &rows,
    );
}

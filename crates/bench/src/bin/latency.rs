//! Detection latency (§2.2): how far does an error propagate before it
//! is caught?
//!
//! The paper argues for instruction duplication over verification-only
//! detection because duplication catches errors "close to their
//! occurrence, enabling the use of recent checkpoints rather than
//! wasting time restarting the entire computation". This binary
//! quantifies that: for each workload it compares
//!
//! * the detection latency of full duplication's checks (instructions
//!   between injection and the failed `__ipas_check`), against
//! * the latency a verification-only scheme pays for the same faults —
//!   the whole remaining run, since verification happens at the end.

use ipas_bench::{print_table, Profile};
use ipas_core::ProtectionPolicy;
use ipas_faultsim::{run_campaign, CampaignConfig, Outcome};
use ipas_workloads::Kind;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let opts = Profile::from_env().options();
    let eval = CampaignConfig {
        runs: opts.eval_runs,
        seed: opts.seed ^ 0x1A7E,
        threads: opts.threads,
        ..CampaignConfig::default()
    };
    let mut rows = Vec::new();
    for kind in Kind::ALL {
        eprintln!("[latency] {}", kind.name());
        let workload = kind.build(kind.base_input()).expect("workload builds");

        // Verification-only latencies: SOC runs of the unprotected code
        // are only caught by the end-of-run verification.
        let unprot = run_campaign(&workload, &eval).expect("campaign completes");
        let mut verify_lat: Vec<u64> = unprot
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::Soc)
            .map(|r| r.latency)
            .collect();
        verify_lat.sort_unstable();

        // Duplication latencies: Detected runs of the protected code.
        let (protected, _) = ProtectionPolicy::FullDuplication.apply(&workload.module);
        let wl = workload
            .with_module(&format!("{}-full", kind.name()), protected)
            .expect("protected module runs");
        let prot = run_campaign(&wl, &eval).expect("campaign completes");
        let mut dup_lat: Vec<u64> = prot
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::Detected)
            .map(|r| r.latency)
            .collect();
        dup_lat.sort_unstable();

        rows.push(vec![
            kind.name().to_string(),
            dup_lat.len().to_string(),
            percentile(&dup_lat, 0.5).to_string(),
            percentile(&dup_lat, 0.95).to_string(),
            verify_lat.len().to_string(),
            percentile(&verify_lat, 0.5).to_string(),
            percentile(&verify_lat, 0.95).to_string(),
        ]);
    }
    print_table(
        "Detection latency in dynamic instructions (duplication checks vs end-of-run verification)",
        &[
            "code",
            "dup n",
            "dup p50",
            "dup p95",
            "verify n",
            "verify p50",
            "verify p95",
        ],
        &rows,
    );
    println!("\nexpected shape: duplication latencies orders of magnitude below verification");
}

//! Sampling-mode ablation: dynamic-instance-uniform vs static-site-uniform
//! fault injection.
//!
//! FlipIt (and therefore the paper) samples dynamic instruction
//! *instances* uniformly, so hot loops dominate both the training set and
//! the evaluation statistics. This ablation repeats the campaign with
//! static-site-uniform sampling and reports (a) how the outcome
//! distribution shifts and (b) how the training-set class balance
//! changes — the bias a practitioner should know about before reading
//! Figure 5 as a statement about *code* rather than about *executions*.

use ipas_bench::{print_table, Profile};
use ipas_faultsim::{run_campaign_sampled, CampaignConfig, Outcome, SamplingMode};
use ipas_workloads::Kind;

fn main() {
    let opts = Profile::from_env().options();
    let cfg = CampaignConfig {
        runs: opts.training_runs,
        seed: opts.seed ^ 0x5A11,
        threads: opts.threads,
        ..CampaignConfig::default()
    };
    let mut rows = Vec::new();
    for kind in Kind::ALL {
        eprintln!("[ablation] {}", kind.name());
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let dynamic = run_campaign_sampled(&workload, &cfg, SamplingMode::DynamicUniform)
            .expect("campaign completes");
        let statics = run_campaign_sampled(&workload, &cfg, SamplingMode::StaticUniform)
            .expect("campaign completes");
        let distinct = |r: &ipas_faultsim::CampaignResult| {
            let mut sites: Vec<_> = r.records.iter().map(|x| x.site).collect();
            sites.sort();
            sites.dedup();
            sites.len()
        };
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}%", dynamic.fraction(Outcome::Soc) * 100.0),
            format!("{:.1}%", statics.fraction(Outcome::Soc) * 100.0),
            format!("{:.1}%", dynamic.fraction(Outcome::Symptom) * 100.0),
            format!("{:.1}%", statics.fraction(Outcome::Symptom) * 100.0),
            distinct(&dynamic).to_string(),
            distinct(&statics).to_string(),
        ]);
    }
    print_table(
        &format!(
            "Sampling ablation over {} injections (dyn = paper's instance-uniform, stat = site-uniform)",
            cfg.runs
        ),
        &[
            "code",
            "SOC dyn",
            "SOC stat",
            "symptom dyn",
            "symptom stat",
            "sites dyn",
            "sites stat",
        ],
        &rows,
    );
}

//! Figure 5: coverage results — the outcome breakdown (symptom /
//! detected by duplication / masked / SOC) for every protection variant
//! of every workload, with the §6.2 margins of error.
//!
//! Paper shape to look for: the unprotected SOC sits between ~2.6% and
//! ~10.8%; full duplication and both selective schemes push most SOC
//! into the *detected* category; Baseline detects more than IPAS because
//! it protects more instructions.

use ipas_bench::{load_or_run_experiments, print_table, Profile};

fn main() {
    let summaries = load_or_run_experiments(Profile::from_env());
    for s in &summaries {
        let rows: Vec<Vec<String>> = s
            .variants
            .iter()
            .map(|v| {
                vec![
                    v.name.clone(),
                    format!("{:.1}%", v.outcome_fractions[0] * 100.0),
                    format!("{:.1}%", v.outcome_fractions[1] * 100.0),
                    format!("{:.1}%", v.outcome_fractions[2] * 100.0),
                    format!("{:.2}%", v.outcome_fractions[3] * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 5 ({}): outcome coverage over {} injections (unprotected SOC {:.2}% ± {:.2}%)",
                s.workload,
                s.eval_runs,
                s.unprotected().soc_pct,
                s.soc_margin() * 100.0
            ),
            &["variant", "symptom", "detected", "masked", "SOC"],
            &rows,
        );
    }
    println!(
        "\ntraining class balance (paper: 3-10% SOC): {}",
        summaries
            .iter()
            .map(|s| format!("{} {:.1}%", s.workload, s.training_soc_fraction * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

//! Figure 6: SOC reduction (%) versus slowdown for the top-5 IPAS and
//! Baseline configurations of every workload.
//!
//! Paper shape: IPAS configurations populate the low-slowdown region
//! (1.04×–1.35× at the ideal-point picks) with SOC reductions comparable
//! to Baseline, whose points sit at distinctly higher slowdowns
//! (1.66×–2.1×). IPAS shows more scatter across configurations than
//! Baseline (its training data is more class-imbalanced).

use ipas_bench::{load_or_run_experiments, print_table, Profile};

fn main() {
    let summaries = load_or_run_experiments(Profile::from_env());
    for s in &summaries {
        let mut rows = Vec::new();
        for v in s.ipas().iter().chain(s.baseline().iter()) {
            rows.push(vec![
                v.name.clone(),
                format!("{:.3}x", v.slowdown),
                format!("{:.1}%", v.soc_reduction_pct),
                format!("{:.2}%", v.soc_pct),
            ]);
        }
        // Full duplication for context (the upper-cost anchor).
        let f = s.full();
        rows.push(vec![
            f.name.clone(),
            format!("{:.3}x", f.slowdown),
            format!("{:.1}%", f.soc_reduction_pct),
            format!("{:.2}%", f.soc_pct),
        ]);
        print_table(
            &format!("Figure 6 ({}): SOC reduction vs slowdown", s.workload),
            &["config", "slowdown", "SOC reduction", "residual SOC"],
            &rows,
        );
    }
}

//! Check-placement ablation (§4.4): IPAS's path-end checks vs
//! SWIFT-style per-instruction checks.
//!
//! The paper deliberately places one comparison at the end of each
//! duplication path instead of checking after every duplicated
//! instruction: "an error could propagate slightly further ... but it
//! would always be caught before a branch instruction". This ablation
//! quantifies the trade: per-instruction checks cost more instructions
//! for (at most) marginally better detection.

use ipas_bench::{print_table, Profile};
use ipas_core::{protect_module_placed, CheckPlacement};
use ipas_faultsim::{run_campaign, CampaignConfig, Outcome};
use ipas_workloads::Kind;

fn main() {
    let opts = Profile::from_env().options();
    let eval = CampaignConfig {
        runs: opts.eval_runs,
        seed: opts.seed ^ 0x91AC,
        threads: opts.threads,
        ..CampaignConfig::default()
    };
    let mut rows = Vec::new();
    for kind in Kind::ALL {
        eprintln!("[ablation] {}", kind.name());
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let mut cells = vec![kind.name().to_string()];
        for placement in [CheckPlacement::PathEnd, CheckPlacement::EveryInstruction] {
            let (module, stats) =
                protect_module_placed(&workload.module, &mut |_, _, _| true, placement);
            let wl = workload
                .with_module(&format!("{}-{placement:?}", kind.name()), module)
                .expect("protected module runs");
            let campaign = run_campaign(&wl, &eval).expect("campaign completes");
            cells.push(format!(
                "{:.2}x / {:.1}% det / {} checks",
                wl.nominal_insts as f64 / workload.nominal_insts as f64,
                campaign.fraction(Outcome::Detected) * 100.0,
                stats.checks
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Check placement ablation (full duplication): slowdown / detected% / static checks",
        &["code", "path-end (IPAS)", "per-instruction (SWIFT-style)"],
        &rows,
    );
}

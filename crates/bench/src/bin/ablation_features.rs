//! Feature-group ablation: how much does each category of Table 1
//! contribute to SOC prediction?
//!
//! Trains the class-weighted SVM on cumulative feature groups —
//! instruction-only (features 1–12), + basic block (13–19), + function
//! (20–24), + forward slice (25–31) — and reports cross-validated
//! F-scores. The paper motivates the slice features as capturing error
//! propagation; this ablation quantifies that design choice.

use ipas_bench::{print_table, Profile};
use ipas_core::{build_training_set, LabelKind};
use ipas_faultsim::{run_campaign, CampaignConfig};
use ipas_svm::{f_score, per_class_accuracy, Classifier, Dataset, Scaler, Svm, SvmParams};
use ipas_workloads::Kind;

/// Cumulative group boundaries in Table 1 order.
const GROUPS: [(&str, usize); 4] = [
    ("instruction", 12),
    ("+block", 19),
    ("+function", 24),
    ("+slice (all)", 31),
];

fn restrict(data: &Dataset, dims: usize) -> Dataset {
    let x = data.features().iter().map(|r| r[..dims].to_vec()).collect();
    Dataset::new(x, data.labels().to_vec()).expect("rectangular")
}

fn cv_f_score(data: &Dataset) -> f64 {
    let mut predicted = Vec::new();
    let mut truth = Vec::new();
    for (tr, te) in data.stratified_kfold(5, 11) {
        let train_set = data.subset(&tr);
        let test_set = data.subset(&te);
        let scaler = Scaler::fit(&train_set);
        let model = Svm::train(
            &scaler.transform(&train_set),
            &SvmParams::new(100.0, 0.05).balanced_for(&train_set),
        );
        predicted.extend(model.predict_batch(scaler.transform(&test_set).features()));
        truth.extend_from_slice(test_set.labels());
    }
    f_score(per_class_accuracy(&predicted, &truth))
}

fn main() {
    let opts = Profile::from_env().options();
    let mut rows = Vec::new();
    for kind in Kind::ALL {
        eprintln!("[ablation] {}", kind.name());
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let campaign = run_campaign(
            &workload,
            &CampaignConfig {
                runs: opts.training_runs,
                seed: opts.seed,
                threads: opts.threads,
                ..CampaignConfig::default()
            },
        )
        .expect("training campaign completes");
        let data = build_training_set(&workload, &campaign.records, LabelKind::SocGenerating);
        if data.num_positive() == 0 || data.num_positive() == data.len() {
            eprintln!("[ablation]   degenerate labels, skipping");
            continue;
        }
        let mut cells = vec![kind.name().to_string()];
        for (_, dims) in GROUPS {
            cells.push(format!("{:.3}", cv_f_score(&restrict(&data, dims))));
        }
        rows.push(cells);
    }
    print_table(
        "Feature-group ablation: CV F-score with cumulative Table 1 groups",
        &["code", GROUPS[0].0, GROUPS[1].0, GROUPS[2].0, GROUPS[3].0],
        &rows,
    );
}

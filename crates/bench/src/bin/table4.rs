//! Table 4: best configurations by the ideal-point criterion (§6.3) —
//! SOC reduction and slowdown of the configuration closest to the point
//! (slowdown = 1.0, reduction = 100%).
//!
//! Paper values for reference:
//!
//! | code  | IPAS red. | Base red. | IPAS slow. | Base slow. |
//! |-------|-----------|-----------|------------|------------|
//! | CoMD  | 67.58     | 62.74     | 1.17       | 2.09       |
//! | HPCCG | 81.42     | 90.96     | 1.18       | 1.66       |
//! | AMG   | 76.89     | 73.88     | 1.10       | 2.10       |
//! | FFT   | 90.02     | 88.49     | 1.35       | 1.81       |
//! | IS    | 86.88     | 84.11     | 1.04       | 1.79       |
//!
//! The shape to reproduce: comparable SOC reductions on both schemes,
//! with IPAS's slowdown substantially below Baseline's on every code.

use ipas_bench::{load_or_run_experiments, print_table, Profile};

fn main() {
    let summaries = load_or_run_experiments(Profile::from_env());
    let mut rows = Vec::new();
    for s in &summaries {
        let ipas = s.best_of(&s.ipas()).expect("top-N IPAS configs exist");
        let base = s
            .best_of(&s.baseline())
            .expect("top-N baseline configs exist");
        rows.push(vec![
            s.workload.clone(),
            format!("{:.2}", ipas.soc_reduction_pct),
            format!("{:.2}", base.soc_reduction_pct),
            format!("{:.2}", ipas.slowdown),
            format!("{:.2}", base.slowdown),
        ]);
    }
    print_table(
        "Table 4: ideal-point best configurations",
        &[
            "code",
            "IPAS SOC red (%)",
            "Baseline SOC red (%)",
            "IPAS slowdown",
            "Baseline slowdown",
        ],
        &rows,
    );
}

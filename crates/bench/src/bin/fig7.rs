//! Figure 7: average percentage of duplicated instructions for the top-5
//! configurations of IPAS and Baseline.
//!
//! Paper shape: IPAS duplicates a clearly smaller fraction of the code
//! than Baseline on every workload — that is the mechanism behind its
//! lower slowdown in Figure 6.

use ipas_bench::{load_or_run_experiments, print_table, Profile};

fn avg(vs: &[&ipas_bench::VariantSummary]) -> f64 {
    if vs.is_empty() {
        return 0.0;
    }
    vs.iter().map(|v| v.dup_fraction).sum::<f64>() / vs.len() as f64
}

fn main() {
    let summaries = load_or_run_experiments(Profile::from_env());
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            let ipas = avg(&s.ipas());
            let base = avg(&s.baseline());
            vec![
                s.workload.clone(),
                format!("{:.1}%", ipas * 100.0),
                format!("{:.1}%", base * 100.0),
                format!("{:.2}x", if ipas > 0.0 { base / ipas } else { f64::NAN }),
            ]
        })
        .collect();
    print_table(
        "Figure 7: average % of duplicated instructions (top-5 configurations)",
        &["code", "IPAS", "Baseline", "baseline/IPAS"],
        &rows,
    );
}

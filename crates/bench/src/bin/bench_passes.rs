//! Pass-pipeline throughput comparison: the historical free-function
//! optimization loop vs the [`ipas_ir::passmgr::PassManager`], emitting
//! `BENCH_passes.json`.
//!
//! For each of the five SciL workloads this harness compiles the raw
//! (unoptimized) module once, then optimizes fresh clones of it through
//! two equivalent pipelines:
//!
//! * **naive** — the historical hand-rolled loop of free functions:
//!   mem2reg, then rounds of constfold/instsimplify/cse/dce/simplifycfg
//!   until a round reports zero changes. Every dominator-tree consumer
//!   recomputes its own tree, and the loop always runs one extra
//!   all-no-op round to discover the fixpoint.
//! * **manager** — `PassManager::standard()`: the same passes with
//!   cached analyses, change-driven skipping, and no trailing no-op
//!   round.
//!
//! The harness asserts the two produce *byte-identical* printed IR
//! (otherwise the comparison is meaningless) and that the manager
//! performs strictly fewer `DomTree::compute` calls, then reports
//! best-of-reps wall time per workload and the geometric-mean speedup.
//!
//! ```text
//! cargo run --release -p ipas-bench --bin bench_passes [-- out.json]
//! ```
//!
//! Environment:
//! * `IPAS_BENCH_RUNS` — optimize_module invocations per measurement
//!   (default 40; the pipelines are fast, so one timing sample batches
//!   many invocations).
//! * `IPAS_BENCH_REPS` — interleaved repetitions; the fastest is
//!   reported (default 3).
//! * output path defaults to `BENCH_passes.json` in the current
//!   directory; pass a path argument to override.

use std::fmt::Write as _;
use std::time::Instant;

use ipas_ir::dom::DomTree;
use ipas_ir::passes;
use ipas_ir::passmgr::PassManager;
use ipas_ir::{FuncId, Function, Module};
use ipas_workloads::{sources, Kind};

/// The historical `optimize_function` loop, verbatim: every pass is a
/// free function recomputing its own analyses, and the loop exits only
/// after a full round of zero-change passes.
fn naive_optimize_function(func: &mut Function) {
    passes::promote_memory_to_registers(func);
    loop {
        let folded = passes::constant_fold(func);
        let simplified = passes::simplify_instructions(func);
        let merged = passes::eliminate_common_subexpressions(func);
        let removed = passes::eliminate_dead_code(func);
        let blocks = passes::simplify_cfg(func);
        if folded + simplified + merged + removed + blocks == 0 {
            break;
        }
    }
}

fn naive_optimize_module(module: &mut Module) {
    let ids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    for id in ids {
        naive_optimize_function(module.function_mut(id));
    }
}

fn manager_optimize_module(module: &mut Module) -> (u64, u64) {
    let mut pm = PassManager::standard();
    pm.run_module(module)
        .expect("default pipeline without verify-each cannot fail");
    (pm.stats().executions, pm.stats().skipped)
}

struct Row {
    name: &'static str,
    naive_s: f64,
    manager_s: f64,
    dom_computes_naive: u64,
    dom_computes_manager: u64,
    executions: u64,
    skipped: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_s / self.manager_s
    }
}

/// Times `runs` invocations of `optimize` on fresh clones of `base`.
fn timed<F: FnMut(&mut Module)>(base: &Module, runs: usize, mut optimize: F) -> f64 {
    let start = Instant::now();
    for _ in 0..runs {
        let mut m = base.clone();
        optimize(&mut m);
    }
    start.elapsed().as_secs_f64()
}

fn bench_workload(kind: Kind, runs: usize, reps: usize) -> Row {
    let base = ipas_lang::compile_unoptimized(sources::source(kind), kind.name())
        .unwrap_or_else(|e| panic!("{} does not compile: {e}", kind.name()));

    // Correctness gate: identical output, fewer dominator-tree builds.
    let mut naive = base.clone();
    let before = DomTree::computations();
    naive_optimize_module(&mut naive);
    let dom_computes_naive = DomTree::computations() - before;

    let mut managed = base.clone();
    let before = DomTree::computations();
    let (executions, skipped) = manager_optimize_module(&mut managed);
    let dom_computes_manager = DomTree::computations() - before;

    assert_eq!(
        naive.to_text(),
        managed.to_text(),
        "{}: pass manager diverged from the historical loop",
        kind.name()
    );
    assert!(
        dom_computes_manager < dom_computes_naive,
        "{}: analysis caching did not reduce DomTree computes ({} vs {})",
        kind.name(),
        dom_computes_manager,
        dom_computes_naive
    );

    // Interleaved best-of-reps timing (minimum estimates the code's
    // cost rather than the machine's jitter).
    let mut naive_s = f64::INFINITY;
    let mut manager_s = f64::INFINITY;
    for _ in 0..reps.max(1) {
        naive_s = naive_s.min(timed(&base, runs, naive_optimize_module));
        manager_s = manager_s.min(timed(&base, runs, |m| {
            manager_optimize_module(m);
        }));
    }

    Row {
        name: kind.name(),
        naive_s,
        manager_s,
        dom_computes_naive,
        dom_computes_manager,
        executions,
        skipped,
    }
}

fn main() {
    let runs: usize = std::env::var("IPAS_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let reps: usize = std::env::var("IPAS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_passes.json".to_string());

    let mut rows = Vec::new();
    for kind in Kind::ALL {
        eprintln!(
            "[bench_passes] {} ({runs} optimize_module calls x {reps} reps per pipeline)",
            kind.name()
        );
        rows.push(bench_workload(kind, runs, reps));
    }

    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"pass-pipeline-throughput\",");
    let _ = writeln!(json, "  \"runs_per_measure\": {runs},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"naive_s\": {:.4}, \"manager_s\": {:.4}, \
             \"speedup\": {:.3}, \"dom_computes_naive\": {}, \"dom_computes_manager\": {}, \
             \"executions\": {}, \"skipped\": {}}}{}",
            r.name,
            r.naive_s,
            r.manager_s,
            r.speedup(),
            r.dom_computes_naive,
            r.dom_computes_manager,
            r.executions,
            r.skipped,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"geomean_speedup\": {geomean:.3}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("[bench_passes] wrote {out_path}");
    println!(
        "{:<8} {:>9} {:>10} {:>8} {:>9} {:>11}",
        "code", "naive_s", "manager_s", "speedup", "dom_naive", "dom_manager"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9.4} {:>10.4} {:>7.2}x {:>9} {:>11}",
            r.name,
            r.naive_s,
            r.manager_s,
            r.speedup(),
            r.dom_computes_naive,
            r.dom_computes_manager
        );
    }
    println!("geomean speedup: {geomean:.2}x");
}

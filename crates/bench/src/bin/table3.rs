//! Table 3: static instructions and lines of code per workload.
//!
//! Paper values (LLVM static instructions / C LoC):
//! CoMD 12240/3036, HPCCG 5107/1313, AMG 4478/952, FFT 566/249, IS 1457/701.
//! The reproduction's workloads are scaled-down SciL codes, so the
//! absolute counts are smaller; the point of the table is the size
//! inventory of what the campaigns cover.

use ipas_workloads::{sources, Kind};

fn main() {
    let mut rows = Vec::new();
    for kind in Kind::ALL {
        let module = ipas_lang::compile_named(sources::source(kind), kind.name())
            .expect("workload sources compile");
        let mut duplicable = 0usize;
        for (_, f) in module.functions() {
            for bb in f.block_ids() {
                for &id in f.block(bb).insts() {
                    if ipas_core::duplicable(f.inst(id)) {
                        duplicable += 1;
                    }
                }
            }
        }
        rows.push(vec![
            kind.name().to_string(),
            module.num_static_insts().to_string(),
            sources::lines_of_code(kind).to_string(),
            module.num_functions().to_string(),
            duplicable.to_string(),
        ]);
    }
    ipas_bench::print_table(
        "Table 3: code sizes (static IR instructions and SciL lines of code)",
        &["code", "static insts", "LoC", "functions", "duplicable"],
        &rows,
    );
}

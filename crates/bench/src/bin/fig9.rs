//! Figure 9 (with Table 5): input variation — IPAS is trained on input 1
//! and evaluated on three larger inputs.
//!
//! Paper shape: SOC reduction stays comparable across inputs for every
//! code except AMG, which shows more variability (its execution profile
//! changes with the hierarchy).

use ipas_bench::{load_or_run_experiments, print_table, protect_with_named_config, Profile};
use ipas_core::evaluate_variant;
use ipas_faultsim::{run_campaign, CampaignConfig, Outcome};
use ipas_workloads::{rebuild_with_module, Kind};

fn main() {
    let profile = Profile::from_env();
    let opts = profile.options();
    // Cap fig9 campaign size: large inputs are expensive and the trend
    // needs fewer samples than the coverage bars.
    let runs = (opts.eval_runs / 2).max(64);
    let summaries = load_or_run_experiments(profile);

    // Table 5 analog: the input ladders.
    let ladder_rows: Vec<Vec<String>> = Kind::ALL
        .iter()
        .map(|k| {
            let l = k.input_ladder();
            vec![
                k.name().to_string(),
                format!("{} (training)", l[0]),
                l[1].to_string(),
                l[2].to_string(),
                l[3].to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 5: application inputs (scaled ladder)",
        &["code", "input 1", "input 2", "input 3", "input 4"],
        &ladder_rows,
    );

    let mut rows = Vec::new();
    for (kind, summary) in Kind::ALL.iter().zip(&summaries) {
        let best = summary
            .best_of(&summary.ipas())
            .expect("IPAS configs exist")
            .name
            .clone();
        eprintln!("[fig9] {}: protecting with {best}", kind.name());
        let (protected, stats) = protect_with_named_config(*kind, profile, &best);
        let mut cells = vec![format!("{} ({best})", kind.name())];
        for (i, input) in kind.input_ladder().into_iter().enumerate() {
            eprintln!("[fig9]   input {} = {input}", i + 1);
            // Unprotected reference at this input.
            let unprot = kind.build(input).expect("workload builds at ladder inputs");
            let eval = CampaignConfig {
                runs,
                seed: opts.seed ^ (0xF19 + i as u64),
                threads: opts.threads,
                ..CampaignConfig::default()
            };
            let unprot_campaign =
                run_campaign(&unprot, &eval).expect("unprotected campaign completes");
            let unprot_soc = unprot_campaign.fraction(Outcome::Soc) * 100.0;
            // Protected module, same input.
            let prot_wl = rebuild_with_module(*kind, protected.clone(), input)
                .expect("protected module runs at ladder inputs");
            let variant = evaluate_variant(
                &prot_wl,
                prot_wl.module.clone(),
                "ipas",
                stats,
                Some(unprot_soc),
                &eval,
                opts.journal_dir.as_deref(),
            )
            .expect("evaluation runs");
            cells.push(format!("{:.1}%", variant.soc_reduction_pct));
        }
        rows.push(cells);
    }
    print_table(
        &format!(
            "Figure 9: SOC reduction across inputs ({runs} injections each; trained on input 1)"
        ),
        &["code (config)", "input 1", "input 2", "input 3", "input 4"],
        &rows,
    );
}

//! Campaign-throughput comparison of the two execution engines,
//! emitting `BENCH_interp.json`.
//!
//! For each of the five SciL workloads this harness runs the *same*
//! fault-injection campaign (same seed, same plans) on the tree-walking
//! reference engine and on the pre-decoded compiled engine, on one
//! worker thread so the numbers measure engine throughput rather than
//! scheduling. It verifies the two campaigns produced byte-identical
//! records — a benchmark that silently diverged would be measuring two
//! different computations — then reports wall-clock time, runs/second,
//! and the compiled/reference speedup per workload plus the geometric
//! mean.
//!
//! ```text
//! cargo run --release -p ipas-bench --bin bench_interp [-- out.json]
//! ```
//!
//! Environment:
//! * `IPAS_BENCH_RUNS` — campaign size per engine (default 200).
//! * `IPAS_BENCH_REPS` — repetitions per engine; the fastest is
//!   reported (default 3, standard practice against scheduler noise —
//!   the minimum estimates the code's cost, not the machine's jitter).
//! * output path defaults to `BENCH_interp.json` in the current
//!   directory; pass a path argument to override.

use std::fmt::Write as _;
use std::time::Instant;

use ipas_faultsim::{run_campaign, CampaignConfig, CampaignResult, Engine};
use ipas_workloads::Kind;

struct Row {
    name: &'static str,
    runs: usize,
    nominal_insts: u64,
    reference_s: f64,
    compiled_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reference_s / self.compiled_s
    }
}

fn one_campaign(
    workload: &ipas_faultsim::Workload,
    runs: usize,
    engine: Engine,
) -> (CampaignResult, f64) {
    let config = CampaignConfig {
        runs,
        seed: 2016,
        threads: 1,
        engine,
        ..CampaignConfig::default()
    };
    let start = Instant::now();
    let result = run_campaign(workload, &config).expect("campaign completes");
    (result, start.elapsed().as_secs_f64())
}

/// Runs `reps` interleaved (reference, compiled) campaign pairs and
/// returns the per-engine results with best-of-reps times. Interleaving
/// plus taking the minimum estimates the code's cost rather than the
/// machine's jitter, and keeps transient load from biasing one engine's
/// measurement window.
fn timed_pair(kind: Kind, runs: usize, reps: usize) -> (CampaignResult, f64, CampaignResult, f64) {
    let workload = kind.build(kind.base_input()).expect("workload builds");
    let mut best: Option<(CampaignResult, f64, CampaignResult, f64)> = None;
    for _ in 0..reps.max(1) {
        let (ref_result, ref_s) = one_campaign(&workload, runs, Engine::Reference);
        let (cmp_result, cmp_s) = one_campaign(&workload, runs, Engine::Compiled);
        match &mut best {
            Some((prev_ref, best_ref_s, prev_cmp, best_cmp_s)) => {
                assert_eq!(
                    prev_ref.records,
                    ref_result.records,
                    "{}: reference campaign is not deterministic across repetitions",
                    kind.name()
                );
                assert_eq!(
                    prev_cmp.records,
                    cmp_result.records,
                    "{}: compiled campaign is not deterministic across repetitions",
                    kind.name()
                );
                *best_ref_s = best_ref_s.min(ref_s);
                *best_cmp_s = best_cmp_s.min(cmp_s);
            }
            None => best = Some((ref_result, ref_s, cmp_result, cmp_s)),
        }
    }
    best.expect("at least one repetition")
}

fn main() {
    let runs: usize = std::env::var("IPAS_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let reps: usize = std::env::var("IPAS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interp.json".to_string());

    let mut rows = Vec::new();
    for kind in Kind::ALL {
        eprintln!(
            "[bench_interp] {} ({runs} runs x {reps} reps per engine)",
            kind.name()
        );
        let (ref_result, reference_s, fast_result, compiled_s) = timed_pair(kind, runs, reps);
        assert_eq!(
            ref_result.records,
            fast_result.records,
            "{}: engines diverged — benchmark numbers would be meaningless",
            kind.name()
        );
        rows.push(Row {
            name: kind.name(),
            runs,
            nominal_insts: ref_result.nominal_insts,
            reference_s,
            compiled_s,
        });
    }

    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"interp-engine-campaign-throughput\","
    );
    let _ = writeln!(json, "  \"runs_per_engine\": {runs},");
    let _ = writeln!(json, "  \"reps_per_engine\": {reps},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"seed\": 2016,");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"runs\": {}, \"nominal_insts\": {}, \
             \"reference_s\": {:.4}, \"compiled_s\": {:.4}, \
             \"reference_runs_per_s\": {:.2}, \"compiled_runs_per_s\": {:.2}, \
             \"speedup\": {:.3}}}{}",
            r.name,
            r.runs,
            r.nominal_insts,
            r.reference_s,
            r.compiled_s,
            r.runs as f64 / r.reference_s,
            r.runs as f64 / r.compiled_s,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"geomean_speedup\": {geomean:.3}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("[bench_interp] wrote {out_path}");
    println!(
        "{:<8} {:>12} {:>12} {:>9}",
        "code", "reference_s", "compiled_s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>8.2}x",
            r.name,
            r.reference_s,
            r.compiled_s,
            r.speedup()
        );
    }
    println!("geomean speedup: {geomean:.2}x");
}

//! Runs-to-equal-F-score comparison of adaptive (margin-weighted) vs
//! uniform (static-site) injection sampling, emitting
//! `BENCH_active.json`.
//!
//! The question active learning must answer is not "does the F-score go
//! up" but "how many injection runs does it take to get there". For each
//! of the five SciL workloads this harness:
//!
//! 1. Runs one large *held-out* uniform campaign (its own seed) and
//!    turns it into an evaluation set — every model below is scored
//!    against the same held-out labels, so adaptive sampling cannot
//!    flatter itself by skewing its own cross-validation folds.
//! 2. Sets the target: the held-out F-score of a classifier trained on
//!    a full-budget uniform campaign.
//! 3. Sweeps a ladder of budgets (budget/8, 2·budget/8, …, budget) for
//!    both strategies, training a quick-grid classifier at each rung and
//!    scoring it on the held-out set.
//! 4. Reports the smallest number of *executed* runs at which each
//!    strategy meets the target (adaptive may stop early on the entropy
//!    rule, so its executed count can undershoot the rung). A strategy
//!    that never meets the target within the budget reports `null` —
//!    the comparison is only useful if it is honest.
//!
//! ```text
//! cargo run --release -p ipas-bench --bin bench_active [-- out.json]
//! ```
//!
//! Environment:
//! * `IPAS_BENCH_RUNS` — full campaign budget per strategy (default 160).
//! * `IPAS_BENCH_REPS` — training seeds averaged per rung (default 1).
//! * output path defaults to `BENCH_active.json` in the current
//!   directory; pass a path argument to override.

use std::fmt::Write as _;

use ipas_core::{
    build_training_set, run_campaign_adaptive, train_top_configs, AdaptiveParams, LabelKind,
};
use ipas_faultsim::{
    run_campaign_sampled, CampaignConfig, CampaignOptions, InjectionRecord, SamplingMode, Workload,
};
use ipas_svm::{f_score, per_class_accuracy, GridOptions};
use ipas_workloads::Kind;

const EVAL_SEED: u64 = 9090;
const TRAIN_SEED: u64 = 2016;
const THREADS: usize = 4;
const RUNGS: usize = 8;

/// One rung of the budget ladder for one strategy.
struct Rung {
    /// Budget requested at this rung.
    requested: usize,
    /// Injection runs actually executed (adaptive can stop early).
    executed: usize,
    /// Mean held-out F-score across reps.
    f: f64,
    /// Adaptive only: rounds drawn / early-stop flag, averaged-or'd
    /// across reps.
    rounds: Option<usize>,
    stopped_early: bool,
    /// Any rep produced a single-class training set (F forced to 0).
    degenerate: bool,
}

/// Held-out evaluation set: one feature row + label per record of a
/// campaign that no model ever trains on.
struct EvalSet {
    x: Vec<Vec<f64>>,
    y: Vec<bool>,
}

fn eval_set(workload: &Workload, runs: usize) -> EvalSet {
    let config = CampaignConfig {
        runs,
        seed: EVAL_SEED,
        threads: THREADS,
        ..CampaignConfig::default()
    };
    let result = run_campaign_sampled(workload, &config, SamplingMode::StaticUniform)
        .expect("evaluation campaign completes");
    let data = build_training_set(workload, &result.records, LabelKind::SocGenerating);
    EvalSet {
        x: data.features().to_vec(),
        y: data.labels().to_vec(),
    }
}

/// Trains a quick-grid classifier on `records` and scores it on the
/// held-out set. Returns `(f, degenerate)`; a single-class (or empty)
/// training set scores 0 — no usable model exists at that budget.
fn held_out_f(workload: &Workload, records: &[InjectionRecord], eval: &EvalSet) -> (f64, bool) {
    if records.is_empty() {
        return (0.0, true);
    }
    let data = build_training_set(workload, records, LabelKind::SocGenerating);
    let positives = data.num_positive();
    if positives == 0 || positives == data.len() {
        return (0.0, true);
    }
    let Some(model) = train_top_configs(&data, &GridOptions::quick(), 1).pop() else {
        return (0.0, true);
    };
    let predicted: Vec<bool> = eval.x.iter().map(|f| model.predict_raw(f)).collect();
    (f_score(per_class_accuracy(&predicted, &eval.y)), false)
}

fn uniform_records(workload: &Workload, runs: usize, seed: u64) -> Vec<InjectionRecord> {
    let config = CampaignConfig {
        runs,
        seed,
        threads: THREADS,
        ..CampaignConfig::default()
    };
    run_campaign_sampled(workload, &config, SamplingMode::StaticUniform)
        .expect("uniform campaign completes")
        .records
}

fn rung_budgets(budget: usize) -> Vec<usize> {
    (1..=RUNGS)
        .map(|k| (budget * k / RUNGS).max(16).min(budget))
        .collect()
}

fn sweep(
    workload: &Workload,
    budget: usize,
    reps: usize,
    eval: &EvalSet,
) -> (Vec<Rung>, Vec<Rung>) {
    let mut uniform = Vec::new();
    let mut adaptive = Vec::new();
    for requested in rung_budgets(budget) {
        let mut uni = Rung {
            requested,
            executed: requested,
            f: 0.0,
            rounds: None,
            stopped_early: false,
            degenerate: false,
        };
        let mut ada = Rung {
            requested,
            executed: 0,
            f: 0.0,
            rounds: Some(0),
            stopped_early: false,
            degenerate: false,
        };
        for rep in 0..reps.max(1) {
            let seed = TRAIN_SEED + rep as u64;
            let records = uniform_records(workload, requested, seed);
            let (f, degenerate) = held_out_f(workload, &records, eval);
            uni.f += f;
            uni.degenerate |= degenerate;

            let config = CampaignConfig {
                runs: requested,
                seed,
                threads: THREADS,
                ..CampaignConfig::default()
            };
            let out = run_campaign_adaptive(
                workload,
                &config,
                &CampaignOptions::default(),
                &AdaptiveParams::for_budget(requested),
            )
            .expect("adaptive campaign completes");
            let (f, degenerate) = held_out_f(workload, &out.result.records, eval);
            ada.f += f;
            ada.degenerate |= degenerate;
            ada.executed += out.result.records.len() + out.result.harness_failures.len();
            ada.rounds = Some(ada.rounds.unwrap_or(0) + out.rounds.len());
            ada.stopped_early |= out.stopped_early;
        }
        let n = reps.max(1) as f64;
        uni.f /= n;
        ada.f /= n;
        ada.executed = (ada.executed as f64 / n).round() as usize;
        ada.rounds = ada.rounds.map(|r| ((r as f64) / n).round() as usize);
        uniform.push(uni);
        adaptive.push(ada);
    }
    (uniform, adaptive)
}

/// Smallest executed-run count whose rung meets `target` (first hit on
/// the ladder). `None` if the strategy never gets there in budget.
fn runs_to_target(rungs: &[Rung], target: f64) -> Option<usize> {
    rungs
        .iter()
        .find(|r| r.f >= target - 1e-9)
        .map(|r| r.executed)
}

fn rung_json(r: &Rung) -> String {
    let mut s = format!(
        "{{\"requested\": {}, \"executed\": {}, \"f\": {:.4}",
        r.requested, r.executed, r.f
    );
    if let Some(rounds) = r.rounds {
        let _ = write!(
            s,
            ", \"rounds\": {rounds}, \"stopped_early\": {}",
            r.stopped_early
        );
    }
    if r.degenerate {
        s.push_str(", \"degenerate\": true");
    }
    s.push('}');
    s
}

fn opt_json(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn main() {
    let budget: usize = std::env::var("IPAS_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(160);
    let reps: usize = std::env::var("IPAS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_active.json".to_string());

    let mut blocks = Vec::new();
    let mut table = Vec::new();
    for kind in Kind::ALL {
        eprintln!(
            "[bench_active] {} (budget {budget}, {reps} rep(s))",
            kind.name()
        );
        let workload = kind.build(kind.base_input()).expect("workload builds");
        let eval = eval_set(&workload, budget);
        let (uniform, adaptive) = sweep(&workload, budget, reps, &eval);
        // The target is what full-budget uniform sampling achieves; by
        // construction uniform reaches it at its last rung or earlier.
        let target = uniform.last().expect("ladder is non-empty").f;
        let uni_runs = runs_to_target(&uniform, target);
        let ada_runs = runs_to_target(&adaptive, target);
        let savings = match (uni_runs, ada_runs) {
            (Some(u), Some(a)) if u > 0 => Some(100.0 * (u as f64 - a as f64) / u as f64),
            _ => None,
        };

        let mut b = String::new();
        let _ = writeln!(b, "    {{\"name\": \"{}\",", kind.name());
        let _ = writeln!(b, "     \"target_f\": {target:.4},");
        let _ = writeln!(
            b,
            "     \"uniform\": [{}],",
            uniform
                .iter()
                .map(rung_json)
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            b,
            "     \"adaptive\": [{}],",
            adaptive
                .iter()
                .map(rung_json)
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            b,
            "     \"uniform_runs_to_target\": {},",
            opt_json(uni_runs)
        );
        let _ = writeln!(
            b,
            "     \"adaptive_runs_to_target\": {},",
            opt_json(ada_runs)
        );
        let _ = write!(
            b,
            "     \"savings_pct\": {}}}",
            savings.map_or_else(|| "null".to_string(), |s| format!("{s:.1}"))
        );
        blocks.push(b);
        table.push((kind.name(), target, uni_runs, ada_runs, savings));
    }

    let wins = table
        .iter()
        .filter(|(_, _, u, a, _)| match (u, a) {
            (Some(u), Some(a)) => a < u,
            (Some(_), None) => false,
            _ => false,
        })
        .count();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"active-learning-runs-to-f-score\","
    );
    let _ = writeln!(json, "  \"budget\": {budget},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"label\": \"soc-generating\",");
    let _ = writeln!(json, "  \"eval_seed\": {EVAL_SEED},");
    let _ = writeln!(json, "  \"train_seed\": {TRAIN_SEED},");
    json.push_str("  \"workloads\": [\n");
    json.push_str(&blocks.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"adaptive_wins\": {wins},");
    let _ = writeln!(json, "  \"workload_count\": {}", table.len());
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("[bench_active] wrote {out_path}");

    println!(
        "{:<8} {:>9} {:>13} {:>14} {:>9}",
        "code", "target F", "uniform runs", "adaptive runs", "savings"
    );
    for (name, target, uni, ada, savings) in &table {
        println!(
            "{:<8} {:>9.3} {:>13} {:>14} {:>9}",
            name,
            target,
            uni.map_or_else(|| "-".into(), |n| n.to_string()),
            ada.map_or_else(|| "-".into(), |n| n.to_string()),
            savings.map_or_else(|| "-".into(), |s| format!("{s:+.1}%")),
        );
    }
    println!(
        "adaptive met the full-budget uniform F-score with fewer runs on {wins}/{} workloads",
        table.len()
    );
}

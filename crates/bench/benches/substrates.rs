//! Criterion benchmarks for the IPAS substrates.
//!
//! These cover the timing-oriented rows of the evaluation: classifier
//! training and the duplication pass (Table 6), plus the interpreter,
//! frontend, and feature-extraction throughput that determine campaign
//! cost. Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ipas_analysis::FeatureExtractor;
use ipas_core::{protect_module, ProtectionPolicy};
use ipas_interp::{Machine, RtVal, RunConfig};
use ipas_svm::{grid_search, Dataset, GridOptions, Svm, SvmParams};
use ipas_workloads::Kind;

fn bench_frontend(c: &mut Criterion) {
    let src = ipas_workloads::sources::source(Kind::Comd);
    c.bench_function("compile_comd_scil", |b| {
        b.iter(|| ipas_lang::compile_named(src, "CoMD").expect("compiles"))
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10);
    for (kind, input) in [(Kind::Is, 512i64), (Kind::Hpccg, 4)] {
        let module = ipas_lang::compile_named(ipas_workloads::sources::source(kind), kind.name())
            .expect("compiles");
        let config = RunConfig {
            entry: "main".into(),
            args: vec![RtVal::I64(input)],
            ..RunConfig::default()
        };
        group.bench_function(format!("run_{}", kind.name()), |b| {
            b.iter(|| {
                Machine::new(&module)
                    .run(&config)
                    .expect("workload runs")
                    .dynamic_insts
            })
        });
    }
    group.finish();
}

fn training_dataset(n: usize) -> Dataset {
    // Synthetic imbalanced data with the dimensionality of Table 1.
    let dim = ipas_analysis::NUM_FEATURES;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = vec![0.0; dim];
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((i * 31 + j * 7) % 13) as f64 + if i % 12 == 0 { 8.0 } else { 0.0 };
        }
        x.push(row);
        y.push(i % 12 == 0);
    }
    Dataset::new(x, y).expect("rectangular data")
}

fn bench_svm(c: &mut Criterion) {
    let data = training_dataset(250);
    c.bench_function("svm_train_250x31", |b| {
        b.iter(|| Svm::train(&data, &SvmParams::new(10.0, 0.05).balanced_for(&data)))
    });
    let mut group = c.benchmark_group("model_selection");
    group.sample_size(10);
    group.bench_function("grid_search_quick", |b| {
        b.iter(|| grid_search(&data, &GridOptions::quick()))
    });
    group.finish();
}

fn bench_duplication(c: &mut Criterion) {
    let module = ipas_lang::compile_named(ipas_workloads::sources::source(Kind::Comd), "CoMD")
        .expect("compiles");
    c.bench_function("duplication_pass_full_comd", |b| {
        b.iter_batched(
            || module.clone(),
            |m| protect_module(&m, &mut |_, _, _| true),
            BatchSize::SmallInput,
        )
    });
    // The policy-application path (classification + duplication) for a
    // trivial always-protect policy, Table 6's step-4 shape.
    c.bench_function("policy_apply_full_comd", |b| {
        b.iter(|| ProtectionPolicy::FullDuplication.apply(&module))
    });
}

fn bench_features(c: &mut Criterion) {
    let module = ipas_lang::compile_named(ipas_workloads::sources::source(Kind::Amg), "AMG")
        .expect("compiles");
    c.bench_function("feature_extraction_amg_all", |b| {
        b.iter(|| {
            let ex = FeatureExtractor::new(&module);
            let mut total = 0usize;
            for (fid, _) in module.functions() {
                total += ex.extract_all(fid).len();
            }
            total
        })
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_interpreter,
    bench_svm,
    bench_duplication,
    bench_features
);
criterion_main!(benches);

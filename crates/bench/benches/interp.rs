//! Criterion benchmarks for the two execution engines.
//!
//! Complements `bench_interp` (the JSON-emitting campaign harness):
//! these measure the engine primitives in isolation — single-run
//! execution on each engine, the one-time lowering cost of
//! [`CompiledProgram::compile`], and machine reuse versus rebuild —
//! so a throughput regression can be attributed to the right layer.
//! Run with `cargo bench --bench interp`.

use criterion::{criterion_group, criterion_main, Criterion};

use ipas_interp::{CompiledMachine, CompiledProgram, Machine, RtVal, RunConfig};
use ipas_workloads::Kind;

fn workload_module(kind: Kind) -> (ipas_ir::Module, RunConfig) {
    let module = ipas_lang::compile_named(ipas_workloads::sources::source(kind), kind.name())
        .expect("compiles");
    let config = RunConfig {
        entry: "main".into(),
        args: vec![RtVal::I64(kind.base_input())],
        ..RunConfig::default()
    };
    (module, config)
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for kind in [Kind::Is, Kind::Hpccg, Kind::Fft] {
        let (module, config) = workload_module(kind);
        group.bench_function(format!("reference_{}", kind.name()), |b| {
            b.iter(|| {
                Machine::new(&module)
                    .run(&config)
                    .expect("workload runs")
                    .dynamic_insts
            })
        });
        let program = CompiledProgram::compile(&module);
        let mut machine = CompiledMachine::new(&program);
        group.bench_function(format!("compiled_{}", kind.name()), |b| {
            b.iter(|| machine.run(&config).expect("workload runs").dynamic_insts)
        });
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    for kind in [Kind::Comd, Kind::Amg] {
        let (module, _) = workload_module(kind);
        group.bench_function(format!("compile_{}", kind.name()), |b| {
            b.iter(|| CompiledProgram::compile(&module).num_functions())
        });
    }
    group.finish();
}

fn bench_machine_reuse(c: &mut Criterion) {
    // Fresh machine per run vs reset-and-reuse: the allocation savings
    // the campaign scheduler depends on.
    let (module, config) = workload_module(Kind::Is);
    let program = CompiledProgram::compile(&module);
    let mut group = c.benchmark_group("machine_reuse");
    group.sample_size(10);
    group.bench_function("fresh_each_run", |b| {
        b.iter(|| {
            CompiledMachine::new(&program)
                .run(&config)
                .expect("workload runs")
                .dynamic_insts
        })
    });
    let mut machine = CompiledMachine::new(&program);
    group.bench_function("reused", |b| {
        b.iter(|| machine.run(&config).expect("workload runs").dynamic_insts)
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_lowering, bench_machine_reuse);
criterion_main!(benches);

//! Robustness fuzzing for the frontend: arbitrary inputs must produce
//! diagnostics, never panics.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII soup never panics the lexer/parser/checker.
    #[test]
    fn compile_is_total_on_ascii(src in "[ -~\n]{0,200}") {
        let _ = ipas_lang::compile(&src);
    }

    /// Arbitrary token-shaped soup (keywords, idents, punctuation mixed
    /// with structure) never panics either.
    #[test]
    fn compile_is_total_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("fn".to_string()),
                Just("let".to_string()),
                Just("if".to_string()),
                Just("while".to_string()),
                Just("return".to_string()),
                Just("int".to_string()),
                Just("float".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just(":".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("->".to_string()),
                Just("x".to_string()),
                Just("main".to_string()),
                Just("1".to_string()),
                Just("2.5".to_string()),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = ipas_lang::compile(&src);
    }

    /// Single-character corruptions of a valid program are diagnosed,
    /// not panicked on.
    #[test]
    fn mutated_valid_program_is_total(pos in 0usize..200, replacement in 0u8..127) {
        let base = "fn helper(a: int) -> int { return a * 2; }\n\
                    fn main() -> int { let x: int = 3; if (x < 10) { x = helper(x); } return x; }";
        let mut bytes = base.as_bytes().to_vec();
        let idx = pos % bytes.len();
        bytes[idx] = replacement.max(b' ');
        if let Ok(src) = String::from_utf8(bytes) {
            let _ = ipas_lang::compile(&src);
        }
    }
}

//! End-to-end tests: compile SciL and execute it on the interpreter.

use ipas_interp::{Machine, RtVal, RunConfig, RunStatus};

fn run(src: &str) -> ipas_interp::RunOutput {
    let module = ipas_lang::compile(src).expect("compiles");
    Machine::new(&module)
        .run(&RunConfig::default())
        .expect("runs")
}

fn run_expect_i64(src: &str, want: i64) {
    let out = run(src);
    assert_eq!(
        out.status,
        RunStatus::Completed(Some(RtVal::I64(want))),
        "program output: {:?}",
        out.console
    );
}

#[test]
fn arithmetic_precedence() {
    run_expect_i64("fn main() -> int { return 2 + 3 * 4 - 6 / 2; }", 11);
}

#[test]
fn float_math_and_casts() {
    let out = run(
        "fn main() -> int { let x: float = sqrt(2.0); let y: float = x * x; return ftoi(y + 0.5); }",
    );
    assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(2))));
}

#[test]
fn while_loop_sum() {
    run_expect_i64(
        "fn main() -> int { let s: int = 0; let i: int = 0; while (i < 100) { s = s + i; i = i + 1; } return s; }",
        4950,
    );
}

#[test]
fn for_loop_with_continue_and_break() {
    run_expect_i64(
        r#"
fn main() -> int {
    let s: int = 0;
    for (let i: int = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        s = s + i;
    }
    return s;  // 1 + 3 + 5 + 7 + 9 = 25
}
"#,
        25,
    );
}

#[test]
fn nested_function_calls() {
    run_expect_i64(
        r#"
fn square(x: int) -> int { return x * x; }
fn sum_squares(n: int) -> int {
    let s: int = 0;
    for (let i: int = 1; i <= n; i = i + 1) { s = s + square(i); }
    return s;
}
fn main() -> int { return sum_squares(5); }
"#,
        55,
    );
}

#[test]
fn recursion() {
    run_expect_i64(
        r#"
fn fib(n: int) -> int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
fn main() -> int { return fib(15); }
"#,
        610,
    );
}

#[test]
fn arrays_and_outputs() {
    let out = run(r#"
fn main() -> int {
    let a: [int] = new_int(10);
    for (let i: int = 0; i < 10; i = i + 1) { a[i] = i * i; }
    let s: int = 0;
    for (let i: int = 0; i < 10; i = i + 1) { s = s + a[i]; }
    output_i(s);
    free_arr(a);
    return 0;
}
"#);
    assert_eq!(out.outputs.as_ints(), vec![285]);
}

#[test]
fn float_arrays() {
    let out = run(r#"
fn main() -> int {
    let a: [float] = new_float(4);
    a[0] = 1.5; a[1] = 2.5; a[2] = 3.0; a[3] = -1.0;
    let s: float = 0.0;
    for (let i: int = 0; i < 4; i = i + 1) { s = s + a[i]; }
    output_f(s);
    free_arr(a);
    return 0;
}
"#);
    assert_eq!(out.outputs.as_floats(), vec![6.0]);
}

#[test]
fn short_circuit_and_avoids_rhs() {
    // If && were eager, a[10] would trap (out of bounds); short-circuit
    // evaluation must complete normally.
    let out = run(r#"
fn main() -> int {
    let a: [int] = new_int(4);
    let i: int = 10;
    if (i < 4 && a[i] > 0) { return 1; }
    return 0;
}
"#);
    assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(0))));
}

#[test]
fn short_circuit_or_avoids_rhs() {
    let out = run(r#"
fn main() -> int {
    let a: [int] = new_int(4);
    let i: int = 10;
    if (i >= 4 || a[i] > 0) { return 1; }
    return 0;
}
"#);
    assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(1))));
}

#[test]
fn logical_operators_compute_correctly() {
    run_expect_i64(
        r#"
fn b2i(b: bool) -> int { if (b) { return 1; } return 0; }
fn main() -> int {
    let t: bool = true;
    let f: bool = false;
    return b2i(t && t) * 1000 + b2i(t && f) * 100 + b2i(f || t) * 10 + b2i(f || f);
}
"#,
        1010,
    );
}

#[test]
fn unary_operators() {
    run_expect_i64(
        "fn main() -> int { let x: int = 5; if (!(x < 0)) { return -x; } return x; }",
        -5,
    );
}

#[test]
fn float_remainder_and_floor() {
    let out = run("fn main() -> int { output_f(7.5 % 2.0); output_f(floor(2.9)); return 0; }");
    assert_eq!(out.outputs.as_floats(), vec![1.5, 2.0]);
}

#[test]
fn integer_division_by_zero_traps() {
    let src = "fn main() -> int { let z: int = 0; return 4 / z; }";
    let module = ipas_lang::compile(src).unwrap();
    let out = Machine::new(&module).run(&RunConfig::default()).unwrap();
    assert!(matches!(out.status, RunStatus::Trapped(_)));
}

#[test]
fn out_of_bounds_traps() {
    let src = "fn main() -> int { let a: [int] = new_int(2); return a[5]; }";
    let module = ipas_lang::compile(src).unwrap();
    let out = Machine::new(&module).run(&RunConfig::default()).unwrap();
    assert!(matches!(out.status, RunStatus::Trapped(_)));
}

#[test]
fn mpi_intrinsics_in_serial_mode() {
    let out = run(r#"
fn main() -> int {
    let r: int = mpi_rank();
    let s: int = mpi_size();
    let total: float = allreduce_sum_f(2.5);
    barrier();
    output_f(total);
    return r * 100 + s;
}
"#);
    assert_eq!(out.status, RunStatus::Completed(Some(RtVal::I64(1))));
    assert_eq!(out.outputs.as_floats(), vec![2.5]);
}

#[test]
fn else_if_chain() {
    let src = r#"
fn classify(x: int) -> int {
    if (x < 0) { return 0; }
    else if (x == 0) { return 1; }
    else if (x < 10) { return 2; }
    else { return 3; }
}
fn main() -> int {
    return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}
"#;
    run_expect_i64(src, 123);
}

#[test]
fn shadowed_variables_resolve_lexically() {
    run_expect_i64(
        r#"
fn main() -> int {
    let x: int = 1;
    if (true) {
        let x: int = 2;
        x = x + 10;
        if (x != 12) { return -1; }
    }
    return x;
}
"#,
        1,
    );
}

#[test]
fn dot_product_kernel() {
    let out = run(r#"
fn dot(a: [float], b: [float], n: int) -> float {
    let s: float = 0.0;
    for (let i: int = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; }
    return allreduce_sum_f(s);
}
fn main() -> int {
    let n: int = 16;
    let a: [float] = new_float(n);
    let b: [float] = new_float(n);
    for (let i: int = 0; i < n; i = i + 1) {
        a[i] = itof(i);
        b[i] = 2.0;
    }
    output_f(dot(a, b, n));
    free_arr(a); free_arr(b);
    return 0;
}
"#);
    assert_eq!(out.outputs.as_floats(), vec![240.0]);
}

#[test]
fn compile_with_pipeline_threads_the_spec() {
    use ipas_ir::passmgr::PipelineSpec;

    let src = "fn main() -> int { let x: int = 2 + 3; return x * 4; }";
    // The default spec reproduces compile() byte-for-byte.
    let spec = PipelineSpec::default_optimization();
    let via_spec = ipas_lang::compile_with_pipeline(src, "scil", &spec).expect("compiles");
    let via_default = ipas_lang::compile(src).expect("compiles");
    assert_eq!(via_spec.to_text(), via_default.to_text());
    // An empty spec skips optimization: the raw lowering keeps allocas.
    let raw =
        ipas_lang::compile_with_pipeline(src, "scil", &PipelineSpec::empty()).expect("compiles");
    assert_eq!(
        raw.to_text(),
        ipas_lang::compile_unoptimized(src, "scil")
            .expect("compiles")
            .to_text()
    );
    assert!(raw.to_text().contains("alloca"));
    assert!(!via_spec.to_text().contains("alloca"));
    // Both run to the same result.
    let a = Machine::new(&raw).run(&RunConfig::default()).expect("runs");
    let b = Machine::new(&via_spec)
        .run(&RunConfig::default())
        .expect("runs");
    assert_eq!(a.status, b.status);
}

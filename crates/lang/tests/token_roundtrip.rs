//! Property tests for the lexer's print→lex round trip.
//!
//! [`ipas_lang::render_tokens`] promises that rendering a token stream
//! yields source that re-lexes to the same token kinds. The fuzz
//! crate's round-trip oracle leans on this for whole programs; these
//! properties pin it down at the token level, including the
//! data-carrying variants (identifiers, integer and float literals with
//! exponent notation) where the spelling is not a fixed string.

use proptest::prelude::*;

use ipas_lang::{render_tokens, Lexer, Token, TokenKind};

fn kinds(tokens: &[Token]) -> Vec<TokenKind> {
    tokens
        .iter()
        .map(|t| t.kind.clone())
        .filter(|k| *k != TokenKind::Eof)
        .collect()
}

/// Every keyword and operator token, by canonical spelling.
fn fixed_token() -> BoxedStrategy<TokenKind> {
    prop_oneof![
        Just(TokenKind::Fn),
        Just(TokenKind::Let),
        Just(TokenKind::If),
        Just(TokenKind::Else),
        Just(TokenKind::While),
        Just(TokenKind::For),
        Just(TokenKind::Return),
        Just(TokenKind::Break),
        Just(TokenKind::Continue),
        Just(TokenKind::True),
        Just(TokenKind::False),
        Just(TokenKind::TyInt),
        Just(TokenKind::TyFloat),
        Just(TokenKind::TyBool),
        Just(TokenKind::LParen),
        Just(TokenKind::RParen),
        Just(TokenKind::LBrace),
        Just(TokenKind::RBrace),
        Just(TokenKind::LBracket),
        Just(TokenKind::RBracket),
        Just(TokenKind::Comma),
        Just(TokenKind::Semi),
        Just(TokenKind::Colon),
        Just(TokenKind::Arrow),
        Just(TokenKind::Assign),
        Just(TokenKind::Plus),
        Just(TokenKind::Minus),
        Just(TokenKind::Star),
        Just(TokenKind::Slash),
        Just(TokenKind::Percent),
        Just(TokenKind::EqEq),
        Just(TokenKind::NotEq),
        Just(TokenKind::Lt),
        Just(TokenKind::Le),
        Just(TokenKind::Gt),
        Just(TokenKind::Ge),
        Just(TokenKind::AndAnd),
        Just(TokenKind::OrOr),
        Just(TokenKind::Not),
    ]
}

/// Identifiers that are not keywords: a trailing `_` de-keywords any
/// unlucky draw (the lexer also maps the `var` alias to `let`, so that
/// is excluded the same way).
fn ident_token() -> BoxedStrategy<TokenKind> {
    "[a-z_][a-z0-9_]{0,10}"
        .prop_map(|s| {
            let keyword = matches!(
                s.as_str(),
                "fn" | "let"
                    | "var"
                    | "if"
                    | "else"
                    | "while"
                    | "for"
                    | "return"
                    | "break"
                    | "continue"
                    | "true"
                    | "false"
                    | "int"
                    | "float"
                    | "bool"
            );
            TokenKind::Ident(if keyword { format!("{s}_") } else { s })
        })
        .boxed()
}

/// Literal tokens as the lexer can actually produce them: unsigned
/// integers (a leading `-` lexes as a separate `Minus`) and finite
/// non-negative floats, whose `{:?}` spelling — including exponent
/// notation like `5e-324` — re-parses to the identical bits.
fn literal_token() -> BoxedStrategy<TokenKind> {
    prop_oneof![
        (0i64..i64::MAX).prop_map(TokenKind::Int),
        any::<f64>().prop_map(|v| TokenKind::Float(v.abs())),
        prop_oneof![
            Just(5e-324f64),
            Just(f64::MAX),
            Just(f64::EPSILON),
            Just(0.0),
            Just(1e300),
        ]
        .prop_map(TokenKind::Float),
    ]
}

fn token_stream() -> BoxedStrategy<Vec<TokenKind>> {
    proptest::collection::vec(
        prop_oneof![fixed_token(), fixed_token(), ident_token(), literal_token(),],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// tokenize(render(tokens)) == tokens, for any stream of tokens the
    /// lexer could itself emit.
    #[test]
    fn render_then_lex_is_identity(stream in token_stream()) {
        let tokens: Vec<Token> = stream
            .iter()
            .map(|kind| Token { kind: kind.clone(), line: 1, col: 1 })
            .collect();
        let rendered = render_tokens(&tokens);
        let relexed = Lexer::new(&rendered)
            .tokenize()
            .expect("rendered token stream must re-lex");
        prop_assert_eq!(kinds(&relexed), stream);
    }

    /// For valid programs the full chain holds: tokenize → render →
    /// tokenize is the identity on kinds, and a second render is a
    /// fixpoint of the text.
    #[test]
    fn lex_render_lex_is_identity_on_programs(
        n in 0i64..5,
        f in 0.0f64..1e6,
        name in "[a-z][a-z0-9_]{0,6}",
    ) {
        let src = format!(
            "fn {name}(a: int) -> float {{\n\
             \x20   let acc: float = {f:?};\n\
             \x20   for (let i: int = 0; i < a; i = i + 1) {{\n\
             \x20       acc = acc + itof(i % {m});\n\
             \x20   }}\n\
             \x20   return acc;\n\
             }}\n\
             fn main() -> int {{\n\
             \x20   output_f({name}({n}));\n\
             \x20   return 0;\n\
             }}\n",
            m = n.max(1),
        );
        let first = Lexer::new(&src).tokenize().expect("program lexes");
        let rendered = render_tokens(&first);
        let second = Lexer::new(&rendered).tokenize().expect("rendered source lexes");
        prop_assert_eq!(kinds(&first), kinds(&second));
        prop_assert_eq!(render_tokens(&second), rendered);
    }
}

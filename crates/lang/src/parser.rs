//! Recursive-descent parser for SciL.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::CompileError;

/// Parses a whole SciL program.
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse_program(source: &str) -> Result<Program, CompileError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_node: 0,
    };
    let mut functions = Vec::new();
    while !p.at(&TokenKind::Eof) {
        functions.push(p.fn_decl()?);
    }
    Ok(Program {
        functions,
        num_nodes: p.next_node as usize,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_node: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn span(&self) -> Span {
        let t = self.peek();
        Span {
            line: t.line,
            col: t.col,
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, CompileError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(CompileError::new(
                t.line,
                t.col,
                format!("expected {kind}, found {}", t.kind),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        let span = self.span();
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(CompileError::new(
                span.line,
                span.col,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    fn mk(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr {
            id: self.node(),
            span,
            kind,
        }
    }

    // ---- types -----------------------------------------------------------

    fn ty(&mut self) -> Result<LangType, CompileError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::TyInt => {
                self.bump();
                Ok(LangType::Int)
            }
            TokenKind::TyFloat => {
                self.bump();
                Ok(LangType::Float)
            }
            TokenKind::TyBool => {
                self.bump();
                Ok(LangType::Bool)
            }
            TokenKind::LBracket => {
                self.bump();
                let inner = self.ty()?;
                self.expect(&TokenKind::RBracket)?;
                match inner {
                    LangType::Int => Ok(LangType::ArrayInt),
                    LangType::Float => Ok(LangType::ArrayFloat),
                    other => Err(CompileError::new(
                        t.line,
                        t.col,
                        format!("arrays of `{other}` are not supported"),
                    )),
                }
            }
            other => Err(CompileError::new(
                t.line,
                t.col,
                format!("expected a type, found {other}"),
            )),
        }
    }

    // ---- declarations ------------------------------------------------------

    fn fn_decl(&mut self) -> Result<FnDecl, CompileError> {
        let span = self.span();
        self.expect(&TokenKind::Fn)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (pname, _) = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let pty = self.ty()?;
                params.push(Param {
                    name: pname,
                    ty: pty,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let ret = if self.eat(&TokenKind::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDecl {
            span,
            name,
            params,
            ret,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                let t = self.peek();
                return Err(CompileError::new(t.line, t.col, "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(stmts)
    }

    // ---- statements ----------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        match self.peek().kind.clone() {
            TokenKind::Let => self.let_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { span, cond, body })
            }
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { span, value })
            }
            TokenKind::Break => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break { span })
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue { span })
            }
            TokenKind::Ident(name) => {
                // Could be assignment, array store, or expression stmt.
                let next = self.tokens[self.pos + 1].kind.clone();
                match next {
                    TokenKind::Assign => {
                        self.bump(); // ident
                        self.bump(); // =
                        let value = self.expr()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Assign { span, name, value })
                    }
                    TokenKind::LBracket => {
                        // Distinguish `a[i] = v;` from expression `a[i];`
                        // by scanning for `=` after the matching bracket.
                        let save = self.pos;
                        self.bump(); // ident
                        self.bump(); // [
                        let index = self.expr()?;
                        self.expect(&TokenKind::RBracket)?;
                        if self.eat(&TokenKind::Assign) {
                            let value = self.expr()?;
                            self.expect(&TokenKind::Semi)?;
                            Ok(Stmt::Store {
                                span,
                                array: name,
                                index,
                                value,
                            })
                        } else {
                            self.pos = save;
                            self.expr_stmt(span)
                        }
                    }
                    _ => self.expr_stmt(span),
                }
            }
            _ => self.expr_stmt(span),
        }
    }

    fn expr_stmt(&mut self, span: Span) -> Result<Stmt, CompileError> {
        let expr = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Expr { span, expr })
    }

    fn let_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.expect(&TokenKind::Let)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        self.expect(&TokenKind::Assign)?;
        let init = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Let {
            span,
            name,
            ty,
            init,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.expect(&TokenKind::If)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&TokenKind::Else) {
            if self.at(&TokenKind::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            span,
            cond,
            then_body,
            else_body,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        self.expect(&TokenKind::For)?;
        self.expect(&TokenKind::LParen)?;
        let init = if self.at(&TokenKind::Let) {
            self.let_stmt()?
        } else {
            let ispan = self.span();
            let (name, _) = self.expect_ident()?;
            self.expect(&TokenKind::Assign)?;
            let value = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            Stmt::Assign {
                span: ispan,
                name,
                value,
            }
        };
        let cond = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        let sspan = self.span();
        let (sname, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let svalue = self.expr()?;
        let step = Stmt::Assign {
            span: sspan,
            name: sname,
            value: svalue,
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For {
            span,
            init: Box::new(init),
            cond,
            step: Box::new(step),
            body,
        })
    }

    // ---- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::OrOr) {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = self.mk(
                span,
                ExprKind::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs)),
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cmp_expr()?;
        while self.at(&TokenKind::AndAnd) {
            let span = self.span();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = self.mk(
                span,
                ExprKind::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs)),
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::EqEq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::Ne,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::Le => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(self.mk(span, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs))))
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = self.mk(span, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Rem,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = self.mk(span, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(self.mk(span, ExprKind::Unary(UnaryOp::Neg, Box::new(inner))));
        }
        if self.eat(&TokenKind::Not) {
            let inner = self.unary_expr()?;
            return Ok(self.mk(span, ExprKind::Unary(UnaryOp::Not, Box::new(inner))));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(self.mk(span, ExprKind::Int(v)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(self.mk(span, ExprKind::Float(v)))
            }
            TokenKind::True => {
                self.bump();
                Ok(self.mk(span, ExprKind::Bool(true)))
            }
            TokenKind::False => {
                self.bump();
                Ok(self.mk(span, ExprKind::Bool(false)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(self.mk(span, ExprKind::Call(name, args)))
                } else if self.eat(&TokenKind::LBracket) {
                    let var = self.mk(span, ExprKind::Var(name));
                    let idx = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(self.mk(span, ExprKind::Index(Box::new(var), Box::new(idx))))
                } else {
                    Ok(self.mk(span, ExprKind::Var(name)))
                }
            }
            other => {
                let t = self.peek();
                Err(CompileError::new(
                    t.line,
                    t.col,
                    format!("expected an expression, found {other}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse_program("fn main() -> int { return 1; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "main");
        assert_eq!(f.ret, Some(LangType::Int));
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_params_and_arrays() {
        let p = parse_program("fn f(a: [float], n: int) { output_f(a[n]); }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params[0].ty, LangType::ArrayFloat);
        assert_eq!(f.params[1].ty, LangType::Int);
        assert_eq!(f.ret, None);
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let p = parse_program("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!("expected return");
        };
        let ExprKind::Binary(BinaryOp::Add, _, rhs) = &e.kind else {
            panic!("expected +, got {:?}", e.kind);
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn comparison_is_non_associative() {
        // `a < b < c` parses as `(a < b) < c`? No — cmp is single-level,
        // so the second `<` is a syntax error at statement level.
        assert!(parse_program("fn f() -> bool { return 1 < 2 < 3; }").is_err());
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse_program(
            "fn f(x: int) -> int { if (x < 0) { return -1; } else if (x == 0) { return 0; } else { return 1; } }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!("expected if");
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_loop() {
        let p = parse_program(
            "fn f(n: int) -> int { let s: int = 0; for (let i: int = 0; i < n; i = i + 1) { s = s + i; } return s; }",
        )
        .unwrap();
        assert!(matches!(p.functions[0].body[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_store_vs_index_expr() {
        let p = parse_program("fn f(a: [int]) { a[0] = 1; output_i(a[0]); }").unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::Store { .. }));
        assert!(matches!(p.functions[0].body[1], Stmt::Expr { .. }));
    }

    #[test]
    fn parses_logical_operators_with_precedence() {
        let p = parse_program("fn f(a: bool, b: bool, c: bool) -> bool { return a || b && c; }")
            .unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!();
        };
        // || at top, && below.
        assert!(matches!(e.kind, ExprKind::Binary(BinaryOp::Or, _, _)));
    }

    #[test]
    fn parses_unary_chains() {
        let p = parse_program("fn f(x: int) -> int { return --x; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(e.kind, ExprKind::Unary(UnaryOp::Neg, _)));
    }

    #[test]
    fn error_has_position() {
        let err = parse_program("fn main() -> int {\n  return @;\n}").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse_program("fn main() { return;").is_err());
    }

    #[test]
    fn rejects_array_of_bool() {
        assert!(parse_program("fn f(a: [bool]) {}").is_err());
    }

    #[test]
    fn node_ids_are_unique() {
        let p = parse_program("fn f() -> int { return 1 + 2 * 3 - 4; }").unwrap();
        assert!(p.num_nodes >= 7);
    }
}

//! Lexical analysis for SciL.

use std::fmt;

use crate::CompileError;

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal (contains `.` or an exponent).
    Float(f64),
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    TyInt,
    /// `float`
    TyFloat,
    /// `bool`
    TyBool,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The canonical source spelling of keyword and operator tokens;
    /// `None` for the data-carrying variants and [`TokenKind::Eof`].
    pub fn fixed_text(&self) -> Option<&'static str> {
        Some(match self {
            TokenKind::Fn => "fn",
            TokenKind::Let => "let",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::For => "for",
            TokenKind::Return => "return",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::TyInt => "int",
            TokenKind::TyFloat => "float",
            TokenKind::TyBool => "bool",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Arrow => "->",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Not => "!",
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Eof => {
                return None
            }
        })
    }

    /// A source spelling that re-lexes to an equal token, if one exists
    /// (`Eof` has none). Non-finite floats have no lexable spelling
    /// either; the lexer never produces them, so they also yield `None`.
    pub fn lexeme(&self) -> Option<String> {
        match self {
            TokenKind::Ident(s) => Some(s.clone()),
            TokenKind::Int(v) => Some(v.to_string()),
            TokenKind::Float(v) if v.is_finite() => Some(format!("{v:?}")),
            TokenKind::Float(_) | TokenKind::Eof => None,
            other => other.fixed_text().map(str::to_string),
        }
    }
}

/// Renders tokens back to lexable source text, one space apart, so that
/// re-lexing yields the same token kinds. The round-trip oracle and the
/// proptest suite lean on this.
pub fn render_tokens(tokens: &[Token]) -> String {
    tokens
        .iter()
        .filter_map(|t| t.kind.lexeme())
        .collect::<Vec<_>>()
        .join(" ")
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Eof => write!(f, "`end of input`"),
            other => {
                let s = other.fixed_text().expect("fixed token has a spelling");
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Converts SciL source into tokens.
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'s> Lexer<'s> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenizes the whole input (the final token is [`TokenKind::Eof`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on unrecognized characters or malformed
    /// numbers.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_alphabetic() || c == b'_' {
                self.lex_word(line, col)?
            } else if c.is_ascii_digit() {
                self.lex_number(line, col)?
            } else {
                self.lex_symbol(line, col)?
            };
            out.push(Token { kind, line, col });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_word(&mut self, line: usize, col: usize) -> Result<TokenKind, CompileError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        // Only ASCII bytes are consumed above, but never panic on the
        // conversion: a lexer must reject bad input, not abort.
        let word = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| CompileError::new(line, col, "invalid UTF-8 in identifier"))?;
        Ok(match word {
            "fn" => TokenKind::Fn,
            "let" | "var" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "int" => TokenKind::TyInt,
            "float" => TokenKind::TyFloat,
            "bool" => TokenKind::TyBool,
            _ => TokenKind::Ident(word.to_string()),
        })
    }

    fn lex_number(&mut self, line: usize, col: usize) -> Result<TokenKind, CompileError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                self.bump();
            } else if (c == b'e' || c == b'E')
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == b'-' || d == b'+')
            {
                is_float = true;
                self.bump(); // e
                self.bump(); // sign or digit
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| CompileError::new(line, col, "invalid UTF-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| CompileError::new(line, col, format!("malformed float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| CompileError::new(line, col, format!("integer `{text}` out of range")))
        }
    }

    fn lex_symbol(&mut self, line: usize, col: usize) -> Result<TokenKind, CompileError> {
        let c = self.bump().expect("caller checked non-empty");
        let two = |lexer: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'+' => TokenKind::Plus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'-' => two(self, b'>', TokenKind::Arrow, TokenKind::Minus),
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::NotEq, TokenKind::Not),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(CompileError::new(line, col, "expected `&&`"));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(CompileError::new(line, col, "expected `||`"));
                }
            }
            _ => {
                // Decode the whole character so multi-byte UTF-8 (`é`,
                // `λ`, …) is named faithfully in the error; casting the
                // lead byte with `as char` printed mojibake. The
                // remaining continuation bytes are consumed too, so one
                // bad character yields one error, not a cascade.
                let ch = std::str::from_utf8(&self.src[self.pos - 1..])
                    .ok()
                    .and_then(|s| s.chars().next())
                    .unwrap_or(char::REPLACEMENT_CHARACTER);
                for _ in 1..ch.len_utf8() {
                    self.bump();
                }
                return Err(CompileError::new(
                    line,
                    col,
                    format!("unexpected character `{ch}`"),
                ));
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fn foo let x"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("foo".into()),
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn var_is_alias_for_let() {
        assert_eq!(kinds("var"), vec![TokenKind::Let, TokenKind::Eof]);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 2.5e-2 7"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1e3),
                TokenKind::Float(2.5e-2),
                TokenKind::Int(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_without_digit_is_not_float() {
        // `1.foo` lexes as Int(1) then error on `.`.
        assert!(Lexer::new("1.x").tokenize().is_err());
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("-> - == = != ! <= < >= > && ||"),
            vec![
                TokenKind::Arrow,
                TokenKind::Minus,
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::NotEq,
                TokenKind::Not,
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::Ge,
                TokenKind::Gt,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("1 // comment with fn let\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn rejects_stray_ampersand() {
        assert!(Lexer::new("a & b").tokenize().is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let err = Lexer::new("a $ b").tokenize().unwrap_err();
        assert!(err.message().contains("unexpected character"));
    }

    #[test]
    fn non_ascii_input_is_a_spanned_error_not_a_panic() {
        // Minimized fuzz repro: non-ASCII bytes in an identifier-like
        // position must produce a positioned error naming the actual
        // character, never a host panic or mojibake.
        let err = Lexer::new("let héllo = 1;").tokenize().unwrap_err();
        assert!(err.message().contains('é'), "got: {}", err.message());
        assert_eq!((err.line(), err.col()), (1, 6));
        for src in ["λ", "fn ∂f()", "x\u{00e9}", "１２３", "a\u{1F600}b"] {
            let err = Lexer::new(src).tokenize().unwrap_err();
            assert!(err.message().contains("unexpected character"));
        }
    }

    #[test]
    fn render_tokens_round_trips() {
        let src = "fn main() -> int { let x = 1 + 2.5; return x; }";
        let toks = Lexer::new(src).tokenize().unwrap();
        let rendered = render_tokens(&toks);
        let again = Lexer::new(&rendered).tokenize().unwrap();
        let a: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        let b: Vec<_> = again.into_iter().map(|t| t.kind).collect();
        assert_eq!(a, b);
    }
}

//! Lowering of checked SciL to `ipas-ir`.
//!
//! Locals are lowered to single-slot `alloca`s with loads/stores (the
//! classic Clang strategy); the caller then runs mem2reg to obtain pruned
//! SSA. Short-circuit `&&`/`||` lower to control flow through a boolean
//! slot. Statements after a `return`/`break`/`continue` in the same list
//! are unreachable and skipped.

use std::collections::HashMap;

use ipas_ir::{
    BinOp, BlockId, CastOp, FcmpPred, FuncId, Function, FunctionBuilder, IcmpPred, Intrinsic,
    Module, Type, Value,
};

use crate::ast::*;
use crate::check::CheckedProgram;

/// Lowers a checked program into an IR module (unoptimized).
pub fn lower(checked: &CheckedProgram, name: &str) -> Module {
    let mut module = Module::new(name);
    let mut fids: HashMap<String, FuncId> = HashMap::new();
    for f in &checked.program.functions {
        let params: Vec<Type> = f.params.iter().map(|p| p.ty.ir_type()).collect();
        let ret = f.ret.map(|t| t.ir_type()).unwrap_or(Type::Void);
        let fid = module.add_function(Function::new(f.name.clone(), &params, ret));
        fids.insert(f.name.clone(), fid);
    }
    for f in &checked.program.functions {
        let func = Lowerer::new(checked, &fids, f).lower_fn(f);
        let fid = fids[&f.name];
        *module.function_mut(fid) = func;
    }
    module
}

struct Lowerer<'a> {
    checked: &'a CheckedProgram,
    fids: &'a HashMap<String, FuncId>,
    b: FunctionBuilder,
    /// Scope stack of name → (slot pointer, type).
    scopes: Vec<HashMap<String, (Value, LangType)>>,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(BlockId, BlockId)>,
}

impl<'a> Lowerer<'a> {
    fn new(checked: &'a CheckedProgram, fids: &'a HashMap<String, FuncId>, f: &FnDecl) -> Self {
        let params: Vec<Type> = f.params.iter().map(|p| p.ty.ir_type()).collect();
        let ret = f.ret.map(|t| t.ir_type()).unwrap_or(Type::Void);
        Lowerer {
            checked,
            fids,
            b: FunctionBuilder::new(f.name.clone(), &params, ret),
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
        }
    }

    fn lower_fn(mut self, f: &FnDecl) -> Function {
        // Spill parameters into slots so they are assignable; mem2reg
        // folds this away.
        for (i, p) in f.params.iter().enumerate() {
            let slot = self.b.alloca(p.ty.ir_type(), 1);
            self.b.store(p.ty.ir_type(), Value::param(i as u32), slot);
            self.scopes
                .last_mut()
                .expect("function scope")
                .insert(p.name.clone(), (slot, p.ty));
        }
        self.lower_block(&f.body);
        if !self.b.is_terminated() {
            // Void functions fall off the end; for value functions the
            // checker proved this unreachable — emit a structural ret.
            match f.ret {
                None => self.b.ret(None),
                Some(t) => {
                    let zero = zero_value(t);
                    self.b.ret(Some(zero));
                }
            }
        }
        // Unreachable join blocks created by always-returning branches
        // may be empty; terminate them structurally.
        let mut func = self.b.finish();
        for bb in func.block_ids().collect::<Vec<_>>() {
            if func.block(bb).is_empty() {
                let ret = f.ret.map(zero_value);
                func.append_inst(bb, ipas_ir::Inst::Ret { value: ret });
            }
        }
        func
    }

    fn ty_of(&self, e: &Expr) -> LangType {
        self.checked
            .type_of(e.id)
            .expect("checker typed every value expression")
    }

    fn lookup(&self, name: &str) -> (Value, LangType) {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .copied()
            .unwrap_or_else(|| panic!("checker verified variable `{name}`"))
    }

    /// Lowers a statement list; returns `true` if it terminated the
    /// current block (return/break/continue on every path taken here).
    fn lower_block(&mut self, stmts: &[Stmt]) -> bool {
        self.scopes.push(HashMap::new());
        let mut terminated = false;
        for s in stmts {
            if terminated {
                // Unreachable code after return/break/continue: skip.
                break;
            }
            terminated = self.lower_stmt(s);
        }
        self.scopes.pop();
        terminated
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Let { name, ty, init, .. } => {
                let v = self.lower_expr(init);
                let slot = self.b.alloca(ty.ir_type(), 1);
                self.b.store(ty.ir_type(), v, slot);
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), (slot, *ty));
                false
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.lower_expr(value);
                let (slot, ty) = self.lookup(name);
                self.b.store(ty.ir_type(), v, slot);
                false
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                let (slot, aty) = self.lookup(array);
                let elem = aty.element().expect("checker verified array type");
                let base = self.b.load(Type::Ptr, slot);
                let idx = self.lower_expr(index);
                let addr = self.b.gep(elem.ir_type(), base, idx);
                let v = self.lower_expr(value);
                self.b.store(elem.ir_type(), v, addr);
                false
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.lower_expr(cond);
                let then_bb = self.b.new_block();
                let merge = self.b.new_block();
                let else_bb = if else_body.is_empty() {
                    merge
                } else {
                    self.b.new_block()
                };
                self.b.cond_br(c, then_bb, else_bb);

                self.b.switch_to_block(then_bb);
                let t_term = self.lower_block(then_body);
                if !t_term {
                    self.b.br(merge);
                }
                let mut e_term = false;
                if !else_body.is_empty() {
                    self.b.switch_to_block(else_bb);
                    e_term = self.lower_block(else_body);
                    if !e_term {
                        self.b.br(merge);
                    }
                }
                self.b.switch_to_block(merge);
                // Even if both arms terminated, continue lowering into the
                // (unreachable) merge block; empty blocks are fixed up at
                // the end of lower_fn. Report "not terminated" so callers
                // keep the structure simple.
                let _ = t_term && e_term;
                false
            }
            Stmt::While { cond, body, .. } => {
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to_block(header);
                let c = self.lower_expr(cond);
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to_block(body_bb);
                self.loops.push((header, exit));
                let term = self.lower_block(body);
                self.loops.pop();
                if !term {
                    self.b.br(header);
                }
                self.b.switch_to_block(exit);
                false
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                self.lower_stmt(init);
                let header = self.b.new_block();
                let body_bb = self.b.new_block();
                let step_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(header);
                self.b.switch_to_block(header);
                let c = self.lower_expr(cond);
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to_block(body_bb);
                self.loops.push((step_bb, exit));
                let term = self.lower_block(body);
                self.loops.pop();
                if !term {
                    self.b.br(step_bb);
                }
                self.b.switch_to_block(step_bb);
                self.lower_stmt(step);
                self.b.br(header);
                self.b.switch_to_block(exit);
                self.scopes.pop();
                false
            }
            Stmt::Return { value, .. } => {
                let v = value.as_ref().map(|e| self.lower_expr(e));
                self.b.ret(v);
                true
            }
            Stmt::Break { .. } => {
                let (_, exit) = *self.loops.last().expect("checker verified loop depth");
                self.b.br(exit);
                true
            }
            Stmt::Continue { .. } => {
                let (cont, _) = *self.loops.last().expect("checker verified loop depth");
                self.b.br(cont);
                true
            }
            Stmt::Expr { expr, .. } => {
                self.lower_expr_any(expr);
                false
            }
        }
    }

    /// Lowers an expression that may be void (call in statement position).
    fn lower_expr_any(&mut self, e: &Expr) {
        if self.checked.type_of(e.id).is_some() {
            let _ = self.lower_expr(e);
        } else {
            // Void: must be a call.
            let ExprKind::Call(name, args) = &e.kind else {
                unreachable!("only calls can be void");
            };
            let _ = self.lower_call(name, args);
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Value {
        match &e.kind {
            ExprKind::Int(v) => Value::i64(*v),
            ExprKind::Float(v) => Value::f64(*v),
            ExprKind::Bool(v) => Value::bool(*v),
            ExprKind::Var(name) => {
                let (slot, ty) = self.lookup(name);
                self.b.load(ty.ir_type(), slot)
            }
            ExprKind::Unary(op, inner) => {
                let v = self.lower_expr(inner);
                match (op, self.ty_of(inner)) {
                    (UnaryOp::Neg, LangType::Int) => {
                        self.b.binary(BinOp::Sub, Type::I64, Value::i64(0), v)
                    }
                    (UnaryOp::Neg, LangType::Float) => {
                        self.b.binary(BinOp::Fsub, Type::F64, Value::f64(-0.0), v)
                    }
                    (UnaryOp::Not, _) => {
                        self.b.binary(BinOp::Xor, Type::Bool, v, Value::bool(true))
                    }
                    (op, ty) => unreachable!("checker rejected {op:?} on {ty}"),
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                if op.is_logic() {
                    return self.lower_short_circuit(*op, lhs, rhs);
                }
                let lt = self.ty_of(lhs);
                let l = self.lower_expr(lhs);
                let r = self.lower_expr(rhs);
                if op.is_arith() {
                    let (irop, ty) = match (op, lt) {
                        (BinaryOp::Add, LangType::Int) => (BinOp::Add, Type::I64),
                        (BinaryOp::Sub, LangType::Int) => (BinOp::Sub, Type::I64),
                        (BinaryOp::Mul, LangType::Int) => (BinOp::Mul, Type::I64),
                        (BinaryOp::Div, LangType::Int) => (BinOp::Sdiv, Type::I64),
                        (BinaryOp::Rem, LangType::Int) => (BinOp::Srem, Type::I64),
                        (BinaryOp::Add, LangType::Float) => (BinOp::Fadd, Type::F64),
                        (BinaryOp::Sub, LangType::Float) => (BinOp::Fsub, Type::F64),
                        (BinaryOp::Mul, LangType::Float) => (BinOp::Fmul, Type::F64),
                        (BinaryOp::Div, LangType::Float) => (BinOp::Fdiv, Type::F64),
                        (BinaryOp::Rem, LangType::Float) => (BinOp::Frem, Type::F64),
                        (op, ty) => unreachable!("checker rejected {op:?} on {ty}"),
                    };
                    self.b.binary(irop, ty, l, r)
                } else {
                    // Comparison.
                    if lt == LangType::Float {
                        let pred = match op {
                            BinaryOp::Eq => FcmpPred::Oeq,
                            BinaryOp::Ne => FcmpPred::Une,
                            BinaryOp::Lt => FcmpPred::Olt,
                            BinaryOp::Le => FcmpPred::Ole,
                            BinaryOp::Gt => FcmpPred::Ogt,
                            BinaryOp::Ge => FcmpPred::Oge,
                            _ => unreachable!("logic handled above"),
                        };
                        self.b.fcmp(pred, l, r)
                    } else {
                        let pred = match op {
                            BinaryOp::Eq => IcmpPred::Eq,
                            BinaryOp::Ne => IcmpPred::Ne,
                            BinaryOp::Lt => IcmpPred::Slt,
                            BinaryOp::Le => IcmpPred::Sle,
                            BinaryOp::Gt => IcmpPred::Sgt,
                            BinaryOp::Ge => IcmpPred::Sge,
                            _ => unreachable!("logic handled above"),
                        };
                        self.b.icmp(pred, l, r)
                    }
                }
            }
            ExprKind::Index(base, index) => {
                let elem = self.ty_of(e);
                let b = self.lower_expr(base);
                let i = self.lower_expr(index);
                let addr = self.b.gep(elem.ir_type(), b, i);
                self.b.load(elem.ir_type(), addr)
            }
            ExprKind::Call(name, args) => self
                .lower_call(name, args)
                .expect("checker verified value call"),
        }
    }

    fn lower_short_circuit(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> Value {
        // result = lhs; if (need rhs) result = rhs;
        let slot = self.b.alloca(Type::Bool, 1);
        let l = self.lower_expr(lhs);
        self.b.store(Type::Bool, l, slot);
        let rhs_bb = self.b.new_block();
        let merge = self.b.new_block();
        match op {
            BinaryOp::And => self.b.cond_br(l, rhs_bb, merge),
            BinaryOp::Or => self.b.cond_br(l, merge, rhs_bb),
            other => unreachable!("{other:?} is not a logic operator"),
        }
        self.b.switch_to_block(rhs_bb);
        let r = self.lower_expr(rhs);
        self.b.store(Type::Bool, r, slot);
        self.b.br(merge);
        self.b.switch_to_block(merge);
        self.b.load(Type::Bool, slot)
    }

    fn lower_call(&mut self, name: &str, args: &[Expr]) -> Option<Value> {
        let vals: Vec<Value> = args.iter().map(|a| self.lower_expr(a)).collect();
        let intr = match name {
            "sqrt" => Some(Intrinsic::Sqrt),
            "sin" => Some(Intrinsic::Sin),
            "cos" => Some(Intrinsic::Cos),
            "exp" => Some(Intrinsic::Exp),
            "log" => Some(Intrinsic::Log),
            "pow" => Some(Intrinsic::Pow),
            "fabs" => Some(Intrinsic::Fabs),
            "floor" => Some(Intrinsic::Floor),
            "free_arr" => Some(Intrinsic::Free),
            "print_i" => Some(Intrinsic::PrintI64),
            "print_f" => Some(Intrinsic::PrintF64),
            "output_i" => Some(Intrinsic::OutputI64),
            "output_f" => Some(Intrinsic::OutputF64),
            "mpi_rank" => Some(Intrinsic::MpiRank),
            "mpi_size" => Some(Intrinsic::MpiSize),
            "allreduce_sum_f" => Some(Intrinsic::MpiAllreduceSum),
            "allreduce_sum_i" => Some(Intrinsic::MpiAllreduceSumI),
            "allreduce_max_f" => Some(Intrinsic::MpiAllreduceMax),
            "barrier" => Some(Intrinsic::MpiBarrier),
            "allgather_f" => Some(Intrinsic::MpiAllgatherF),
            "allreduce_arr_f" => Some(Intrinsic::MpiAllreduceArrF),
            "allreduce_arr_i" => Some(Intrinsic::MpiAllreduceArrI),
            _ => None,
        };
        if let Some(intr) = intr {
            let v = self.b.call_intrinsic(intr, vals);
            return if intr.return_type() == Type::Void {
                None
            } else {
                Some(v)
            };
        }
        match name {
            "itof" => Some(self.b.cast(CastOp::Sitofp, Type::F64, vals[0])),
            "ftoi" => Some(self.b.cast(CastOp::Fptosi, Type::I64, vals[0])),
            "new_int" | "new_float" => {
                let bytes = self.b.binary(BinOp::Mul, Type::I64, vals[0], Value::i64(8));
                Some(self.b.call_intrinsic(Intrinsic::Malloc, vec![bytes]))
            }
            _ => {
                let fid = self.fids[name];
                let f = &self.checked.program.functions[fid.index()];
                let ret = f.ret.map(|t| t.ir_type()).unwrap_or(Type::Void);
                let v = self.b.call(fid, vals, ret);
                if ret == Type::Void {
                    None
                } else {
                    Some(v)
                }
            }
        }
    }
}

fn zero_value(t: LangType) -> Value {
    match t {
        LangType::Int => Value::i64(0),
        LangType::Float => Value::f64(0.0),
        LangType::Bool => Value::bool(false),
        LangType::ArrayInt | LangType::ArrayFloat => Value::null(),
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile, compile_unoptimized};
    use ipas_ir::Inst;

    #[test]
    fn unoptimized_uses_allocas_optimized_does_not() {
        let src = "fn main() -> int { let x: int = 3; x = x + 1; return x; }";
        let raw = compile_unoptimized(src, "t").unwrap();
        let (_, f) = raw.functions().next().unwrap();
        let has_alloca = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts().to_vec())
            .any(|id| matches!(f.inst(id), Inst::Alloca { .. }));
        assert!(has_alloca);

        let opt = compile(src).unwrap();
        let (_, f) = opt.functions().next().unwrap();
        let has_alloca = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts().to_vec())
            .any(|id| matches!(f.inst(id), Inst::Alloca { .. }));
        assert!(
            !has_alloca,
            "mem2reg should remove scalar allocas:\n{}",
            opt.to_text()
        );
    }

    #[test]
    fn loops_produce_phis_after_mem2reg() {
        let src = "fn main() -> int { let s: int = 0; for (let i: int = 0; i < 10; i = i + 1) { s = s + i; } return s; }";
        let m = compile(src).unwrap();
        let (_, f) = m.functions().next().unwrap();
        let has_phi = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts().to_vec())
            .any(|id| f.inst(id).is_phi());
        assert!(has_phi, "{}", m.to_text());
    }

    #[test]
    fn code_after_return_is_dropped() {
        let src = "fn main() -> int { return 1; output_i(2); }";
        let m = compile(src).unwrap();
        let (_, f) = m.functions().next().unwrap();
        let has_call = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts().to_vec())
            .any(|id| matches!(f.inst(id), Inst::Call { .. }));
        assert!(!has_call);
    }

    #[test]
    fn both_branches_return_is_structurally_valid() {
        let src = "fn main() -> int { if (true) { return 1; } else { return 2; } }";
        compile(src).unwrap();
    }
}

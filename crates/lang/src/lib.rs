//! SciL: a small C-like language compiled to `ipas-ir`.
//!
//! The IPAS paper evaluates C/MPI workloads compiled by Clang to LLVM IR.
//! This crate is the reproduction's frontend: the five workloads are
//! written in SciL and compiled here through a classic pipeline —
//! [`lexer`] → [`parser`] → [`check`] (type checking) → [`lower`] (SSA
//! lowering via alloca + mem2reg) — producing verified IR that the rest
//! of the system treats exactly like the paper treats LLVM IR.
//!
//! # Language overview
//!
//! ```text
//! fn add_up(n: int) -> int {
//!     let total: int = 0;
//!     for (let i: int = 0; i < n; i = i + 1) {
//!         total = total + i;
//!     }
//!     return total;
//! }
//!
//! fn main() -> int {
//!     let a: [float] = new_float(8);        // heap array
//!     a[0] = sqrt(2.0);
//!     output_f(a[0]);                        // verified output stream
//!     free_arr(a);
//!     return add_up(10);
//! }
//! ```
//!
//! Types: `int` (i64), `float` (f64), `bool`, and heap arrays `[int]`,
//! `[float]`. There are no implicit conversions; use `itof(x)`/`ftoi(x)`.
//! Built-in functions cover libm (`sqrt`, `sin`, `cos`, `exp`, `log`,
//! `pow`, `fabs`, `floor`), allocation (`new_int`, `new_float`,
//! `free_arr`), I/O (`print_i`, `print_f`, `output_i`, `output_f`), and
//! MPI (`mpi_rank`, `mpi_size`, `allreduce_sum_f`, `allreduce_sum_i`,
//! `allreduce_max_f`, `barrier`).
//!
//! # Example
//!
//! ```
//! let module = ipas_lang::compile("fn main() -> int { return 6 * 7; }").unwrap();
//! assert_eq!(module.num_functions(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod lexer;
pub mod lower;
pub mod parser;

use ipas_ir::passmgr::PipelineSpec;
use ipas_ir::Module;

pub use ast::{LangType, Program};
pub use check::CheckedProgram;
pub use lexer::{render_tokens, Lexer, Token, TokenKind};

/// A frontend diagnostic with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    line: usize,
    col: usize,
    message: String,
}

impl CompileError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        CompileError {
            line,
            col,
            message: message.into(),
        }
    }

    /// 1-based source line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column.
    pub fn col(&self) -> usize {
        self.col
    }

    /// The diagnostic text.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles SciL source into a verified, optimized IR module.
///
/// The produced module has been through mem2reg, constant folding, and
/// DCE — matching the paper's requirement that IPAS protection run after
/// user-level optimization — and passes `verify_module`.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or type error with its source
/// position.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    compile_named(source, "scil")
}

/// Like [`compile`], with an explicit module name.
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_named(source: &str, name: &str) -> Result<Module, CompileError> {
    compile_with_pipeline(source, name, &PipelineSpec::default_optimization())
}

/// Like [`compile_named`], running an explicit optimization
/// [`PipelineSpec`] through the [`ipas_ir::passmgr::PassManager`]
/// instead of the default pipeline. An empty spec skips optimization
/// entirely (equivalent to [`compile_unoptimized`]).
///
/// # Errors
///
/// Same conditions as [`compile`].
///
/// # Panics
///
/// Panics when `spec` names an unknown pass or the optimized module
/// fails verification — both indicate a caller/compiler bug, not a
/// source-program error.
pub fn compile_with_pipeline(
    source: &str,
    name: &str,
    spec: &PipelineSpec,
) -> Result<Module, CompileError> {
    let program = parser::parse_program(source)?;
    let checked = check::check(&program)?;
    let mut module = lower::lower(&checked, name);
    let mut pm = ipas_ir::passmgr::PassManager::from_spec(spec)
        .unwrap_or_else(|e| panic!("invalid optimization pipeline: {e}"));
    pm.run_module(&mut module)
        .expect("pipeline without verify-each cannot fail");
    ipas_ir::verify::verify_module(&module)
        .unwrap_or_else(|e| panic!("frontend produced invalid IR: {e}"));
    Ok(module)
}

/// Compiles without the optimization pipeline (used by tests that want
/// to see raw alloca/load/store output).
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_unoptimized(source: &str, name: &str) -> Result<Module, CompileError> {
    let program = parser::parse_program(source)?;
    let checked = check::check(&program)?;
    let module = lower::lower(&checked, name);
    ipas_ir::verify::verify_module(&module)
        .unwrap_or_else(|e| panic!("frontend produced invalid IR: {e}"));
    Ok(module)
}

//! Abstract syntax tree for SciL.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Identifies an expression node; assigned densely by the parser and used
/// by the type checker's side table.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A SciL type.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LangType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Heap array of `int`.
    ArrayInt,
    /// Heap array of `float`.
    ArrayFloat,
}

impl LangType {
    /// The element type of an array type.
    pub fn element(self) -> Option<LangType> {
        match self {
            LangType::ArrayInt => Some(LangType::Int),
            LangType::ArrayFloat => Some(LangType::Float),
            _ => None,
        }
    }

    /// Returns `true` for array types.
    pub fn is_array(self) -> bool {
        self.element().is_some()
    }

    /// The IR type representing values of this SciL type.
    pub fn ir_type(self) -> ipas_ir::Type {
        match self {
            LangType::Int => ipas_ir::Type::I64,
            LangType::Float => ipas_ir::Type::F64,
            LangType::Bool => ipas_ir::Type::Bool,
            LangType::ArrayInt | LangType::ArrayFloat => ipas_ir::Type::Ptr,
        }
    }
}

impl fmt::Display for LangType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LangType::Int => "int",
            LangType::Float => "float",
            LangType::Bool => "bool",
            LangType::ArrayInt => "[int]",
            LangType::ArrayFloat => "[float]",
        };
        f.write_str(s)
    }
}

/// Binary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinaryOp {
    /// Returns `true` for arithmetic operators.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem
        )
    }

    /// Returns `true` for comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// Returns `true` for the short-circuit logical operators.
    pub fn is_logic(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

/// Unary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// Node id for the checker's type table.
    pub id: NodeId,
    /// Source position.
    pub span: Span,
    /// The expression kind.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// Array indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let name: ty = init;`
    Let {
        /// Source position.
        span: Span,
        /// Variable name.
        name: String,
        /// Declared type.
        ty: LangType,
        /// Initializer.
        init: Expr,
    },
    /// `name = value;`
    Assign {
        /// Source position.
        span: Span,
        /// Variable name.
        name: String,
        /// Assigned value.
        value: Expr,
    },
    /// `array[index] = value;`
    Store {
        /// Source position.
        span: Span,
        /// Array variable name.
        array: String,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Source position.
        span: Span,
        /// Condition.
        cond: Expr,
        /// Then body.
        then_body: Vec<Stmt>,
        /// Else body (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Source position.
        span: Span,
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }` — sugar retained in the AST so
    /// the body's `continue` can branch to the step.
    For {
        /// Source position.
        span: Span,
        /// Init statement (`let` or assignment).
        init: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Step statement (an assignment).
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return {
        /// Source position.
        span: Span,
        /// Returned value, if any.
        value: Option<Expr>,
    },
    /// `break;`
    Break {
        /// Source position.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Source position.
        span: Span,
    },
    /// An expression statement (usually a call).
    Expr {
        /// Source position.
        span: Span,
        /// The expression.
        expr: Expr,
    },
}

impl Stmt {
    /// The source position of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Store { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Break { span }
            | Stmt::Continue { span }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: LangType,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FnDecl {
    /// Source position of the `fn` keyword.
    pub span: Span,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type; `None` for procedures.
    pub ret: Option<LangType>,
    /// Function body.
    pub body: Vec<Stmt>,
}

/// A parsed program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Function definitions in source order.
    pub functions: Vec<FnDecl>,
    /// Total number of expression nodes allocated by the parser.
    pub num_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lang_type_properties() {
        assert_eq!(LangType::ArrayInt.element(), Some(LangType::Int));
        assert_eq!(LangType::Int.element(), None);
        assert!(LangType::ArrayFloat.is_array());
        assert_eq!(LangType::Float.ir_type(), ipas_ir::Type::F64);
        assert_eq!(LangType::ArrayInt.ir_type(), ipas_ir::Type::Ptr);
        assert_eq!(LangType::ArrayFloat.to_string(), "[float]");
    }

    #[test]
    fn binary_op_classification() {
        assert!(BinaryOp::Add.is_arith());
        assert!(BinaryOp::Lt.is_cmp());
        assert!(BinaryOp::And.is_logic());
        assert!(!BinaryOp::Add.is_cmp());
    }
}
